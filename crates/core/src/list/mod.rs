//! The linked-list-based unbounded deque of Section 4 of the paper —
//! the first non-blocking unbounded-memory deque.
//!
//! The deque is a doubly-linked list between two fixed *sentinel* nodes
//! `SL` and `SR` whose value fields hold the distinguished `sentL` /
//! `sentR` constants. The central idea is to **split pop into two atomic
//! steps**:
//!
//! 1. *logical deletion* — one DCAS simultaneously swaps the victim's
//!    value to `null` and sets a **deleted bit** packed into the
//!    sentinel's inward pointer (Figure 12);
//! 2. *physical deletion* — a later DCAS splices the null node out of the
//!    list and clears the bit (Figure 15), performed by whichever
//!    operation on that side encounters the set bit (`deleteRight` /
//!    `deleteLeft`, Figures 17/34).
//!
//! If a processor is suspended between the two steps, any other processor
//! can complete (or work around) the physical deletion, which is what
//! makes the algorithm non-blocking. The subtle case is a deque holding
//! exactly two logically-deleted nodes with a `deleteLeft` and a
//! `deleteRight` racing (Figure 16): both attempt DCASes that overlap on
//! a sentinel pointer, so exactly one wins, and the paper's proof (and our
//! model checker) shows either outcome leaves a consistent list.
//!
//! The cost of splitting is one extra DCAS per pop; the benefit is that
//! no operation ever needs to synchronize on *both* sentinel pointers at
//! once, so the two ends don't interfere while the deque is non-empty.
//!
//! # Memory reclamation
//!
//! The paper assumes a garbage collector (its computation model is
//! Lisp/Java). We substitute the strategy's pluggable reclamation
//! backend ([`DcasStrategy::Reclaimer`]): every operation runs pinned,
//! and the thread whose DCAS physically splices a node out retires it;
//! the node is freed only once no operation can still hold a reference.
//! This preserves the property the algorithms need from GC — a node is
//! never recycled while a processor can reach it — and therefore rules
//! out ABA on node pointers.
//!
//! Under the epoch backend (the default) pinning alone suffices. Under
//! the hazard-pointer backend every traversal dereference follows the
//! announce-and-validate protocol: announce a hazard on the candidate
//! node, then re-read the word it was loaded from and retry on
//! mismatch. Validation against a *sentinel* word is self-contained
//! (sentinels never move). Validation one step out — a neighbor loaded
//! from a protected node's link word — must also confirm the protected
//! node itself is still in the list (its value word still live, or the
//! sentinel word unchanged), because the link words of an
//! already-spliced-out node are frozen and can keep naming a neighbor
//! that has since been freed. Every removal that could free a walked-to
//! node writes one of the validated words first (the splice DCASes
//! rewrite the neighbor links; the batch CASNs null every victim's
//! value and tombstone the boundary link), so a successful dual
//! validation proves the announce landed before any such removal.
//!
//! # Corrected typos
//!
//! The paper's Figure 32 line 4 reads `oldL.ptr->value` where symmetry
//! with Figure 11 requires `oldR.ptr->value`, and Figure 33 line 10 reads
//! `newR.ptr->L.ptr = SR` where the left-side push must write `SL`. Both
//! are corrected here (see DESIGN.md).

use std::marker::PhantomData;

use crossbeam_utils::CachePadded;
use dcas::{
    Backoff, CasnEntry, DcasStrategy, DcasWord, EliminationArray, EndConfig, HarrisMcas,
    NodeAlloc, NodePool, ReclaimGuard, Reclaimer,
};

/// The guard type of a strategy's reclamation backend.
type GuardOf<S> = <<S as DcasStrategy>::Reclaimer as Reclaimer>::Guard;

use crate::reserved::{NULL, SENTL, SENTR};
use crate::value::{Boxed, WordValue};
use crate::{ConcurrentDeque, Full, MAX_BATCH};

#[cfg(test)]
mod tests;

/// A list node: two pointer words and a value word (the paper's `node`
/// typedef). 16-byte alignment keeps the low four bits of node addresses
/// clear for the substrate tag bits and the deleted flag.
#[repr(align(16))]
struct Node {
    /// Left pointer word (`ptr | deleted-bit`).
    l: DcasWord,
    /// Right pointer word.
    r: DcasWord,
    /// `NULL`, `SENTL`, `SENTR`, or an encoded user value.
    value: DcasWord,
}

impl Node {
    fn new_blank() -> Node {
        Node {
            l: DcasWord::new(0),
            r: DcasWord::new(0),
            value: DcasWord::new(NULL),
        }
    }
}

/// Page pool for this module's nodes (sentinels stay boxed: they live
/// for the deque's lifetime and want their `CachePadded` wrapper).
static NODE_POOL: NodePool = NodePool::new("list", std::mem::size_of::<Node>(), 16);

/// Builds a [`NodeAlloc`] handle for this module's node pool:
/// `pooled = true` selects the page-pool arm, `false` the boxed
/// seed-compat arm (for A/B comparisons inside one binary).
pub fn node_alloc(pooled: bool) -> NodeAlloc {
    if pooled {
        NodeAlloc::pooled(&NODE_POOL)
    } else {
        NodeAlloc::boxed(&NODE_POOL)
    }
}

/// The allocation mode a plain constructor picks: the page pool, unless
/// the `box-nodes` seed-compat feature flips the default. Benches force
/// either arm explicitly via `with_node_alloc`.
fn default_node_alloc() -> NodeAlloc {
    if cfg!(feature = "box-nodes") {
        NodeAlloc::boxed(&NODE_POOL)
    } else {
        NodeAlloc::pooled(&NODE_POOL)
    }
}

/// Allocates a blank node through `alloc`'s arm.
fn alloc_node(alloc: NodeAlloc) -> *mut Node {
    if alloc.is_pooled() {
        let n = alloc.pool().alloc().cast::<Node>();
        // SAFETY: pool slots are type-stable Node memory; per the pool's
        // quarantine contract a recycled slot is reinitialized through
        // the node's atomic fields (`init_store` is a relaxed atomic
        // store), so a stale validator's probe never races non-atomically.
        unsafe {
            (*n).l.init_store(0);
            (*n).r.init_store(0);
            (*n).value.init_store(NULL);
        }
        n
    } else {
        Box::into_raw(Box::new(Node::new_blank()))
    }
}

/// Immediately frees a node through `alloc`'s arm (unpublished or
/// quiescent nodes only — concurrent frees go through `retire`).
///
/// # Safety
///
/// `n` must have come from [`alloc_node`] with the same `alloc` mode,
/// be freed exactly once, and be unreachable by other threads.
unsafe fn free_node_now(alloc: NodeAlloc, n: *mut Node) {
    if alloc.is_pooled() {
        unsafe { NodePool::dealloc(n.cast()) };
    } else {
        drop(unsafe { Box::from_raw(n) });
    }
}

/// Reclaimer dtor for pooled nodes (chosen at `retire` time, where the
/// deque's mode is in scope — the dtor itself is context-free).
unsafe fn free_node_pooled(p: *mut u8) {
    // SAFETY: `p` came from the node pool and runs exactly once, after
    // the grace period / hazard scan.
    unsafe { NodePool::dealloc(p) };
}

/// Reclaimer dtor for the boxed seed-compat arm.
unsafe fn free_node_boxed(p: *mut u8) {
    // SAFETY: `p` came from `Box::into_raw::<Node>` in a push path and
    // runs exactly once, after the grace period / hazard scan.
    drop(unsafe { Box::from_raw(p.cast::<Node>()) });
}

/// Bit 2 of a pointer word marks the pointed-to node as logically deleted
/// (bits 0–1 are reserved for the DCAS substrate).
const DELETED_BIT: u64 = 0b100;

/// Packs the paper's `pointer` struct (`node *ptr; boolean deleted`) into
/// one word.
#[inline]
fn pack(ptr: *const Node, deleted: bool) -> u64 {
    let p = ptr as u64;
    debug_assert_eq!(p & 0xF, 0, "node pointers must be 16-byte aligned");
    p | if deleted { DELETED_BIT } else { 0 }
}

#[inline]
fn ptr_of(w: u64) -> *const Node {
    (w & !0xF) as *const Node
}

#[inline]
fn deleted_of(w: u64) -> bool {
    w & DELETED_BIT != 0
}

/// An unpublished node plus its encoded value, owned by a push from
/// allocation to the splicing DCAS (or an elimination handoff).
/// Dropping it — which happens only if a strategy call unwinds, e.g. a
/// fault-injected kill — frees the node and releases the value; the
/// strategy unwinding contract guarantees nothing was published.
struct PendingNode<V: WordValue> {
    node: *mut Node,
    val: u64,
    alloc: NodeAlloc,
    _marker: PhantomData<V>,
}

impl<V: WordValue> PendingNode<V> {
    fn new(v: V, alloc: NodeAlloc) -> Self {
        PendingNode {
            node: alloc_node(alloc),
            val: v.encode(),
            alloc,
            _marker: PhantomData,
        }
    }

    /// The splicing DCAS published the node (which holds the value).
    fn published(self) {
        std::mem::forget(self);
    }

    /// An elimination partner took the value; the never-published node
    /// is freed.
    fn eliminated(self) {
        // SAFETY: unpublished, uniquely owned; the value word now
        // belongs to the taker.
        unsafe { free_node_now(self.alloc, self.node) };
        std::mem::forget(self);
    }
}

impl<V: WordValue> Drop for PendingNode<V> {
    fn drop(&mut self) {
        // SAFETY: reached only by unwinding before publication — the
        // node is private and the encoded value unconsumed.
        unsafe {
            free_node_now(self.alloc, self.node);
            V::drop_encoded(self.val);
        }
    }
}

/// An unpublished chain of nodes built by a batched push, linked
/// `first .. last` through their `l`/`r` words, owned until the single
/// splicing DCAS succeeds. Dropping it (a panicking value iterator or
/// an unwinding strategy call) walks the chain, freeing every node and
/// releasing every encoded value.
struct Chain<V: WordValue> {
    first: *mut Node,
    last: *mut Node,
    alloc: NodeAlloc,
    _marker: PhantomData<V>,
}

impl<V: WordValue> Chain<V> {
    fn new(v: V, alloc: NodeAlloc) -> Self {
        let n = alloc_node(alloc);
        // SAFETY: unpublished, exclusive access (and in the methods
        // below likewise: the chain is private until `publish`).
        unsafe { (*n).value.init_store(v.encode()) };
        Chain { first: n, last: n, alloc, _marker: PhantomData }
    }

    /// Links `v`'s node after `last` (push-right order).
    fn append(&mut self, v: V) {
        let n = alloc_node(self.alloc);
        // SAFETY: see `new`.
        unsafe {
            (*n).value.init_store(v.encode());
            (*n).l.init_store(pack(self.last, false));
            (*self.last).r.init_store(pack(n, false));
        }
        self.last = n;
    }

    /// Links `v`'s node before `first` (push-left order).
    fn prepend(&mut self, v: V) {
        let n = alloc_node(self.alloc);
        // SAFETY: see `new`.
        unsafe {
            (*n).value.init_store(v.encode());
            (*n).r.init_store(pack(self.first, false));
            (*self.first).l.init_store(pack(n, false));
        }
        self.first = n;
    }

    /// The splicing DCAS linked `first..last` into the list.
    fn publish(self) {
        std::mem::forget(self);
    }
}

impl<V: WordValue> Drop for Chain<V> {
    fn drop(&mut self) {
        let mut cur = self.first;
        loop {
            let at_last = cur == self.last;
            // SAFETY: reached only by unwinding before `publish`; the
            // chain is private, every node holds an unconsumed encoded
            // value, and interior `r` links (set by `append`/`prepend`)
            // connect `first..last`.
            unsafe {
                let next = ptr_of((*cur).r.unsync_load_shared()) as *mut Node;
                V::drop_encoded((*cur).value.unsync_load_shared());
                free_node_now(self.alloc, cur);
                if at_last {
                    break;
                }
                cur = next;
            }
        }
    }
}

/// Quiescent snapshot of the list structure, for diagnostics and the
/// Figure 9/12/14/15 reproduction tests. Only meaningful while no
/// operations are in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListLayout {
    /// Value words of the interior (non-sentinel) nodes, left to right;
    /// `None` represents the `null` value of a logically deleted node.
    pub cells: Vec<Option<u64>>,
    /// The deleted bit of the left sentinel's right pointer.
    pub left_deleted: bool,
    /// The deleted bit of the right sentinel's left pointer.
    pub right_deleted: bool,
}

impl ListLayout {
    /// Number of interior nodes still physically linked.
    pub fn linked_nodes(&self) -> usize {
        self.cells.len()
    }

    /// Number of live (non-deleted) values.
    pub fn live_values(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }
}

/// Word-level linked-list deque: the paper's algorithm verbatim, storing
/// [`WordValue`]-encoded values. Use [`ListDeque`] for arbitrary element
/// types.
pub struct RawListDeque<V: WordValue, S: DcasStrategy> {
    strategy: S,
    /// Left sentinel (`SL`), at a fixed address for the deque's lifetime.
    sl: Box<CachePadded<Node>>,
    /// Right sentinel (`SR`).
    sr: Box<CachePadded<Node>>,
    /// Elimination array for the left end (present iff
    /// [`EndConfig::elimination`] is on).
    elim_left: Option<EliminationArray>,
    /// Elimination array for the right end.
    elim_right: Option<EliminationArray>,
    /// Node-allocation arm: the page pool (default) or the boxed
    /// seed-compat arm.
    alloc: NodeAlloc,
    _marker: PhantomData<fn(V) -> V>,
}

// SAFETY: the deque is a shared concurrent structure; all shared-word
// accesses go through the `DcasStrategy`, values are transferred between
// threads (hence `V: Send`, implied by `WordValue`), and the raw node
// pointers are managed by the strategy's reclamation backend.
unsafe impl<V: WordValue, S: DcasStrategy> Send for RawListDeque<V, S> {}
unsafe impl<V: WordValue, S: DcasStrategy> Sync for RawListDeque<V, S> {}

impl<V: WordValue, S: DcasStrategy> Default for RawListDeque<V, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: WordValue, S: DcasStrategy> RawListDeque<V, S> {
    /// Creates an empty deque (the paper's `make_deque` without a length:
    /// unbounded).
    pub fn new() -> Self {
        Self::with_end_config(EndConfig::default())
    }

    /// Creates an empty deque with an explicit per-end configuration
    /// (elimination-array knobs).
    pub fn with_end_config(end: EndConfig) -> Self {
        Self::with_config(end, default_node_alloc())
    }

    /// Creates an empty deque with an explicit node-allocation arm (the
    /// E17 bench compares both arms inside one binary).
    pub fn with_node_alloc(alloc: NodeAlloc) -> Self {
        Self::with_config(EndConfig::default(), alloc)
    }

    /// Creates an empty deque with explicit end and allocation configs.
    pub fn with_config(end: EndConfig, alloc: NodeAlloc) -> Self {
        let sl = Box::new(CachePadded::new(Node::new_blank()));
        let sr = Box::new(CachePadded::new(Node::new_blank()));
        let slp: *const Node = &**sl as *const Node;
        let srp: *const Node = &**sr as *const Node;
        // Initially SR->L == SL and SL->R == SR (Figure 9, top); the
        // sentinels' outward pointers are never used.
        sl.value.init_store(SENTL);
        sr.value.init_store(SENTR);
        sl.r.init_store(pack(srp, false));
        sr.l.init_store(pack(slp, false));
        RawListDeque {
            strategy: S::default(),
            sl,
            sr,
            elim_left: end.elimination.then(|| EliminationArray::new(&end)),
            elim_right: end.elimination.then(|| EliminationArray::new(&end)),
            alloc,
            _marker: PhantomData,
        }
    }

    /// The node-allocation arm this deque was built with.
    pub fn node_alloc(&self) -> NodeAlloc {
        self.alloc
    }

    /// Per-end elimination-array counter snapshots `(left, right)`, or
    /// `None` when elimination is off. Non-zero only with the
    /// `dcas/stats` feature.
    pub fn elim_stats(&self) -> Option<(dcas::StrategyStats, dcas::StrategyStats)> {
        Some((self.elim_left.as_ref()?.stats(), self.elim_right.as_ref()?.stats()))
    }

    #[inline]
    fn slp(&self) -> *const Node {
        &**self.sl as *const Node
    }

    #[inline]
    fn srp(&self) -> *const Node {
        &**self.sr as *const Node
    }

    /// The DCAS strategy instance (for [`dcas::Counting`] statistics).
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// `true` if the strategy's backend requires the announce-and-
    /// validate protocol before dereferencing traversed nodes (hazard
    /// pointers); `false` folds every protection to a no-op (epoch).
    const NP: bool = <GuardOf<S> as ReclaimGuard>::NEEDS_PROTECT;

    /// Retires a spliced-out node through the strategy's reclamation
    /// backend.
    ///
    /// # Safety
    ///
    /// `node` must have been allocated by this deque's push path and must
    /// have just been physically unlinked by a successful DCAS performed
    /// by the calling thread (so it is retired exactly once).
    unsafe fn retire(&self, node: *const Node, guard: &GuardOf<S>) {
        let dtor = if self.alloc.is_pooled() { free_node_pooled } else { free_node_boxed };
        // SAFETY: the node is unreachable from the list, so no new
        // operation can find it; operations that already hold a
        // reference are pinned (epoch) or have it announced (hazard).
        unsafe {
            guard.retire(node as *mut u8, std::mem::size_of::<Node>(), dtor);
        }
    }

    /// Strategy load of a sentinel inward pointer (`SL->R` / `SR->L`)
    /// that leaves the pointed-to node protected at `slot` before the
    /// caller dereferences it. A sentinel word is a validation root:
    /// a node is only retired after a splice rewrites the sentinel word
    /// naming it (and retired nodes are never relinked), so announce +
    /// unchanged re-read proves the node was live after the announce.
    fn load_end_protected(&self, g: &GuardOf<S>, w: &DcasWord, slot: usize) -> u64 {
        let mut v = self.strategy.load(w);
        if Self::NP {
            loop {
                g.protect(slot, ptr_of(v) as u64);
                let v2 = self.strategy.load(w);
                if v2 == v {
                    break;
                }
                v = v2;
            }
        }
        v
    }

    /// One protected step of a chunk walk: loads `link` (the `r`/`l`
    /// word of an already-protected node), announces hazard `slot` on
    /// the next node, and validates both that the link still names it
    /// and that the walked-from node is still in the list (`value`
    /// still non-null — removals null it first, and a nulled value
    /// never reverts). Returns `None` when a race is detected; the
    /// caller restarts the scan.
    fn protected_step(
        &self,
        g: &GuardOf<S>,
        link: &DcasWord,
        value: &DcasWord,
        slot: usize,
    ) -> Option<*const Node> {
        let next = ptr_of(self.strategy.load(link));
        if !Self::NP {
            return Some(next);
        }
        g.protect(slot, next as u64);
        if ptr_of(self.strategy.load(link)) != next || self.strategy.load(value) == NULL {
            g.clear(slot);
            return None;
        }
        Some(next)
    }

    /// `popRight` — Figure 11.
    pub fn pop_right(&self) -> Option<V> {
        let guard = S::Reclaimer::pin();
        loop {
            let old_l = self.load_end_protected(&guard, &self.sr.l, 0); // line 3
            let olp = ptr_of(old_l);
            // SAFETY: `olp` was linked at line 3 and is pinned/protected,
            // so the node cannot have been freed.
            let v = self.strategy.load(unsafe { &(*olp).value }); // line 4
            if v == SENTL {
                return None; // line 5: "empty"
            }
            if deleted_of(old_l) {
                self.delete_right(&guard); // lines 6-7
            } else if v == NULL {
                // Lines 8-12: the node was deleted by a popLeft; the deque
                // is empty if nothing changed — confirm with an identity
                // DCAS over (SR->L, node value).
                // SAFETY: as above.
                if self.strategy.dcas(
                    &self.sr.l,
                    unsafe { &(*olp).value },
                    old_l,
                    v,
                    old_l,
                    v,
                ) {
                    return None;
                }
            } else {
                // Lines 13-19: logically delete — swap the value to null
                // and set the deleted bit in SR->L, in one DCAS
                // (Figure 12).
                let new_l = pack(olp, true);
                // SAFETY: as above.
                if self.strategy.dcas(
                    &self.sr.l,
                    unsafe { &(*olp).value },
                    old_l,
                    v,
                    new_l,
                    NULL,
                ) {
                    // SAFETY: the successful DCAS moved the encoded value
                    // out of the node; we are its unique owner.
                    return Some(unsafe { V::decode(v) });
                }
                // Contended retry: a colliding pushRight may hand its
                // value over directly (the pair linearizes back-to-back
                // at the exchange instant).
                if let Some(elim) = &self.elim_right {
                    if let Some(w) = elim.try_take() {
                        // SAFETY: ownership of the encoded value was
                        // transferred by the offering pushRight.
                        return Some(unsafe { V::decode(w) });
                    }
                }
            }
        }
    }

    /// `pushRight` — Figure 13.
    pub fn push_right(&self, v: V) -> Result<(), Full<V>> {
        let guard = S::Reclaimer::pin();
        // Lines 2-4: allocate the new node. (The paper returns "full" if
        // the allocator fails; Rust's global allocator aborts instead, so
        // the push path never reports full — matching the unbounded deque
        // specification of Section 2.2.) The pending guard owns node and
        // value until published or eliminated; an unwinding strategy call
        // frees both.
        let pending = PendingNode::<V>::new(v, self.alloc);
        let (node, val) = (pending.node, pending.val);
        loop {
            let old_l = self.load_end_protected(&guard, &self.sr.l, 0); // line 6
            if deleted_of(old_l) {
                self.delete_right(&guard); // lines 7-8
            } else {
                let olp = ptr_of(old_l);
                // Lines 10-13: initialize the unpublished node. These are
                // plain stores; the publishing DCAS below provides the
                // release edge.
                // SAFETY: `node` is not yet published, we have exclusive
                // access.
                unsafe {
                    (*node).r.init_store(pack(self.srp(), false));
                    (*node).l.init_store(old_l);
                    (*node).value.init_store(val);
                }
                let old_lr = pack(self.srp(), false); // lines 14-15
                // Lines 16-18: splice in by redirecting SR->L and the old
                // neighbor's R pointer to the new node (Figure 14).
                // SAFETY: `olp` reachable at line 6, pinned.
                if self.strategy.dcas(
                    &self.sr.l,
                    unsafe { &(*olp).r },
                    old_l,
                    old_lr,
                    pack(node, false),
                    pack(node, false),
                ) {
                    pending.published();
                    return Ok(()); // "okay"
                }
                // Contended retry: hand the value to a colliding popRight
                // if one is waiting; the unpublished node is ours to free.
                if let Some(elim) = &self.elim_right {
                    if elim.offer(val).is_ok() {
                        pending.eliminated();
                        return Ok(());
                    }
                }
            }
        }
    }

    /// `deleteRight` — Figure 17: completes a pending physical deletion on
    /// the right-hand side.
    fn delete_right(&self, guard: &GuardOf<S>) {
        loop {
            let old_l = self.load_end_protected(guard, &self.sr.l, 0); // line 3
            if !deleted_of(old_l) {
                return; // line 4: someone else finished the deletion
            }
            let olp = ptr_of(old_l);
            // SAFETY (this and subsequent derefs): `olp` is protected via
            // the sentinel root above; `old_ll` via the dual validation
            // below. See the module docs' reclamation section.
            let old_ll = ptr_of(self.strategy.load(unsafe { &(*olp).l })); // line 5
            if Self::NP {
                guard.protect(1, old_ll as u64);
                // `olp`'s link words freeze once it is spliced out, so a
                // link re-read alone cannot prove `old_ll` is alive; the
                // sentinel re-read pins `olp` as still-linked (retired
                // nodes are never relinked, so no ABA), and any removal
                // of `old_ll` while `olp` is linked rewrites `olp->L`.
                if ptr_of(self.strategy.load(unsafe { &(*olp).l })) != old_ll
                    || self.strategy.load(&self.sr.l) != old_l
                {
                    guard.clear(1);
                    continue;
                }
            }
            let v = self.strategy.load(unsafe { &(*old_ll).value }); // line 6
            if v != NULL {
                // Lines 6-14: the left neighbor is live (or is the left
                // sentinel); splice out the null node by pointing SR and
                // that neighbor at each other (Figure 15).
                let old_llr = self.strategy.load(unsafe { &(*old_ll).r }); // line 7
                // A deleted bit on a neighbor's R pointer is a batch-pop
                // tombstone: `old_ll` is retired, so the splice below must
                // not resurrect it (re-read and take the other path).
                if olp == ptr_of(old_llr) && !deleted_of(old_llr) {
                    // lines 8-13
                    let new_r = pack(self.srp(), false);
                    if self.strategy.dcas(
                        &self.sr.l,
                        unsafe { &(*old_ll).r },
                        old_l,
                        old_llr,
                        pack(old_ll, false),
                        new_r,
                    ) {
                        // SAFETY: our DCAS unlinked `olp`.
                        unsafe { self.retire(olp, guard) };
                        return;
                    }
                }
            } else {
                // Lines 16-26: two null items — both remaining nodes are
                // logically deleted. Point the sentinels at each other,
                // racing any concurrent deleteLeft (Figure 16).
                let old_r = self.strategy.load(&self.sl.r); // line 17
                if deleted_of(old_r) {
                    // line 18
                    let new_l = pack(self.slp(), false);
                    let new_r = pack(self.srp(), false);
                    if self.strategy.dcas(
                        &self.sr.l,
                        &self.sl.r,
                        old_l,
                        old_r,
                        new_l,
                        new_r,
                    ) {
                        // SAFETY: our DCAS unlinked both null nodes.
                        unsafe {
                            self.retire(olp, guard);
                            self.retire(ptr_of(old_r), guard);
                        }
                        return;
                    }
                }
            }
        }
    }

    /// `popLeft` — Figure 32 (with the paper's line-4 typo corrected).
    pub fn pop_left(&self) -> Option<V> {
        let guard = S::Reclaimer::pin();
        loop {
            let old_r = self.load_end_protected(&guard, &self.sl.r, 0); // line 3
            let orp = ptr_of(old_r);
            // SAFETY: as in `pop_right`.
            let v = self.strategy.load(unsafe { &(*orp).value }); // line 4 (corrected)
            if v == SENTR {
                return None; // line 5
            }
            if deleted_of(old_r) {
                self.delete_left(&guard); // lines 6-7
            } else if v == NULL {
                // SAFETY: as above.
                if self.strategy.dcas(
                    &self.sl.r,
                    unsafe { &(*orp).value },
                    old_r,
                    v,
                    old_r,
                    v,
                ) {
                    return None;
                }
            } else {
                let new_r = pack(orp, true);
                // SAFETY: as above.
                if self.strategy.dcas(
                    &self.sl.r,
                    unsafe { &(*orp).value },
                    old_r,
                    v,
                    new_r,
                    NULL,
                ) {
                    // SAFETY: unique ownership via successful DCAS.
                    return Some(unsafe { V::decode(v) });
                }
                // Contended retry: pair with a colliding pushLeft.
                if let Some(elim) = &self.elim_left {
                    if let Some(w) = elim.try_take() {
                        // SAFETY: as in `pop_right`'s elimination arm.
                        return Some(unsafe { V::decode(w) });
                    }
                }
            }
        }
    }

    /// `pushLeft` — Figure 33 (with the paper's line-10 typo corrected:
    /// the new node's left pointer aims at `SL`, not `SR`).
    pub fn push_left(&self, v: V) -> Result<(), Full<V>> {
        let guard = S::Reclaimer::pin();
        // Guarded as in `push_right`.
        let pending = PendingNode::<V>::new(v, self.alloc);
        let (node, val) = (pending.node, pending.val);
        loop {
            let old_r = self.load_end_protected(&guard, &self.sl.r, 0); // line 6
            if deleted_of(old_r) {
                self.delete_left(&guard); // lines 7-8
            } else {
                let orp = ptr_of(old_r);
                // SAFETY: unpublished node, exclusive access.
                unsafe {
                    (*node).l.init_store(pack(self.slp(), false)); // corrected
                    (*node).r.init_store(old_r);
                    (*node).value.init_store(val);
                }
                let old_rl = pack(self.slp(), false);
                // SAFETY: `orp` reachable at line 6, pinned.
                if self.strategy.dcas(
                    &self.sl.r,
                    unsafe { &(*orp).l },
                    old_r,
                    old_rl,
                    pack(node, false),
                    pack(node, false),
                ) {
                    pending.published();
                    return Ok(());
                }
                // Contended retry: hand the value to a colliding popLeft.
                if let Some(elim) = &self.elim_left {
                    if elim.offer(val).is_ok() {
                        pending.eliminated();
                        return Ok(());
                    }
                }
            }
        }
    }

    /// `deleteLeft` — Figure 34.
    fn delete_left(&self, guard: &GuardOf<S>) {
        loop {
            let old_r = self.load_end_protected(guard, &self.sl.r, 0); // line 3
            if !deleted_of(old_r) {
                return; // line 4
            }
            let orp = ptr_of(old_r);
            // SAFETY: as in `delete_right` (mirrored dual validation).
            let old_rr = ptr_of(self.strategy.load(unsafe { &(*orp).r })); // line 5
            if Self::NP {
                guard.protect(1, old_rr as u64);
                if ptr_of(self.strategy.load(unsafe { &(*orp).r })) != old_rr
                    || self.strategy.load(&self.sl.r) != old_r
                {
                    guard.clear(1);
                    continue;
                }
            }
            let v = self.strategy.load(unsafe { &(*old_rr).value }); // line 6
            if v != NULL {
                let old_rrl = self.strategy.load(unsafe { &(*old_rr).l }); // line 7
                // Deleted bit here = batch-pop tombstone on a retired
                // node's L pointer; see `delete_right`.
                if orp == ptr_of(old_rrl) && !deleted_of(old_rrl) {
                    // lines 8-14
                    let new_l = pack(self.slp(), false);
                    if self.strategy.dcas(
                        &self.sl.r,
                        unsafe { &(*old_rr).l },
                        old_r,
                        old_rrl,
                        pack(old_rr, false),
                        new_l,
                    ) {
                        // SAFETY: our DCAS unlinked `orp`.
                        unsafe { self.retire(orp, guard) };
                        return;
                    }
                }
            } else {
                // Lines 16-26: two null items.
                let old_l = self.strategy.load(&self.sr.l); // line 17
                if deleted_of(old_l) {
                    // line 22
                    let new_r = pack(self.srp(), false);
                    let new_l = pack(self.slp(), false);
                    if self.strategy.dcas(
                        &self.sl.r,
                        &self.sr.l,
                        old_r,
                        old_l,
                        new_r,
                        new_l,
                    ) {
                        // SAFETY: our DCAS unlinked both null nodes.
                        unsafe {
                            self.retire(orp, guard);
                            self.retire(ptr_of(old_l), guard);
                        }
                        return;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Batched operations (not in the paper). Pushes build a private
    // chain of nodes and splice it with the same single DCAS the
    // one-node push uses — batching is free on the push side. Pops
    // combine the logical and physical deletion of up to MAX_BATCH
    // leftmost/rightmost nodes into one CASN that validates the chain
    // and nulls every popped value at a single linearization point.
    // ------------------------------------------------------------------

    /// Pushes all of `vals` at the right end in **one** DCAS, in order
    /// (the last element ends up rightmost). Builds the private chain
    /// `m_1 .. m_k` off-list, then splices it exactly like the one-node
    /// push of Figure 13: `DCAS(SR->L, m_left_neighbor->R)`.
    pub fn push_right_n<I>(&self, vals: I) -> Result<(), Full<Vec<V>>>
    where
        I: IntoIterator<Item = V>,
    {
        let mut it = vals.into_iter();
        let Some(v0) = it.next() else { return Ok(()) };
        let guard = S::Reclaimer::pin();
        // Build the chain left-to-right in push order, linking each node
        // as the iterator yields it — no intermediate buffers. The chain
        // guard owns every node and value until the splice: a panicking
        // iterator or an unwinding strategy call releases the partial
        // chain instead of leaking it.
        let mut chain = Chain::new(v0, self.alloc);
        for v in it {
            chain.append(v);
        }
        let (first, last) = (chain.first, chain.last);
        // SAFETY: the chain is unpublished; we have exclusive access.
        unsafe { (*last).r.init_store(pack(self.srp(), false)) };
        let mut backoff = Backoff::new();
        loop {
            let old_l = self.load_end_protected(&guard, &self.sr.l, 0);
            if deleted_of(old_l) {
                self.delete_right(&guard);
            } else {
                let olp = ptr_of(old_l);
                // SAFETY: `first` is still unpublished.
                unsafe { (*first).l.init_store(old_l) };
                let old_lr = pack(self.srp(), false);
                // SAFETY: `olp` reachable above, pinned.
                if self.strategy.dcas(
                    &self.sr.l,
                    unsafe { &(*olp).r },
                    old_l,
                    old_lr,
                    pack(last, false),
                    pack(first, false),
                ) {
                    chain.publish();
                    return Ok(());
                }
                backoff.snooze();
            }
        }
    }

    /// Pushes all of `vals` at the left end in **one** DCAS, in order
    /// (the last element ends up leftmost). Mirror of
    /// [`push_right_n`](Self::push_right_n).
    pub fn push_left_n<I>(&self, vals: I) -> Result<(), Full<Vec<V>>>
    where
        I: IntoIterator<Item = V>,
    {
        let mut it = vals.into_iter();
        let Some(v0) = it.next() else { return Ok(()) };
        let guard = S::Reclaimer::pin();
        // Chain left-to-right holds the values in reverse push order, so
        // that the sequence behaves like repeated pushLeft calls: each
        // yielded value's node is *prepended* to the unpublished chain.
        // Guarded as in `push_right_n`.
        let mut chain = Chain::new(v0, self.alloc);
        for v in it {
            chain.prepend(v);
        }
        let (first, last) = (chain.first, chain.last);
        // SAFETY: the chain is unpublished; we have exclusive access.
        unsafe { (*first).l.init_store(pack(self.slp(), false)) };
        let mut backoff = Backoff::new();
        loop {
            let old_r = self.load_end_protected(&guard, &self.sl.r, 0);
            if deleted_of(old_r) {
                self.delete_left(&guard);
            } else {
                let orp = ptr_of(old_r);
                // SAFETY: `last` is still unpublished.
                unsafe { (*last).r.init_store(old_r) };
                let old_rl = pack(self.slp(), false);
                // SAFETY: `orp` reachable above, pinned.
                if self.strategy.dcas(
                    &self.sl.r,
                    unsafe { &(*orp).l },
                    old_r,
                    old_rl,
                    pack(first, false),
                    pack(last, false),
                ) {
                    chain.publish();
                    return Ok(());
                }
                backoff.snooze();
            }
        }
    }

    /// Pops up to `k` leftmost values in one CASN, appending them to
    /// `out` and returning whether the deque was exhausted. The CASN
    /// covers:
    ///
    /// * `SL->R`: swung directly past the `j` victims to their right
    ///   neighbor `n_{j+1}` (logical + physical deletion fused);
    /// * each victim's value word, swapped to null — without these a
    ///   concurrent pop could return the same value twice;
    /// * `n_j->R`, **tombstoned** (deleted bit set, pointer kept). This
    ///   both validates that nothing was spliced in or out beyond `n_j`
    ///   between our scan and the CASN, and — crucially — *changes* the
    ///   word: a concurrent `delete_right` that captured
    ///   `(SR->L, n_j->R)` as its DCAS expectations before our CASN
    ///   would otherwise still succeed afterwards and re-link the
    ///   retired `n_j` into `SR->L` (the delete helpers reject
    ///   tombstoned neighbor pointers for the same reason);
    /// * `n_{j+1}->L`, redirected to `SL`.
    ///
    /// Success with `j < k` certifies the deque held exactly `j` values
    /// at the linearization instant (the chain `SL -> n_1 .. n_j ->
    /// n_{j+1}` with `n_{j+1}` the sentinel or a logically-deleted null
    /// node is pinned by the entries plus the fact that a value word
    /// never leaves null once set).
    fn pop_left_chunk(&self, k: usize, out: &mut Vec<V>, guard: &GuardOf<S>) -> bool {
        debug_assert!((1..=MAX_BATCH).contains(&k));
        let mut backoff = Backoff::new();
        loop {
            let old_r = self.load_end_protected(guard, &self.sl.r, 0);
            if deleted_of(old_r) {
                self.delete_left(guard);
                continue;
            }
            let orp = ptr_of(old_r);
            // SAFETY (this and subsequent derefs): `orp` is protected via
            // the sentinel root; every further node the walk reaches is
            // protected by `protected_step` before it is dereferenced
            // (node at walk position `i` holds slot `i`).
            let v1 = self.strategy.load(unsafe { &(*orp).value });
            if v1 == SENTR {
                return true; // empty at the SL->R read
            }
            if v1 == NULL {
                // Deleted from the right side; empty if nothing changed —
                // confirm exactly as the single pop does.
                if self.strategy.dcas(
                    &self.sl.r,
                    unsafe { &(*orp).value },
                    old_r,
                    NULL,
                    old_r,
                    NULL,
                ) {
                    return true;
                }
                backoff.snooze();
                continue;
            }
            // Collect up to k live nodes left-to-right; `next` ends as
            // n_{j+1} (SR, a null node, or the first node past the batch).
            let mut nodes = [std::ptr::null::<Node>(); MAX_BATCH];
            let mut vals = [0u64; MAX_BATCH];
            nodes[0] = orp;
            vals[0] = v1;
            let mut j = 1;
            // SAFETY: `orp` (and below, each `next` once stored into
            // `nodes`) is protected; see the loop-head comment.
            let Some(mut next) = self.protected_step(
                guard,
                unsafe { &(*orp).r },
                unsafe { &(*orp).value },
                1,
            ) else {
                backoff.snooze();
                continue;
            };
            let mut raced = false;
            while j < k {
                // SAFETY: `next` was protected by the step that found it.
                let v = self.strategy.load(unsafe { &(*next).value });
                if v == SENTR || v == NULL {
                    break;
                }
                nodes[j] = next;
                vals[j] = v;
                j += 1;
                // SAFETY: as above.
                let step = self.protected_step(
                    guard,
                    unsafe { &(*next).r },
                    unsafe { &(*next).value },
                    j,
                );
                match step {
                    Some(n) => next = n,
                    None => {
                        raced = true;
                        break;
                    }
                }
            }
            if raced {
                backoff.snooze();
                continue;
            }
            // A stale traversal can in principle walk retired pointers;
            // duplicate words in a CASN are invalid, so reject and retry.
            if nodes[..j].contains(&next)
                || (1..j).any(|i| nodes[..i].contains(&nodes[i]))
            {
                backoff.snooze();
                continue;
            }
            let n_j = nodes[j - 1];
            let mut entries = [CasnEntry::new(&self.sl.r, NULL, NULL); MAX_BATCH + 3];
            entries[0] = CasnEntry::new(&self.sl.r, old_r, pack(next, false));
            // SAFETY: `n_j` and `next` were reachable during the scan.
            entries[1] = CasnEntry::new(
                unsafe { &(*n_j).r },
                pack(next, false),
                pack(next, true), // tombstone (see doc comment)
            );
            entries[2] = CasnEntry::new(
                unsafe { &(*next).l },
                pack(n_j, false),
                pack(self.slp(), false),
            );
            for i in 0..j {
                entries[3 + i] =
                    CasnEntry::new(unsafe { &(*nodes[i]).value }, vals[i], NULL);
            }
            if self.strategy.casn(&mut entries[..j + 3]) {
                for &n in &nodes[..j] {
                    // SAFETY: our CASN unlinked the chain `n_1..n_j`.
                    unsafe { self.retire(n, guard) };
                }
                // SAFETY: each word was moved out of its node by our
                // CASN; we are its unique owner.
                out.extend(vals[..j].iter().map(|&w| unsafe { V::decode(w) }));
                return j < k;
            }
            backoff.snooze();
        }
    }

    /// Mirror of [`pop_left_chunk`](Self::pop_left_chunk) for the right
    /// end: walks leftward from `SR->L`, returns rightmost first.
    fn pop_right_chunk(&self, k: usize, out: &mut Vec<V>, guard: &GuardOf<S>) -> bool {
        debug_assert!((1..=MAX_BATCH).contains(&k));
        let mut backoff = Backoff::new();
        loop {
            let old_l = self.load_end_protected(guard, &self.sr.l, 0);
            if deleted_of(old_l) {
                self.delete_right(guard);
                continue;
            }
            let olp = ptr_of(old_l);
            // SAFETY: as in `pop_left_chunk` (protected walk, mirrored).
            let v1 = self.strategy.load(unsafe { &(*olp).value });
            if v1 == SENTL {
                return true;
            }
            if v1 == NULL {
                if self.strategy.dcas(
                    &self.sr.l,
                    unsafe { &(*olp).value },
                    old_l,
                    NULL,
                    old_l,
                    NULL,
                ) {
                    return true;
                }
                backoff.snooze();
                continue;
            }
            let mut nodes = [std::ptr::null::<Node>(); MAX_BATCH];
            let mut vals = [0u64; MAX_BATCH];
            nodes[0] = olp;
            vals[0] = v1;
            let mut j = 1;
            // SAFETY: `olp` and each stored `next` are protected; see
            // `pop_left_chunk`.
            let Some(mut next) = self.protected_step(
                guard,
                unsafe { &(*olp).l },
                unsafe { &(*olp).value },
                1,
            ) else {
                backoff.snooze();
                continue;
            };
            let mut raced = false;
            while j < k {
                // SAFETY: `next` was protected by the step that found it.
                let v = self.strategy.load(unsafe { &(*next).value });
                if v == SENTL || v == NULL {
                    break;
                }
                nodes[j] = next;
                vals[j] = v;
                j += 1;
                // SAFETY: as above.
                let step = self.protected_step(
                    guard,
                    unsafe { &(*next).l },
                    unsafe { &(*next).value },
                    j,
                );
                match step {
                    Some(n) => next = n,
                    None => {
                        raced = true;
                        break;
                    }
                }
            }
            if raced {
                backoff.snooze();
                continue;
            }
            if nodes[..j].contains(&next)
                || (1..j).any(|i| nodes[..i].contains(&nodes[i]))
            {
                backoff.snooze();
                continue;
            }
            let n_j = nodes[j - 1];
            let mut entries = [CasnEntry::new(&self.sr.l, NULL, NULL); MAX_BATCH + 3];
            entries[0] = CasnEntry::new(&self.sr.l, old_l, pack(next, false));
            // SAFETY: `n_j` and `next` were reachable during the scan.
            entries[1] = CasnEntry::new(
                unsafe { &(*n_j).l },
                pack(next, false),
                pack(next, true), // tombstone (see `pop_left_chunk`)
            );
            entries[2] = CasnEntry::new(
                unsafe { &(*next).r },
                pack(n_j, false),
                pack(self.srp(), false),
            );
            for i in 0..j {
                entries[3 + i] =
                    CasnEntry::new(unsafe { &(*nodes[i]).value }, vals[i], NULL);
            }
            if self.strategy.casn(&mut entries[..j + 3]) {
                for &n in &nodes[..j] {
                    // SAFETY: our CASN unlinked the chain.
                    unsafe { self.retire(n, guard) };
                }
                // SAFETY: as in `pop_left_chunk`.
                out.extend(vals[..j].iter().map(|&w| unsafe { V::decode(w) }));
                return j < k;
            }
            backoff.snooze();
        }
    }

    /// Pops up to `n` values from the left end, leftmost first, in
    /// atomic chunks of up to [`MAX_BATCH`]; stops early at a chunk that
    /// certified the deque exhausted.
    pub fn pop_left_n(&self, n: usize) -> Vec<V> {
        let guard = S::Reclaimer::pin();
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let k = (n - out.len()).min(MAX_BATCH);
            if self.pop_left_chunk(k, &mut out, &guard) {
                break;
            }
        }
        out
    }

    /// Pops up to `n` values from the right end, rightmost first, in
    /// atomic chunks. See [`pop_left_n`](Self::pop_left_n).
    pub fn pop_right_n(&self, n: usize) -> Vec<V> {
        let guard = S::Reclaimer::pin();
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let k = (n - out.len()).min(MAX_BATCH);
            if self.pop_right_chunk(k, &mut out, &guard) {
                break;
            }
        }
        out
    }

    /// Quiescent snapshot of the list structure (see [`ListLayout`]).
    pub fn layout(&self) -> ListLayout {
        let _guard = S::Reclaimer::pin();
        let mut cells = Vec::new();
        let mut cur = ptr_of(self.strategy.load(&self.sl.r));
        while cur != self.srp() {
            // SAFETY: quiescent per the method contract; nodes linked from
            // SL are alive.
            let v = self.strategy.load(unsafe { &(*cur).value });
            cells.push((v != NULL).then_some(v));
            cur = ptr_of(self.strategy.load(unsafe { &(*cur).r }));
        }
        ListLayout {
            cells,
            left_deleted: deleted_of(self.strategy.load(&self.sl.r)),
            right_deleted: deleted_of(self.strategy.load(&self.sr.l)),
        }
    }
}

impl<V: WordValue, S: DcasStrategy> Drop for RawListDeque<V, S> {
    fn drop(&mut self) {
        // Exclusive access: no operation in flight, no descriptors
        // installed. Walk the physical list, freeing interior nodes and
        // any unconsumed values. Nodes already retired to the
        // reclamation backend are no longer linked and are freed by
        // their queued destructors.
        // SAFETY: quiescence per `&mut self`.
        unsafe {
            let mut cur = ptr_of(self.sl.r.unsync_load_shared());
            while cur != self.srp() {
                let node = cur as *mut Node;
                let v = (*node).value.unsync_load_shared();
                if v != NULL {
                    V::drop_encoded(v);
                }
                cur = ptr_of((*node).r.unsync_load_shared());
                free_node_now(self.alloc, node);
            }
        }
    }
}

/// The linked-list-based unbounded deque of the paper's Section 4, for
/// arbitrary element types `T` (heap-boxed per element) and any DCAS
/// strategy `S` (lock-free [`HarrisMcas`] by default).
///
/// See the [module documentation](self) for the algorithm and
/// [`RawListDeque`] for the word-level API used by benches.
pub struct ListDeque<T: Send, S: DcasStrategy = HarrisMcas> {
    raw: RawListDeque<Boxed<T>, S>,
}

impl<T: Send, S: DcasStrategy> Default for ListDeque<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send, S: DcasStrategy> ListDeque<T, S> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        ListDeque { raw: RawListDeque::new() }
    }

    /// Creates an empty deque with an explicit per-end configuration
    /// (the elimination-array knobs; see [`EndConfig`]).
    pub fn with_end_config(end: EndConfig) -> Self {
        ListDeque { raw: RawListDeque::with_end_config(end) }
    }

    /// Creates an empty deque with an explicit node-allocation arm.
    pub fn with_node_alloc(alloc: NodeAlloc) -> Self {
        ListDeque { raw: RawListDeque::with_node_alloc(alloc) }
    }

    /// Per-end elimination counter snapshots `(left, right)`; `None` when
    /// elimination is off (see [`RawListDeque::elim_stats`]).
    pub fn elim_stats(&self) -> Option<(dcas::StrategyStats, dcas::StrategyStats)> {
        self.raw.elim_stats()
    }

    /// The DCAS strategy instance (for counter snapshots).
    pub fn strategy(&self) -> &S {
        self.raw.strategy()
    }

    /// Appends `v` at the right end. Never fails (the deque is unbounded).
    pub fn push_right(&self, v: T) -> Result<(), Full<T>> {
        self.raw
            .push_right(Boxed::new(v))
            .map_err(|Full(b)| Full(b.into_inner()))
    }

    /// Appends `v` at the left end. Never fails.
    pub fn push_left(&self, v: T) -> Result<(), Full<T>> {
        self.raw
            .push_left(Boxed::new(v))
            .map_err(|Full(b)| Full(b.into_inner()))
    }

    /// Removes and returns the rightmost value, or `None` if empty.
    pub fn pop_right(&self) -> Option<T> {
        self.raw.pop_right().map(Boxed::into_inner)
    }

    /// Removes and returns the leftmost value, or `None` if empty.
    pub fn pop_left(&self) -> Option<T> {
        self.raw.pop_left().map(Boxed::into_inner)
    }

    /// Pushes all of `vals` at the right end in **one** DCAS splice (see
    /// [`RawListDeque::push_right_n`]). Never fails.
    pub fn push_right_n<I>(&self, vals: I) -> Result<(), Full<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        self.raw
            .push_right_n(vals.into_iter().map(Boxed::new))
            .map_err(|Full(rest)| Full(rest.into_iter().map(Boxed::into_inner).collect()))
    }

    /// Pushes all of `vals` at the left end in **one** DCAS splice (the
    /// last element ends up leftmost). Never fails.
    pub fn push_left_n<I>(&self, vals: I) -> Result<(), Full<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        self.raw
            .push_left_n(vals.into_iter().map(Boxed::new))
            .map_err(|Full(rest)| Full(rest.into_iter().map(Boxed::into_inner).collect()))
    }

    /// Pops up to `n` values from the right end, rightmost first, in
    /// atomic chunks of up to [`MAX_BATCH`].
    pub fn pop_right_n(&self, n: usize) -> Vec<T> {
        self.raw.pop_right_n(n).into_iter().map(Boxed::into_inner).collect()
    }

    /// Pops up to `n` values from the left end, leftmost first, in atomic
    /// chunks.
    pub fn pop_left_n(&self, n: usize) -> Vec<T> {
        self.raw.pop_left_n(n).into_iter().map(Boxed::into_inner).collect()
    }

    /// Quiescent layout snapshot (see [`RawListDeque::layout`]).
    pub fn layout(&self) -> ListLayout {
        self.raw.layout()
    }
}

impl<T: Send, S: DcasStrategy> ConcurrentDeque<T> for ListDeque<T, S> {
    fn push_right(&self, v: T) -> Result<(), Full<T>> {
        ListDeque::push_right(self, v)
    }

    fn push_left(&self, v: T) -> Result<(), Full<T>> {
        ListDeque::push_left(self, v)
    }

    fn pop_right(&self) -> Option<T> {
        ListDeque::pop_right(self)
    }

    fn pop_left(&self) -> Option<T> {
        ListDeque::pop_left(self)
    }

    fn push_right_n(&self, vals: Vec<T>) -> Result<(), Full<Vec<T>>> {
        ListDeque::push_right_n(self, vals)
    }

    fn push_left_n(&self, vals: Vec<T>) -> Result<(), Full<Vec<T>>> {
        ListDeque::push_left_n(self, vals)
    }

    fn pop_right_n(&self, n: usize) -> Vec<T> {
        ListDeque::pop_right_n(self, n)
    }

    fn pop_left_n(&self, n: usize) -> Vec<T> {
        ListDeque::pop_left_n(self, n)
    }

    fn impl_name(&self) -> &'static str {
        "list-dcas"
    }
}
