//! Unit and figure-reproduction tests for the linked-list deque.

use dcas::{
    Counting, DcasStrategy, GlobalLock, GlobalSeqLock, HarrisMcas, HarrisMcasHazard, StripedLock,
};

use super::{ListDeque, RawListDeque};

fn for_all_strategies(f: impl Fn(Box<dyn Fn() -> Box<dyn DynDeque>>)) {
    f(Box::new(
        || Box::new(RawListDeque::<u32, GlobalLock>::new()),
    ));
    f(Box::new(|| {
        Box::new(RawListDeque::<u32, GlobalSeqLock>::new())
    }));
    f(Box::new(|| {
        Box::new(RawListDeque::<u32, StripedLock>::new())
    }));
    f(Box::new(
        || Box::new(RawListDeque::<u32, HarrisMcas>::new()),
    ));
    f(Box::new(|| {
        Box::new(RawListDeque::<u32, HarrisMcasHazard>::new())
    }));
}

trait DynDeque {
    fn push_right(&self, v: u32);
    fn push_left(&self, v: u32);
    fn pop_right(&self) -> Option<u32>;
    fn pop_left(&self) -> Option<u32>;
}

impl<S: DcasStrategy> DynDeque for RawListDeque<u32, S> {
    fn push_right(&self, v: u32) {
        RawListDeque::push_right(self, v).unwrap();
    }
    fn push_left(&self, v: u32) {
        RawListDeque::push_left(self, v).unwrap();
    }
    fn pop_right(&self) -> Option<u32> {
        RawListDeque::pop_right(self)
    }
    fn pop_left(&self) -> Option<u32> {
        RawListDeque::pop_left(self)
    }
}

#[test]
fn paper_running_example() {
    for_all_strategies(|mk| {
        let d = mk();
        d.push_right(1);
        d.push_left(2);
        d.push_right(3);
        assert_eq!(d.pop_left(), Some(2));
        assert_eq!(d.pop_left(), Some(1));
        assert_eq!(d.pop_left(), Some(3));
        assert_eq!(d.pop_left(), None);
    });
}

#[test]
fn fig9_initial_empty_deque() {
    // Figure 9 (top): SR->L == SL, SL->R == SR, no interior nodes, both
    // deleted bits false.
    let d = RawListDeque::<u32, GlobalSeqLock>::new();
    let lay = d.layout();
    assert_eq!(lay.cells, vec![]);
    assert!(!lay.left_deleted);
    assert!(!lay.right_deleted);
    assert_eq!(d.pop_left(), None);
    assert_eq!(d.pop_right(), None);
}

#[test]
fn fig9_empty_with_right_deleted_cell() {
    // Figure 9 (second): one logically deleted node remains linked with
    // the right sentinel's deleted bit set — reached by popping the only
    // element from the right (physical deletion is deferred to the next
    // right-side operation).
    let d = RawListDeque::<u32, GlobalSeqLock>::new();
    d.push_right(7).unwrap();
    assert_eq!(d.pop_right(), Some(7));
    let lay = d.layout();
    assert_eq!(lay.cells, vec![None]);
    assert!(lay.right_deleted);
    assert!(!lay.left_deleted);
    // The deque is empty for both ends despite the lingering node.
    assert_eq!(d.pop_left(), None);
    assert_eq!(d.pop_right(), None);
}

#[test]
fn fig9_empty_with_left_deleted_cell() {
    // Figure 9 (third): mirror image via popLeft.
    let d = RawListDeque::<u32, GlobalSeqLock>::new();
    d.push_left(7).unwrap();
    assert_eq!(d.pop_left(), Some(7));
    let lay = d.layout();
    assert_eq!(lay.cells, vec![None]);
    assert!(lay.left_deleted);
    assert!(!lay.right_deleted);
    assert_eq!(d.pop_right(), None);
}

#[test]
fn fig9_empty_with_two_deleted_cells() {
    // Figure 9 (bottom): two logically deleted nodes, both sentinel
    // deleted bits set — one pop from each side of a two-element deque.
    let d = RawListDeque::<u32, GlobalSeqLock>::new();
    d.push_left(1).unwrap();
    d.push_right(2).unwrap();
    assert_eq!(d.pop_right(), Some(2));
    assert_eq!(d.pop_left(), Some(1));
    let lay = d.layout();
    assert_eq!(lay.cells, vec![None, None]);
    assert!(lay.left_deleted);
    assert!(lay.right_deleted);
    // Any subsequent operation completes the physical deletions.
    assert_eq!(d.pop_right(), None);
    let lay = d.layout();
    assert_eq!(lay.cells, vec![]);
    assert!(!lay.left_deleted);
    assert!(!lay.right_deleted);
}

#[test]
fn fig12_pop_right_marks_node() {
    // Figure 12: popRight nulls the value and sets SR's deleted bit; the
    // node stays physically linked.
    let d = RawListDeque::<u32, GlobalSeqLock>::new();
    d.push_right(10).unwrap();
    d.push_right(11).unwrap();
    assert_eq!(d.pop_right(), Some(11));
    let lay = d.layout();
    assert_eq!(lay.cells, vec![Some(10u32.encode_for_test()), None]);
    assert!(lay.right_deleted);
}

#[test]
fn fig14_push_right_appends_before_sentinel() {
    // Figure 14: pushRight splices the new node between the old rightmost
    // node and SR.
    let d = RawListDeque::<u32, GlobalSeqLock>::new();
    d.push_right(1).unwrap();
    let before = d.layout();
    assert_eq!(before.cells.len(), 1);
    d.push_right(2).unwrap();
    let after = d.layout();
    assert_eq!(after.cells.len(), 2);
    assert_eq!(after.cells[0], before.cells[0]);
    assert_eq!(after.cells[1], Some(2u32.encode_for_test()));
}

#[test]
fn fig15_delete_right_splices_null_node() {
    // Figure 15: after a popRight leaves a null node, the next right-side
    // operation physically deletes it.
    let d = RawListDeque::<u32, GlobalSeqLock>::new();
    d.push_right(1).unwrap();
    d.push_right(2).unwrap();
    assert_eq!(d.pop_right(), Some(2));
    assert_eq!(d.layout().cells.len(), 2); // null node lingers
    assert!(d.layout().right_deleted);
    // The next pushRight first completes the deletion, then appends.
    d.push_right(3).unwrap();
    let lay = d.layout();
    assert_eq!(lay.cells.len(), 2);
    assert_eq!(lay.cells[0], Some(1u32.encode_for_test()));
    assert_eq!(lay.cells[1], Some(3u32.encode_for_test()));
    assert!(!lay.right_deleted);
}

/// Helper so tests can state expected encoded cell words readably.
trait EncodeForTest {
    fn encode_for_test(self) -> u64;
}

impl EncodeForTest for u32 {
    fn encode_for_test(self) -> u64 {
        use crate::value::WordValue;
        self.encode()
    }
}

#[test]
fn pop_on_deleted_side_first_completes_deletion() {
    // popRight must work when SR's deleted bit is set and more values
    // remain.
    let d = RawListDeque::<u32, GlobalSeqLock>::new();
    d.push_right(1).unwrap();
    d.push_right(2).unwrap();
    d.push_right(3).unwrap();
    assert_eq!(d.pop_right(), Some(3)); // leaves deleted bit set
    assert_eq!(d.pop_right(), Some(2)); // completes deletion, pops again
    assert_eq!(d.pop_right(), Some(1));
    assert_eq!(d.pop_right(), None);
}

#[test]
fn single_element_popped_from_far_side() {
    // A node marked by popRight is observed as null by popLeft, which
    // must report empty (the identity-DCAS path, lines 8-12 of Fig 32).
    for_all_strategies(|mk| {
        let d = mk();
        d.push_right(9);
        assert_eq!(d.pop_right(), Some(9));
        assert_eq!(d.pop_left(), None);
        assert_eq!(d.pop_left(), None);
    });
}

#[test]
fn lifo_from_each_end() {
    for_all_strategies(|mk| {
        let d = mk();
        for i in 0..50 {
            d.push_right(i);
        }
        for i in (0..50).rev() {
            assert_eq!(d.pop_right(), Some(i));
        }
        for i in 0..50 {
            d.push_left(i);
        }
        for i in (0..50).rev() {
            assert_eq!(d.pop_left(), Some(i));
        }
    });
}

#[test]
fn fifo_across_ends() {
    for_all_strategies(|mk| {
        let d = mk();
        for i in 0..50 {
            d.push_right(i);
        }
        for i in 0..50 {
            assert_eq!(d.pop_left(), Some(i));
        }
        for i in 0..50 {
            d.push_left(i);
        }
        for i in 0..50 {
            assert_eq!(d.pop_right(), Some(i));
        }
        assert_eq!(d.pop_right(), None);
        assert_eq!(d.pop_left(), None);
    });
}

#[test]
fn alternating_push_pop_both_sides() {
    for_all_strategies(|mk| {
        let d = mk();
        for round in 0..20 {
            d.push_left(round * 2);
            d.push_right(round * 2 + 1);
            assert_eq!(d.pop_left(), Some(round * 2));
            assert_eq!(d.pop_right(), Some(round * 2 + 1));
            assert_eq!(d.pop_right(), None);
        }
    });
}

#[test]
fn extra_dcas_per_pop_claim() {
    // Section 1.2: "The cost of this splitting technique is an extra DCAS
    // per pop operation." An uncontended push costs one DCAS; a pop costs
    // one DCAS now plus one deferred deleteRight DCAS in the next
    // same-side operation.
    let d = RawListDeque::<u32, Counting<GlobalLock>>::new();
    d.push_right(1).unwrap(); // 1 DCAS
    assert_eq!(d.strategy().stats().dcas_attempts, 1);
    assert_eq!(d.pop_right(), Some(1)); // 1 DCAS (logical delete)
    assert_eq!(d.strategy().stats().dcas_attempts, 2);
    d.push_right(2).unwrap(); // deleteRight (1) + push (1)
    let s = d.strategy().stats();
    assert_eq!(s.dcas_attempts, 4);
    assert_eq!(s.dcas_successes, 4);
}

#[test]
fn typed_deque_with_strings() {
    let d: ListDeque<String> = ListDeque::new();
    d.push_right("b".into()).unwrap();
    d.push_left("a".into()).unwrap();
    d.push_right("c".into()).unwrap();
    assert_eq!(d.pop_left().as_deref(), Some("a"));
    assert_eq!(d.pop_right().as_deref(), Some("c"));
    assert_eq!(d.pop_right().as_deref(), Some("b"));
    assert_eq!(d.pop_right(), None);
}

#[test]
fn drop_releases_remaining_values_and_nodes() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    #[derive(Debug)]
    struct Probe;
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    DROPS.store(0, Ordering::SeqCst);
    {
        let d: ListDeque<Probe, GlobalLock> = ListDeque::new();
        for _ in 0..6 {
            d.push_right(Probe).unwrap();
        }
        drop(d.pop_left().unwrap());
        drop(d.pop_right().unwrap());
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
        // 4 values remain, plus two lingering null nodes.
    }
    assert_eq!(DROPS.load(Ordering::SeqCst), 6);
}

#[test]
fn drop_with_pending_deleted_nodes() {
    // Dropping while deleted bits are set must not double-free.
    let d = RawListDeque::<u32, GlobalLock>::new();
    d.push_left(1).unwrap();
    d.push_right(2).unwrap();
    assert_eq!(d.pop_left(), Some(1));
    assert_eq!(d.pop_right(), Some(2));
    let lay = d.layout();
    assert_eq!(lay.cells, vec![None, None]);
    drop(d);
}

mod properties {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[derive(Debug, Clone)]
    enum Op {
        PushRight(u32),
        PushLeft(u32),
        PopRight,
        PopLeft,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u32..1000).prop_map(Op::PushRight),
            (0u32..1000).prop_map(Op::PushLeft),
            Just(Op::PopRight),
            Just(Op::PopLeft),
        ]
    }

    proptest! {
        #[test]
        fn matches_vecdeque_model(
            ops in proptest::collection::vec(op_strategy(), 0..300),
        ) {
            let d = RawListDeque::<u32, GlobalSeqLock>::new();
            let mut model: VecDeque<u32> = VecDeque::new();
            for op in &ops {
                match *op {
                    Op::PushRight(v) => {
                        d.push_right(v).unwrap();
                        model.push_back(v);
                    }
                    Op::PushLeft(v) => {
                        d.push_left(v).unwrap();
                        model.push_front(v);
                    }
                    Op::PopRight => prop_assert_eq!(d.pop_right(), model.pop_back()),
                    Op::PopLeft => prop_assert_eq!(d.pop_left(), model.pop_front()),
                }
            }
            prop_assert_eq!(d.layout().live_values(), model.len());
        }

        #[test]
        fn structural_invariants_hold(
            ops in proptest::collection::vec(op_strategy(), 0..150),
        ) {
            // Sequential slice of the representation invariant of
            // Figures 24-25: at most one null node per side, null nodes
            // are adjacent to their sentinel, and a null node on a side
            // implies that side's deleted bit... except transiently when
            // the opposite side's pop created it (checked loosely: nulls
            // only ever at the extremities).
            let d = RawListDeque::<u32, GlobalLock>::new();
            for op in &ops {
                match *op {
                    Op::PushRight(v) => { d.push_right(v).unwrap(); }
                    Op::PushLeft(v) => { d.push_left(v).unwrap(); }
                    Op::PopRight => { d.pop_right(); }
                    Op::PopLeft => { d.pop_left(); }
                }
                let lay = d.layout();
                let n = lay.cells.len();
                let nulls = lay.cells.iter().filter(|c| c.is_none()).count();
                prop_assert!(nulls <= 2, "more than two null nodes: {:?}", lay);
                for (i, c) in lay.cells.iter().enumerate() {
                    if c.is_none() {
                        prop_assert!(
                            i == 0 || i == n - 1,
                            "interior null node at {} in {:?}", i, lay
                        );
                    }
                }
                // A set deleted bit points at a null node.
                if lay.right_deleted {
                    prop_assert_eq!(lay.cells.last().copied(), Some(None));
                }
                if lay.left_deleted {
                    prop_assert_eq!(lay.cells.first().copied(), Some(None));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Batched operations.
// ---------------------------------------------------------------------

fn for_all_strategies_batch(f: impl Fn(Box<dyn Fn() -> Box<dyn DynBatchDeque>>)) {
    f(Box::new(
        || Box::new(RawListDeque::<u32, GlobalLock>::new()),
    ));
    f(Box::new(|| {
        Box::new(RawListDeque::<u32, GlobalSeqLock>::new())
    }));
    f(Box::new(|| {
        Box::new(RawListDeque::<u32, StripedLock>::new())
    }));
    f(Box::new(
        || Box::new(RawListDeque::<u32, HarrisMcas>::new()),
    ));
    f(Box::new(|| {
        Box::new(RawListDeque::<u32, HarrisMcasHazard>::new())
    }));
}

/// Object-safe facade over the batched API (list pushes never fail).
trait DynBatchDeque: Send + Sync {
    fn push_right_n(&self, vals: Vec<u32>);
    fn push_left_n(&self, vals: Vec<u32>);
    fn pop_right_n(&self, n: usize) -> Vec<u32>;
    fn pop_left_n(&self, n: usize) -> Vec<u32>;
    fn pop_right1(&self) -> Option<u32>;
    fn pop_left1(&self) -> Option<u32>;
}

impl<S: DcasStrategy> DynBatchDeque for RawListDeque<u32, S> {
    fn push_right_n(&self, vals: Vec<u32>) {
        RawListDeque::push_right_n(self, vals).unwrap();
    }
    fn push_left_n(&self, vals: Vec<u32>) {
        RawListDeque::push_left_n(self, vals).unwrap();
    }
    fn pop_right_n(&self, n: usize) -> Vec<u32> {
        RawListDeque::pop_right_n(self, n)
    }
    fn pop_left_n(&self, n: usize) -> Vec<u32> {
        RawListDeque::pop_left_n(self, n)
    }
    fn pop_right1(&self) -> Option<u32> {
        RawListDeque::pop_right(self)
    }
    fn pop_left1(&self) -> Option<u32> {
        RawListDeque::pop_left(self)
    }
}

#[test]
fn batch_order_matches_repeated_singles() {
    for_all_strategies_batch(|mk| {
        let d = mk();
        d.push_right_n(vec![1, 2, 3]); // <1,2,3>
        d.push_left_n(vec![4, 5]); // <5,4,1,2,3>
        assert_eq!(d.pop_left_n(2), vec![5, 4]);
        assert_eq!(d.pop_right_n(2), vec![3, 2]);
        assert_eq!(d.pop_left_n(9), vec![1]); // short pop
        assert_eq!(d.pop_left_n(4), Vec::<u32>::new());
        assert_eq!(d.pop_right_n(4), Vec::<u32>::new());
    });
}

#[test]
fn batch_spans_multiple_chunks() {
    for_all_strategies_batch(|mk| {
        let d = mk();
        let vals: Vec<u32> = (1..=30).collect();
        d.push_right_n(vals.clone());
        assert_eq!(d.pop_left_n(64), vals);
        d.push_left_n(vals.clone());
        let mut rev = vals.clone();
        rev.reverse();
        assert_eq!(d.pop_left_n(64), rev);
        // Batch pushes interleave correctly with single ops.
        d.push_right_n(vec![1, 2]);
        d.push_left_n(vec![3]);
        assert_eq!(d.pop_right1(), Some(2));
        assert_eq!(d.pop_left1(), Some(3));
        assert_eq!(d.pop_right_n(5), vec![1]);
    });
}

#[test]
fn batch_pop_straddles_null_nodes() {
    // A half-finished single pop (logically deleted, not yet spliced)
    // never blocks a batch pop: pop_left leaves a null node adjacent to
    // the sentinel which the chunk walk must step over via delete_left.
    for_all_strategies_batch(|mk| {
        let d = mk();
        d.push_right_n((1..=6).collect());
        assert_eq!(d.pop_left1(), Some(1));
        assert_eq!(d.pop_left_n(3), vec![2, 3, 4]);
        assert_eq!(d.pop_right1(), Some(6));
        assert_eq!(d.pop_right_n(3), vec![5]);
    });
}

#[test]
fn batch_matches_vecdeque_model() {
    use std::collections::VecDeque;
    for_all_strategies_batch(|mk| {
        let d = mk();
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut x = 0xFEEDu64;
        let mut nextv = 1u32;
        for _ in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = 1 + (x >> 18) as usize % 11;
            match (x >> 60) % 4 {
                0 => {
                    let vals: Vec<u32> = (nextv..nextv + k as u32).collect();
                    nextv += k as u32;
                    d.push_right_n(vals.clone());
                    model.extend(&vals);
                }
                1 => {
                    let vals: Vec<u32> = (nextv..nextv + k as u32).collect();
                    nextv += k as u32;
                    d.push_left_n(vals.clone());
                    vals.iter().for_each(|&v| model.push_front(v));
                }
                2 => {
                    let got = d.pop_right_n(k);
                    let want: Vec<u32> = (0..k).filter_map(|_| model.pop_back()).collect();
                    assert_eq!(got, want);
                }
                _ => {
                    let got = d.pop_left_n(k);
                    let want: Vec<u32> = (0..k).filter_map(|_| model.pop_front()).collect();
                    assert_eq!(got, want);
                }
            }
        }
    });
}

#[test]
fn batch_concurrent_conservation() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;
    for_all_strategies_batch(|mk| {
        let d = mk();
        let popped = Mutex::new(Vec::<u32>::new());
        let produced = AtomicU64::new(0);
        const PER: u32 = 3_000;
        std::thread::scope(|s| {
            for t in 0..2u32 {
                let d = &d;
                let produced = &produced;
                s.spawn(move || {
                    let mut v = t * PER + 1;
                    let end = (t + 1) * PER;
                    let mut k = 1usize;
                    while v <= end {
                        let hi = (v + k as u32 - 1).min(end);
                        let batch: Vec<u32> = (v..=hi).collect();
                        if t == 0 {
                            d.push_right_n(batch);
                        } else {
                            d.push_left_n(batch);
                        }
                        produced.fetch_add((hi - v + 1) as u64, Ordering::Relaxed);
                        v = hi + 1;
                        k = k % 9 + 1;
                    }
                });
            }
            for t in 0..2u32 {
                let d = &d;
                let popped = &popped;
                let produced = &produced;
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut k = 1usize;
                    loop {
                        let vals = if t == 0 {
                            d.pop_left_n(k)
                        } else {
                            d.pop_right_n(k)
                        };
                        let drained = vals.is_empty();
                        got.extend(vals);
                        k = k % 9 + 1;
                        if drained && produced.load(Ordering::Relaxed) == 2 * PER as u64 {
                            let l = d.pop_left_n(crate::MAX_BATCH);
                            let r = d.pop_right_n(crate::MAX_BATCH);
                            let done = l.is_empty() && r.is_empty();
                            got.extend(l);
                            got.extend(r);
                            if done {
                                break;
                            }
                        }
                    }
                    popped.lock().unwrap().extend(got);
                });
            }
        });
        let mut all = popped.into_inner().unwrap();
        all.sort_unstable();
        assert_eq!(all.len(), 2 * PER as usize, "values lost or duplicated");
        all.dedup();
        assert_eq!(all.len(), 2 * PER as usize, "duplicate values popped");
    });
}

#[test]
fn elimination_deque_conserves_under_push_pop_races() {
    use dcas::EndConfig;
    use std::sync::Mutex;
    let d = RawListDeque::<u32, HarrisMcas>::with_end_config(EndConfig {
        elimination: true,
        elim_slots: 2,
        offer_spins: 64,
    });
    let popped = Mutex::new(Vec::<u32>::new());
    const PER: u32 = 20_000;
    std::thread::scope(|s| {
        for t in 0..2u32 {
            let d = &d;
            s.spawn(move || {
                for v in (t * PER + 1)..=(t + 1) * PER {
                    RawListDeque::push_left(d, v).unwrap();
                }
            });
        }
        for _ in 0..2 {
            let d = &d;
            let popped = &popped;
            s.spawn(move || {
                let mut got = Vec::new();
                let mut idle = 0;
                while idle < 10_000 {
                    match RawListDeque::pop_left(d) {
                        Some(v) => {
                            got.push(v);
                            idle = 0;
                        }
                        None => idle += 1,
                    }
                }
                popped.lock().unwrap().extend(got);
            });
        }
    });
    let mut rest = d.pop_right_n(2 * PER as usize);
    let mut all = popped.into_inner().unwrap();
    all.append(&mut rest);
    all.sort_unstable();
    let before = all.len();
    all.dedup();
    assert_eq!(all.len(), before, "duplicate values popped");
    assert_eq!(all.len(), 2 * PER as usize, "values lost");
}

#[test]
fn batch_push_panicking_iterator_leaks_nothing() {
    // The batched list push builds its whole private chain before the
    // single splicing DCAS; a value iterator that panics mid-chain
    // (modeling a throwing `Clone`) must free every chain node and
    // value, leaving the list untouched and fully operational.
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicIsize, Ordering};
    use std::sync::Arc;

    use crate::value::Boxed;

    struct Counted(Arc<AtomicIsize>);
    impl Counted {
        fn new(live: &Arc<AtomicIsize>) -> Self {
            live.fetch_add(1, Ordering::SeqCst);
            Counted(live.clone())
        }
    }
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    let live = Arc::new(AtomicIsize::new(0));
    let d: RawListDeque<Boxed<Counted>, HarrisMcas> = RawListDeque::new();
    for _ in 0..2 {
        assert!(d.push_right(Boxed::new(Counted::new(&live))).is_ok());
    }

    for left in [false, true] {
        let l2 = live.clone();
        let res = catch_unwind(AssertUnwindSafe(|| {
            let vals = (0..10).map(|i| {
                if i == 5 {
                    panic!("mid-chain");
                }
                Boxed::new(Counted::new(&l2))
            });
            if left {
                d.push_left_n(vals)
            } else {
                d.push_right_n(vals)
            }
        }));
        assert!(res.is_err());
        assert_eq!(live.load(Ordering::SeqCst), 2, "chain values leaked");
        let layout = d.layout();
        assert_eq!(layout.live_values(), 2, "partial chain reached the list");
    }

    // Still fully operational.
    assert!(d.push_left(Boxed::new(Counted::new(&live))).is_ok());
    assert_eq!(live.load(Ordering::SeqCst), 3);
    while d.pop_right().is_some() {}
    drop(d);
    assert_eq!(live.load(Ordering::SeqCst), 0);
}

#[test]
fn reclaim_hazard_list_concurrent_mixed_ops_conserve_values() {
    // Mixed single/batch traffic on the hazard-backed list: every
    // pushed value is popped exactly once, and after a final flush the
    // backend's live garbage sits under its static bound (nothing
    // leaked into an unbounded queue).
    use std::sync::Arc;

    use dcas::{HazardReclaimer, Reclaimer};

    let d: Arc<ListDeque<u64, HarrisMcasHazard>> = Arc::new(ListDeque::new());
    let threads = 4u64;
    let per = 300u64;
    let mut handles = vec![];
    for t in 0..threads {
        let d = Arc::clone(&d);
        handles.push(std::thread::spawn(move || {
            let mut popped = 0usize;
            for i in 0..per {
                let v = t * per + i;
                match i % 4 {
                    0 => d.push_left(v).unwrap(),
                    1 => d.push_right(v).unwrap(),
                    2 => d.push_right_n([v, v, v]).unwrap(),
                    _ => d.push_left_n([v, v]).unwrap(),
                }
                match i % 3 {
                    0 => popped += usize::from(d.pop_left().is_some()),
                    1 => popped += usize::from(d.pop_right().is_some()),
                    _ => popped += d.pop_right_n(2).len(),
                }
            }
            popped
        }));
    }
    let popped: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let mut rest = 0usize;
    while d.pop_left().is_some() {
        rest += 1;
    }
    let pushed_per: usize = (0..per)
        .map(|i| match i % 4 {
            0 | 1 => 1,
            2 => 3,
            _ => 2,
        })
        .sum();
    assert_eq!(popped + rest, threads as usize * pushed_per);
    HazardReclaimer::flush();
    assert!(
        HazardReclaimer::live_garbage() <= dcas::reclaim::hazard::static_garbage_bound(),
        "hazard live garbage exceeds the static bound after flush"
    );
}

/// Both node-allocation arms (page pool and seed-compatible `Box`)
/// behind the same deque semantics: interleaved two-ended traffic
/// drains to the exact push count on each arm. Named `pooled_` so CI's
/// allocator suite can select the per-family A/B units.
#[test]
fn pooled_and_boxed_arms_agree() {
    for pooled in [false, true] {
        let d = ListDeque::<u32>::with_node_alloc(super::node_alloc(pooled));
        for i in 0..200u32 {
            if i % 2 == 0 {
                d.push_right(i).unwrap();
            } else {
                d.push_left(i).unwrap();
            }
        }
        let mut got = 0;
        while d.pop_left().is_some() || d.pop_right().is_some() {
            got += 1;
        }
        assert_eq!(got, 200, "pooled={pooled}");
    }
}
