//! Encodings of user values into DCAS payload words.
//!
//! The paper's deques store abstract values from a set `val` in single
//! memory words, with a handful of distinguished non-`val` constants:
//! `null` (both algorithms) and `sentL`/`sentR` (the linked-list
//! algorithm). This module defines the encoding contract and two concrete
//! encodings:
//!
//! * [`Boxed<T>`] — heap-boxes an arbitrary `T` and stores the (16-byte
//!   aligned) pointer; the general-purpose encoding behind the typed deque
//!   APIs.
//! * `u32` — stored inline with a shift-and-offset; the zero-allocation
//!   encoding used by benchmarks and stress tests.

use crate::reserved;

/// A value that can be stored directly in a [`DcasWord`](dcas::DcasWord)
/// inside a deque slot or node value field.
///
/// # Safety
///
/// Implementations must guarantee that [`encode`](WordValue::encode)
/// returns a word that
///
/// * satisfies the DCAS payload contract (low two bits clear),
/// * is **at least [`reserved::MIN_VALUE`]**, so it is distinct from the
///   deque-internal constants `NULL` (0), `SENTL` (4) and `SENTR` (8), and
/// * round-trips: `decode(encode(v))` yields a value equivalent to `v`,
///   and distinct live values encode to distinct words.
///
/// `decode` and `drop_encoded` take logical ownership of the encoded word;
/// each encoded word must be consumed exactly once by one of them.
pub unsafe trait WordValue: Send + Sized {
    /// Consumes the value, producing its word encoding.
    fn encode(self) -> u64;

    /// Reconstitutes a value from its encoding, taking ownership.
    ///
    /// # Safety
    ///
    /// `w` must be a word previously produced by [`encode`](Self::encode)
    /// on this type and not yet consumed.
    unsafe fn decode(w: u64) -> Self;

    /// Releases the resources of an encoded word without reconstituting
    /// the value (used when a deque containing values is dropped).
    ///
    /// # Safety
    ///
    /// Same contract as [`decode`](Self::decode).
    unsafe fn drop_encoded(w: u64) {
        // SAFETY: forwarded caller contract.
        drop(unsafe { Self::decode(w) });
    }
}

/// A value that can report a stable `u64` identity for op tracing.
///
/// Observability wrappers (`dcas_obs::Recorded`) record the identity of
/// every pushed and popped element so captured traces can be replayed
/// against the sequential deque specification. The identity must be
/// **stable across the push/pop round-trip** (popping the element yields
/// the same id that was recorded at push time) and should be unique per
/// live element for the audit to be meaningful — a deque holding two
/// elements with equal ids still traces, but the linearizability verdict
/// weakens to "some element with this id".
///
/// Unlike [`WordValue`] this trait is safe: ids are telemetry, never
/// dereferenced.
pub trait TraceId {
    /// The value's trace identity.
    fn trace_id(&self) -> u64;
}

macro_rules! trace_id_uint {
    ($($t:ty),*) => {$(
        impl TraceId for $t {
            #[inline]
            fn trace_id(&self) -> u64 {
                *self as u64
            }
        }
    )*};
}

trace_id_uint!(u8, u16, u32, u64, usize);

/// Force 16-byte alignment so that boxed-value pointers leave the low four
/// bits clear (two for the DCAS substrate, one for the deleted flag, one
/// spare).
#[repr(align(16))]
struct Align16<T>(T);

/// Heap-boxed encoding of an arbitrary `T`.
///
/// `Boxed<T>` is how the typed deque APIs ([`ArrayDeque`](crate::ArrayDeque),
/// [`ListDeque`](crate::ListDeque)) store arbitrary element types: `push`
/// allocates one box, `pop` frees it. This mirrors the paper's model, in
/// which values are machine words and anything larger lives behind a
/// pointer managed by the garbage-collected host (Lisp / Java).
pub struct Boxed<T>(Box<Align16<T>>);

impl<T> Boxed<T> {
    /// Boxes `v`.
    pub fn new(v: T) -> Self {
        Boxed(Box::new(Align16(v)))
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.0 .0
    }
}

impl<T: TraceId> TraceId for Boxed<T> {
    fn trace_id(&self) -> u64 {
        self.0 .0.trace_id()
    }
}

// SAFETY: `Box` pointers are non-null, unique, and 16-byte aligned thanks
// to `Align16`, hence >= MIN_VALUE and payload-valid; decode/encode
// round-trip through `Box::into_raw`/`Box::from_raw`.
unsafe impl<T: Send> WordValue for Boxed<T> {
    fn encode(self) -> u64 {
        let w = Box::into_raw(self.0) as u64;
        debug_assert!(w >= reserved::MIN_VALUE && w.is_multiple_of(16));
        w
    }

    unsafe fn decode(w: u64) -> Self {
        debug_assert!(w >= reserved::MIN_VALUE);
        // SAFETY: `w` came from `Box::into_raw` in `encode` (caller
        // contract) and ownership is transferred exactly once.
        Boxed(unsafe { Box::from_raw(w as *mut Align16<T>) })
    }
}

// SAFETY: the affine map `v * 4 + MIN_VALUE` is injective, keeps the low
// two bits clear, and its range starts at MIN_VALUE.
unsafe impl WordValue for u32 {
    fn encode(self) -> u64 {
        (self as u64) * 4 + reserved::MIN_VALUE
    }

    unsafe fn decode(w: u64) -> Self {
        debug_assert!(w >= reserved::MIN_VALUE && w.is_multiple_of(4));
        ((w - reserved::MIN_VALUE) / 4) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        for v in [0u32, 1, 2, 3, 1000, u32::MAX] {
            let w = v.encode();
            assert!(w >= reserved::MIN_VALUE);
            assert_eq!(w % 4, 0);
            assert_eq!(unsafe { u32::decode(w) }, v);
        }
    }

    #[test]
    fn u32_distinct_values_distinct_words() {
        assert_ne!(0u32.encode(), 1u32.encode());
        assert_ne!(0u32.encode(), reserved::NULL);
        assert_ne!(0u32.encode(), reserved::SENTL);
        assert_ne!(0u32.encode(), reserved::SENTR);
    }

    #[test]
    fn boxed_roundtrip() {
        let b = Boxed::new(String::from("hello"));
        let w = b.encode();
        assert!(w >= reserved::MIN_VALUE);
        assert_eq!(w % 16, 0);
        let back = unsafe { Boxed::<String>::decode(w) };
        assert_eq!(back.into_inner(), "hello");
    }

    #[test]
    fn boxed_drop_encoded_releases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let w = Boxed::new(Probe).encode();
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        unsafe { Boxed::<Probe>::drop_encoded(w) };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
}
