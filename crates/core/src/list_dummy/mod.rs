//! The *dummy-node* variant of the linked-list deque (footnote 4 and
//! Figure 10 of the paper).
//!
//! The published algorithm packs a **deleted bit** into each sentinel's
//! inward pointer word. The paper notes that "one can altogether eliminate
//! the need for a 'deleted' bit by introducing a special dummy type
//! 'delete-bit' node, distinguishable from regular nodes, in place of the
//! bit ... pointing to a node indirectly via its dummy node represents a
//! bit value of true, and pointing directly represents false."
//!
//! This module implements that variant:
//!
//! * A *dummy* node is an ordinary `Node` whose value word holds the
//!   distinguished `DUMMY` constant and whose `l` field holds the real
//!   target; regular nodes can never hold `DUMMY` as a value.
//! * A sentinel pointer word therefore needs no spare bits at all — a
//!   useful property on machines without alignment to spare, which is the
//!   footnote's motivation.
//! * The paper suggests each processor reuses two preallocated dummies;
//!   we instead allocate a fresh dummy per logical deletion and retire it
//!   at physical deletion. Reuse would re-introduce an ABA window on the
//!   sentinel word (two deletions of different nodes through the same
//!   dummy produce identical words), which the footnote does not address;
//!   fresh allocation sidesteps it and is what a GC-hosted implementation
//!   would do anyway. The cost is one extra allocation per pop, measured
//!   against the deleted-bit variant in bench `e5_array_vs_list`.

// Nested `if`s mirror the paper's listing structure; do not collapse.
#![allow(clippy::collapsible_if)]

use std::marker::PhantomData;

use crossbeam_utils::CachePadded;
use dcas::{DcasStrategy, DcasWord, HarrisMcas, NodeAlloc, NodePool, ReclaimGuard, Reclaimer};

use crate::reserved::{NULL, SENTL, SENTR};
use crate::value::{Boxed, WordValue};
use crate::{ConcurrentDeque, Full};

/// The guard type of a strategy's reclamation backend.
type GuardOf<S> = <<S as DcasStrategy>::Reclaimer as Reclaimer>::Guard;

#[cfg(test)]
mod tests;

/// The distinguished value marking a dummy "delete-bit" node.
const DUMMY: u64 = 12;

#[repr(align(16))]
struct Node {
    /// Left pointer word; in a dummy node, the real target pointer.
    l: DcasWord,
    /// Right pointer word (unused in dummy nodes).
    r: DcasWord,
    /// `NULL`, `SENTL`, `SENTR`, `DUMMY`, or an encoded user value.
    value: DcasWord,
}

impl Node {
    fn new_blank() -> Node {
        Node { l: DcasWord::new(0), r: DcasWord::new(0), value: DcasWord::new(NULL) }
    }
}

/// Page pool for this module's nodes and dummies (sentinels stay boxed).
static NODE_POOL: NodePool = NodePool::new("list_dummy", std::mem::size_of::<Node>(), 16);

/// Builds a [`NodeAlloc`] handle for this module's node pool:
/// `pooled = true` selects the page-pool arm, `false` the boxed
/// seed-compat arm (for A/B comparisons inside one binary).
pub fn node_alloc(pooled: bool) -> NodeAlloc {
    if pooled {
        NodeAlloc::pooled(&NODE_POOL)
    } else {
        NodeAlloc::boxed(&NODE_POOL)
    }
}

/// Default allocation arm; `box-nodes` flips it to the seed-compat heap.
fn default_node_alloc() -> NodeAlloc {
    if cfg!(feature = "box-nodes") {
        NodeAlloc::boxed(&NODE_POOL)
    } else {
        NodeAlloc::pooled(&NODE_POOL)
    }
}

/// Allocates a blank node through `alloc`'s arm.
fn alloc_node(alloc: NodeAlloc) -> *mut Node {
    if alloc.is_pooled() {
        let n = alloc.pool().alloc().cast::<Node>();
        // SAFETY: type-stable pool slot, reinitialized through the atomic
        // fields per the pool's quarantine contract (`init_store` is a
        // relaxed atomic store).
        unsafe {
            (*n).l.init_store(0);
            (*n).r.init_store(0);
            (*n).value.init_store(NULL);
        }
        n
    } else {
        Box::into_raw(Box::new(Node::new_blank()))
    }
}

/// Immediately frees an unpublished or quiescent node through `alloc`'s
/// arm.
///
/// # Safety
///
/// `n` must come from [`alloc_node`] with the same mode, be freed once,
/// and be unreachable by other threads.
unsafe fn free_node_now(alloc: NodeAlloc, n: *mut Node) {
    if alloc.is_pooled() {
        unsafe { NodePool::dealloc(n.cast()) };
    } else {
        drop(unsafe { Box::from_raw(n) });
    }
}

/// Reclaimer dtor for pooled nodes.
unsafe fn free_node_pooled(p: *mut u8) {
    // SAFETY: `p` came from the node pool; runs once, post-scan.
    unsafe { NodePool::dealloc(p) };
}

/// Reclaimer dtor for the boxed seed-compat arm.
unsafe fn free_node_boxed(p: *mut u8) {
    // SAFETY: `p` came from `Box::into_raw::<Node>`; runs once.
    drop(unsafe { Box::from_raw(p.cast::<Node>()) });
}

#[inline]
fn direct(ptr: *const Node) -> u64 {
    let p = ptr as u64;
    debug_assert_eq!(p & 0xF, 0);
    p
}

#[inline]
fn node_of(w: u64) -> *const Node {
    w as *const Node
}

/// An unpublished node plus its encoded value, owned by a push until
/// the splicing DCAS succeeds (the dummy-variant twin of the guard in
/// [`list`](crate::list)). Dropping it — only possible by unwinding out
/// of a strategy call, which per the strategy contract had no effect —
/// frees the node and releases the value.
struct PendingNode<V: WordValue> {
    node: *mut Node,
    val: u64,
    alloc: NodeAlloc,
    _marker: PhantomData<V>,
}

impl<V: WordValue> PendingNode<V> {
    fn new(v: V, alloc: NodeAlloc) -> Self {
        PendingNode { node: alloc_node(alloc), val: v.encode(), alloc, _marker: PhantomData }
    }

    fn published(self) {
        std::mem::forget(self);
    }
}

impl<V: WordValue> Drop for PendingNode<V> {
    fn drop(&mut self) {
        // SAFETY: reached only by unwinding before publication — the
        // node is private and the encoded value unconsumed.
        unsafe {
            free_node_now(self.alloc, self.node);
            V::drop_encoded(self.val);
        }
    }
}

/// An unpublished dummy node, freed on drop unless the logical-deletion
/// DCAS published it. Covers both the ordinary retry path (the DCAS
/// lost a race) and an unwinding strategy call.
struct PendingDummy {
    node: *const Node,
    alloc: NodeAlloc,
}

impl PendingDummy {
    fn published(self) {
        std::mem::forget(self);
    }
}

impl Drop for PendingDummy {
    fn drop(&mut self) {
        // SAFETY: unpublished, uniquely owned; dummies hold no value.
        unsafe { free_node_now(self.alloc, self.node as *mut Node) };
    }
}

/// A sentinel pointer word resolved through at most one dummy node.
struct Resolved {
    /// The real node pointed at (through the dummy if present).
    real: *const Node,
    /// Whether the word went through a dummy (the "deleted bit").
    deleted: bool,
}

/// Quiescent structural snapshot (see the deleted-bit variant's
/// [`ListLayout`](crate::list::ListLayout) for field meanings).
pub type DummyLayout = crate::list::ListLayout;

/// Word-level dummy-node deque; use [`DummyListDeque`] for arbitrary
/// element types.
pub struct RawDummyListDeque<V: WordValue, S: DcasStrategy> {
    strategy: S,
    sl: Box<CachePadded<Node>>,
    sr: Box<CachePadded<Node>>,
    /// Node-allocation arm: page pool (default) or boxed seed-compat.
    alloc: NodeAlloc,
    _marker: PhantomData<fn(V) -> V>,
}

// SAFETY: as for `RawListDeque` — all shared accesses go through the
// strategy and node lifetime is governed by the strategy's reclamation
// backend.
unsafe impl<V: WordValue, S: DcasStrategy> Send for RawDummyListDeque<V, S> {}
unsafe impl<V: WordValue, S: DcasStrategy> Sync for RawDummyListDeque<V, S> {}

impl<V: WordValue, S: DcasStrategy> Default for RawDummyListDeque<V, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: WordValue, S: DcasStrategy> RawDummyListDeque<V, S> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        Self::with_node_alloc(default_node_alloc())
    }

    /// Creates an empty deque with an explicit node-allocation arm.
    pub fn with_node_alloc(alloc: NodeAlloc) -> Self {
        let sl = Box::new(CachePadded::new(Node::new_blank()));
        let sr = Box::new(CachePadded::new(Node::new_blank()));
        let slp: *const Node = &**sl as *const Node;
        let srp: *const Node = &**sr as *const Node;
        sl.value.init_store(SENTL);
        sr.value.init_store(SENTR);
        sl.r.init_store(direct(srp));
        sr.l.init_store(direct(slp));
        RawDummyListDeque { strategy: S::default(), sl, sr, alloc, _marker: PhantomData }
    }

    #[inline]
    fn slp(&self) -> *const Node {
        &**self.sl as *const Node
    }

    #[inline]
    fn srp(&self) -> *const Node {
        &**self.sr as *const Node
    }

    /// The DCAS strategy instance.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// `true` if the strategy's backend requires announce-and-validate
    /// protection before traversal dereferences (hazard pointers).
    const NP: bool = <GuardOf<S> as ReclaimGuard>::NEEDS_PROTECT;

    /// Resolves a sentinel pointer word: a word aiming at a dummy node
    /// represents (target, deleted = true).
    ///
    /// # Safety
    ///
    /// Quiescent use only (`layout`, teardown): concurrent operations
    /// must go through [`load_resolved`](Self::load_resolved), which
    /// protects what it dereferences.
    unsafe fn resolve(&self, w: u64) -> Resolved {
        let n = node_of(w);
        // SAFETY: node reachable from a sentinel, quiescent per contract.
        if self.strategy.load(unsafe { &(*n).value }) == DUMMY {
            // SAFETY: dummy nodes are immutable after publication.
            let real = node_of(self.strategy.load(unsafe { &(*n).l }));
            Resolved { real, deleted: true }
        } else {
            Resolved { real: n, deleted: false }
        }
    }

    /// Loads and resolves a sentinel pointer word, leaving the node the
    /// word names protected at `slot` and (through a dummy) the real
    /// target at `slot + 1`. Both announcements validate against a
    /// re-read of `src`: the word names a node/dummy pair only until
    /// the splice that retires them rewrites it (and retired nodes are
    /// never relinked), and a dummy's target word is immutable, so an
    /// unchanged sentinel proves both announces landed while the pair
    /// was live.
    fn load_resolved(&self, g: &GuardOf<S>, src: &DcasWord, slot: usize) -> (u64, Resolved) {
        loop {
            let w = self.strategy.load(src);
            let n = node_of(w);
            if Self::NP {
                g.protect(slot, n as u64);
                if self.strategy.load(src) != w {
                    continue;
                }
            }
            // SAFETY: `n` is protected (or epoch-pinned).
            if self.strategy.load(unsafe { &(*n).value }) == DUMMY {
                // SAFETY: as above; dummy targets are immutable.
                let real = node_of(self.strategy.load(unsafe { &(*n).l }));
                if Self::NP {
                    g.protect(slot + 1, real as u64);
                    if self.strategy.load(src) != w {
                        g.clear(slot + 1);
                        continue;
                    }
                }
                return (w, Resolved { real, deleted: true });
            }
            return (w, Resolved { real: n, deleted: false });
        }
    }

    /// Allocates a dummy node indirecting to `target` (Figure 10).
    fn make_dummy(&self, target: *const Node) -> *const Node {
        let d = alloc_node(self.alloc);
        // SAFETY: unpublished.
        unsafe {
            (*d).value.init_store(DUMMY);
            (*d).l.init_store(direct(target));
        }
        d
    }

    /// # Safety
    ///
    /// As for `RawListDeque::retire`.
    unsafe fn retire(&self, node: *const Node, guard: &GuardOf<S>) {
        let dtor = if self.alloc.is_pooled() { free_node_pooled } else { free_node_boxed };
        // SAFETY: forwarded contract.
        unsafe {
            guard.retire(node as *mut u8, std::mem::size_of::<Node>(), dtor);
        }
    }

    /// `popRight` with dummy-node indirection in place of the deleted bit.
    pub fn pop_right(&self) -> Option<V> {
        let guard = S::Reclaimer::pin();
        loop {
            let (old_l, r) = self.load_resolved(&guard, &self.sr.l, 0);
            // SAFETY: `r.real` is protected by `load_resolved`.
            let v = self.strategy.load(unsafe { &(*r.real).value });
            if v == SENTL {
                return None;
            }
            if r.deleted {
                self.delete_right(&guard);
            } else if v == NULL {
                // SAFETY: as above.
                if self.strategy.dcas(
                    &self.sr.l,
                    unsafe { &(*r.real).value },
                    old_l,
                    v,
                    old_l,
                    v,
                ) {
                    return None;
                }
            } else {
                let dummy = PendingDummy { node: self.make_dummy(r.real), alloc: self.alloc };
                // SAFETY: as above.
                if self.strategy.dcas(
                    &self.sr.l,
                    unsafe { &(*r.real).value },
                    old_l,
                    v,
                    direct(dummy.node),
                    NULL,
                ) {
                    dummy.published();
                    // SAFETY: successful DCAS transfers value ownership.
                    return Some(unsafe { V::decode(v) });
                }
                // Not published: `dummy` drops and frees the node.
            }
        }
    }

    /// `pushRight` with dummy-node indirection.
    pub fn push_right(&self, v: V) -> Result<(), Full<V>> {
        let guard = S::Reclaimer::pin();
        // The pending guard owns node and value until published; an
        // unwinding strategy call frees both.
        let pending = PendingNode::<V>::new(v, self.alloc);
        let (node, val) = (pending.node, pending.val);
        loop {
            let (old_l, r) = self.load_resolved(&guard, &self.sr.l, 0);
            if r.deleted {
                self.delete_right(&guard);
            } else {
                // SAFETY: unpublished node.
                unsafe {
                    (*node).r.init_store(direct(self.srp()));
                    (*node).l.init_store(direct(r.real));
                    (*node).value.init_store(val);
                }
                let old_lr = direct(self.srp());
                // SAFETY: as above.
                if self.strategy.dcas(
                    &self.sr.l,
                    unsafe { &(*r.real).r },
                    old_l,
                    old_lr,
                    direct(node),
                    direct(node),
                ) {
                    pending.published();
                    return Ok(());
                }
            }
        }
    }

    fn delete_right(&self, guard: &GuardOf<S>) {
        loop {
            let (old_l, r) = self.load_resolved(guard, &self.sr.l, 0);
            if !r.deleted {
                return;
            }
            let victim = r.real;
            // SAFETY: `victim` is protected by `load_resolved`; `old_ll`
            // by the dual validation below (the victim's link words
            // freeze once it is spliced out, so the sentinel re-read is
            // needed to pin the victim as still-linked — see the
            // deleted-bit variant's `delete_right`).
            let old_ll = node_of(self.strategy.load(unsafe { &(*victim).l }));
            if Self::NP {
                guard.protect(2, old_ll as u64);
                if node_of(self.strategy.load(unsafe { &(*victim).l })) != old_ll
                    || self.strategy.load(&self.sr.l) != old_l
                {
                    guard.clear(2);
                    continue;
                }
            }
            let v = self.strategy.load(unsafe { &(*old_ll).value });
            if v != NULL {
                let old_llr = self.strategy.load(unsafe { &(*old_ll).r });
                if victim == node_of(old_llr) {
                    if self.strategy.dcas(
                        &self.sr.l,
                        unsafe { &(*old_ll).r },
                        old_l,
                        old_llr,
                        direct(old_ll),
                        direct(self.srp()),
                    ) {
                        // SAFETY: our DCAS unlinked the victim and its dummy.
                        unsafe {
                            self.retire(victim, guard);
                            self.retire(node_of(old_l), guard);
                        }
                        return;
                    }
                }
            } else {
                // Two null items: race the left side for the double splice.
                let (old_r, l) = self.load_resolved(guard, &self.sl.r, 3);
                if l.deleted {
                    if self.strategy.dcas(
                        &self.sr.l,
                        &self.sl.r,
                        old_l,
                        old_r,
                        direct(self.slp()),
                        direct(self.srp()),
                    ) {
                        // SAFETY: both nodes and both dummies unlinked.
                        unsafe {
                            self.retire(victim, guard);
                            self.retire(node_of(old_l), guard);
                            self.retire(l.real, guard);
                            self.retire(node_of(old_r), guard);
                        }
                        return;
                    }
                }
            }
        }
    }

    /// `popLeft` with dummy-node indirection.
    pub fn pop_left(&self) -> Option<V> {
        let guard = S::Reclaimer::pin();
        loop {
            let (old_r, l) = self.load_resolved(&guard, &self.sl.r, 0);
            // SAFETY: `l.real` is protected by `load_resolved`.
            let v = self.strategy.load(unsafe { &(*l.real).value });
            if v == SENTR {
                return None;
            }
            if l.deleted {
                self.delete_left(&guard);
            } else if v == NULL {
                // SAFETY: as above.
                if self.strategy.dcas(
                    &self.sl.r,
                    unsafe { &(*l.real).value },
                    old_r,
                    v,
                    old_r,
                    v,
                ) {
                    return None;
                }
            } else {
                let dummy = PendingDummy { node: self.make_dummy(l.real), alloc: self.alloc };
                // SAFETY: as above.
                if self.strategy.dcas(
                    &self.sl.r,
                    unsafe { &(*l.real).value },
                    old_r,
                    v,
                    direct(dummy.node),
                    NULL,
                ) {
                    dummy.published();
                    // SAFETY: as above.
                    return Some(unsafe { V::decode(v) });
                }
                // Not published: `dummy` drops and frees the node.
            }
        }
    }

    /// `pushLeft` with dummy-node indirection.
    pub fn push_left(&self, v: V) -> Result<(), Full<V>> {
        let guard = S::Reclaimer::pin();
        // Guarded as in `push_right`.
        let pending = PendingNode::<V>::new(v, self.alloc);
        let (node, val) = (pending.node, pending.val);
        loop {
            let (old_r, l) = self.load_resolved(&guard, &self.sl.r, 0);
            if l.deleted {
                self.delete_left(&guard);
            } else {
                // SAFETY: unpublished node.
                unsafe {
                    (*node).l.init_store(direct(self.slp()));
                    (*node).r.init_store(direct(l.real));
                    (*node).value.init_store(val);
                }
                let old_rl = direct(self.slp());
                // SAFETY: as above.
                if self.strategy.dcas(
                    &self.sl.r,
                    unsafe { &(*l.real).l },
                    old_r,
                    old_rl,
                    direct(node),
                    direct(node),
                ) {
                    pending.published();
                    return Ok(());
                }
            }
        }
    }

    fn delete_left(&self, guard: &GuardOf<S>) {
        loop {
            let (old_r, l) = self.load_resolved(guard, &self.sl.r, 0);
            if !l.deleted {
                return;
            }
            let victim = l.real;
            // SAFETY: as in `delete_right` (mirrored dual validation).
            let old_rr = node_of(self.strategy.load(unsafe { &(*victim).r }));
            if Self::NP {
                guard.protect(2, old_rr as u64);
                if node_of(self.strategy.load(unsafe { &(*victim).r })) != old_rr
                    || self.strategy.load(&self.sl.r) != old_r
                {
                    guard.clear(2);
                    continue;
                }
            }
            let v = self.strategy.load(unsafe { &(*old_rr).value });
            if v != NULL {
                let old_rrl = self.strategy.load(unsafe { &(*old_rr).l });
                if victim == node_of(old_rrl) {
                    if self.strategy.dcas(
                        &self.sl.r,
                        unsafe { &(*old_rr).l },
                        old_r,
                        old_rrl,
                        direct(old_rr),
                        direct(self.slp()),
                    ) {
                        // SAFETY: as in `delete_right`.
                        unsafe {
                            self.retire(victim, guard);
                            self.retire(node_of(old_r), guard);
                        }
                        return;
                    }
                }
            } else {
                let (old_l, r) = self.load_resolved(guard, &self.sr.l, 3);
                if r.deleted {
                    if self.strategy.dcas(
                        &self.sl.r,
                        &self.sr.l,
                        old_r,
                        old_l,
                        direct(self.srp()),
                        direct(self.slp()),
                    ) {
                        // SAFETY: as above.
                        unsafe {
                            self.retire(victim, guard);
                            self.retire(node_of(old_r), guard);
                            self.retire(r.real, guard);
                            self.retire(node_of(old_l), guard);
                        }
                        return;
                    }
                }
            }
        }
    }

    /// Quiescent structural snapshot; dummies are resolved away so the
    /// layout is comparable with the deleted-bit variant's.
    pub fn layout(&self) -> DummyLayout {
        let _guard = S::Reclaimer::pin();
        // SAFETY: quiescent per the method contract.
        unsafe {
            let left = self.resolve(self.strategy.load(&self.sl.r));
            let right = self.resolve(self.strategy.load(&self.sr.l));
            let mut cells = Vec::new();
            // Walk right from the leftmost real node.
            let mut cur = left.real;
            while cur != self.srp() {
                let v = self.strategy.load(&(*cur).value);
                cells.push((v != NULL).then_some(v));
                cur = node_of(self.strategy.load(&(*cur).r));
            }
            DummyLayout { cells, left_deleted: left.deleted, right_deleted: right.deleted }
        }
    }
}

impl<V: WordValue, S: DcasStrategy> Drop for RawDummyListDeque<V, S> {
    fn drop(&mut self) {
        // SAFETY: exclusive access. Resolve the leftmost real node before
        // freeing the sentinel dummies (a dummy's target is read through
        // the dummy), then walk and free the physical chain.
        unsafe {
            let ln = node_of(self.sl.r.unsync_load_shared());
            let start = if (*ln).value.unsync_load_shared() == DUMMY {
                let target = node_of((*ln).l.unsync_load_shared());
                free_node_now(self.alloc, ln as *mut Node);
                target
            } else {
                ln
            };
            let rn = node_of(self.sr.l.unsync_load_shared());
            if (*rn).value.unsync_load_shared() == DUMMY {
                free_node_now(self.alloc, rn as *mut Node);
            }
            let mut cur = start;
            while cur != self.srp() {
                let node = cur as *mut Node;
                let v = (*node).value.unsync_load_shared();
                if v != NULL {
                    V::drop_encoded(v);
                }
                cur = node_of((*node).r.unsync_load_shared());
                free_node_now(self.alloc, node);
            }
        }
    }
}

/// The dummy-node ("delete-bit"-free) unbounded deque variant of the
/// paper's footnote 4 / Figure 10, for arbitrary element types.
pub struct DummyListDeque<T: Send, S: DcasStrategy = HarrisMcas> {
    raw: RawDummyListDeque<Boxed<T>, S>,
}

impl<T: Send, S: DcasStrategy> Default for DummyListDeque<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send, S: DcasStrategy> DummyListDeque<T, S> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        DummyListDeque { raw: RawDummyListDeque::new() }
    }

    /// Creates an empty deque with an explicit node-allocation arm.
    pub fn with_node_alloc(alloc: NodeAlloc) -> Self {
        DummyListDeque { raw: RawDummyListDeque::with_node_alloc(alloc) }
    }

    /// The DCAS strategy instance (for counter snapshots).
    pub fn strategy(&self) -> &S {
        self.raw.strategy()
    }

    /// Appends `v` at the right end. Never fails.
    pub fn push_right(&self, v: T) -> Result<(), Full<T>> {
        self.raw
            .push_right(Boxed::new(v))
            .map_err(|Full(b)| Full(b.into_inner()))
    }

    /// Appends `v` at the left end. Never fails.
    pub fn push_left(&self, v: T) -> Result<(), Full<T>> {
        self.raw
            .push_left(Boxed::new(v))
            .map_err(|Full(b)| Full(b.into_inner()))
    }

    /// Removes and returns the rightmost value, or `None` if empty.
    pub fn pop_right(&self) -> Option<T> {
        self.raw.pop_right().map(Boxed::into_inner)
    }

    /// Removes and returns the leftmost value, or `None` if empty.
    pub fn pop_left(&self) -> Option<T> {
        self.raw.pop_left().map(Boxed::into_inner)
    }

    /// Quiescent layout snapshot.
    pub fn layout(&self) -> DummyLayout {
        self.raw.layout()
    }
}

impl<T: Send, S: DcasStrategy> ConcurrentDeque<T> for DummyListDeque<T, S> {
    fn push_right(&self, v: T) -> Result<(), Full<T>> {
        DummyListDeque::push_right(self, v)
    }

    fn push_left(&self, v: T) -> Result<(), Full<T>> {
        DummyListDeque::push_left(self, v)
    }

    fn pop_right(&self) -> Option<T> {
        DummyListDeque::pop_right(self)
    }

    fn pop_left(&self) -> Option<T> {
        DummyListDeque::pop_left(self)
    }

    fn impl_name(&self) -> &'static str {
        "list-dummy-dcas"
    }
}
