//! Tests for the dummy-node variant (footnote 4 / Figure 10).

use dcas::{GlobalLock, GlobalSeqLock, HarrisMcas};

use super::{DummyListDeque, RawDummyListDeque};
use crate::value::WordValue;

#[test]
fn paper_running_example() {
    let d = RawDummyListDeque::<u32, GlobalSeqLock>::new();
    d.push_right(1).unwrap();
    d.push_left(2).unwrap();
    d.push_right(3).unwrap();
    assert_eq!(d.pop_left(), Some(2));
    assert_eq!(d.pop_left(), Some(1));
    assert_eq!(d.pop_left(), Some(3));
    assert_eq!(d.pop_left(), None);
}

#[test]
fn fig10_dummy_marks_deletion_instead_of_bit() {
    // Figure 10: "Empty Deque with one deleted cell marked by a right
    // dummy node" — after popping the only element from the right, the
    // sentinel indirects through a dummy (layout resolves it to
    // right_deleted = true) and one null node lingers.
    let d = RawDummyListDeque::<u32, GlobalSeqLock>::new();
    d.push_right(5).unwrap();
    assert_eq!(d.pop_right(), Some(5));
    let lay = d.layout();
    assert_eq!(lay.cells, vec![None]);
    assert!(lay.right_deleted);
    assert!(!lay.left_deleted);
    // Subsequent operations behave as empty and clean up.
    assert_eq!(d.pop_right(), None);
    let lay = d.layout();
    assert_eq!(lay.cells, vec![]);
    assert!(!lay.right_deleted);
}

#[test]
fn four_empty_states_mirror_fig9() {
    // The dummy variant reaches the same four observable empty states as
    // Figure 9 of the deleted-bit variant.
    let d = RawDummyListDeque::<u32, GlobalLock>::new();
    assert_eq!(d.layout().cells, vec![]);

    d.push_left(1).unwrap();
    assert_eq!(d.pop_left(), Some(1));
    let lay = d.layout();
    assert!(lay.left_deleted && !lay.right_deleted);
    assert_eq!(d.pop_left(), None);

    d.push_right(2).unwrap();
    assert_eq!(d.pop_right(), Some(2));
    let lay = d.layout();
    assert!(!lay.left_deleted && lay.right_deleted);
    assert_eq!(d.pop_right(), None);

    d.push_left(3).unwrap();
    d.push_right(4).unwrap();
    assert_eq!(d.pop_left(), Some(3));
    assert_eq!(d.pop_right(), Some(4));
    let lay = d.layout();
    assert!(lay.left_deleted && lay.right_deleted);
    assert_eq!(lay.cells, vec![None, None]);
    assert_eq!(d.pop_left(), None);
    assert_eq!(d.layout().cells, vec![]);
}

#[test]
fn fifo_and_lifo_semantics() {
    let d = RawDummyListDeque::<u32, HarrisMcas>::new();
    for i in 0..40 {
        d.push_right(i).unwrap();
    }
    for i in 0..20 {
        assert_eq!(d.pop_left(), Some(i));
    }
    for i in (20..40).rev() {
        assert_eq!(d.pop_right(), Some(i));
    }
    assert_eq!(d.pop_right(), None);
}

#[test]
fn interleaved_boundary_churn() {
    let d = RawDummyListDeque::<u32, GlobalSeqLock>::new();
    for round in 0..30 {
        d.push_left(round).unwrap();
        assert_eq!(d.pop_right(), Some(round));
        d.push_right(round).unwrap();
        assert_eq!(d.pop_left(), Some(round));
        assert_eq!(d.pop_left(), None);
        assert_eq!(d.pop_right(), None);
    }
}

#[test]
fn typed_deque_and_drop() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    #[derive(Debug)]
    struct Probe;
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    {
        let d: DummyListDeque<Probe, GlobalLock> = DummyListDeque::new();
        for _ in 0..4 {
            d.push_right(Probe).unwrap();
        }
        drop(d.pop_right().unwrap()); // leaves a dummy on the sentinel
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
    assert_eq!(DROPS.load(Ordering::SeqCst), 4);
}

#[test]
fn layout_matches_deleted_bit_variant() {
    // Drive both variants through the same op sequence; resolved layouts
    // must agree.
    let a = crate::list::RawListDeque::<u32, GlobalLock>::new();
    let b = RawDummyListDeque::<u32, GlobalLock>::new();
    let ops: Vec<(u8, u32)> = vec![
        (0, 1),
        (1, 2),
        (0, 3),
        (2, 0),
        (3, 0),
        (1, 4),
        (2, 0),
        (2, 0),
        (3, 0),
        (3, 0),
    ];
    for (op, v) in ops {
        match op {
            0 => {
                a.push_right(v).unwrap();
                b.push_right(v).unwrap();
            }
            1 => {
                a.push_left(v).unwrap();
                b.push_left(v).unwrap();
            }
            2 => assert_eq!(a.pop_right(), b.pop_right()),
            _ => assert_eq!(a.pop_left(), b.pop_left()),
        }
        let (la, lb) = (a.layout(), b.layout());
        assert_eq!(la.cells, lb.cells);
        assert_eq!(la.left_deleted, lb.left_deleted);
        assert_eq!(la.right_deleted, lb.right_deleted);
    }
}

#[test]
fn value_encoding_visible_in_layout() {
    let d = RawDummyListDeque::<u32, GlobalLock>::new();
    d.push_right(7).unwrap();
    assert_eq!(d.layout().cells, vec![Some(7u32.encode())]);
}

#[test]
fn reclaim_hazard_dummy_variant_sequential_semantics() {
    // The dummy variant under the hazard backend: same observable
    // behaviour, including the dummy-resolution paths that the
    // protected `load_resolved` guards.
    let d = RawDummyListDeque::<u32, dcas::HarrisMcasHazard>::new();
    for i in 0..40 {
        d.push_right(i).unwrap();
    }
    for i in 0..20 {
        assert_eq!(d.pop_left(), Some(i));
    }
    for i in (20..40).rev() {
        assert_eq!(d.pop_right(), Some(i));
    }
    assert_eq!(d.pop_right(), None);
    // Exercise the dummy-marked empty states.
    for round in 0..30 {
        d.push_left(round).unwrap();
        assert_eq!(d.pop_right(), Some(round));
        d.push_right(round).unwrap();
        assert_eq!(d.pop_left(), Some(round));
        assert_eq!(d.pop_left(), None);
        assert_eq!(d.pop_right(), None);
    }
}

#[test]
fn reclaim_hazard_dummy_variant_concurrent_churn_conserves_values() {
    // Concurrent boundary churn on the hazard-backed dummy variant —
    // the hardest case for hazard validation, since every pop may have
    // to chase a dummy indirection while the node it names is being
    // retired. Value conservation plus the static garbage bound must
    // both hold.
    use std::sync::Arc;

    use dcas::{HazardReclaimer, Reclaimer};

    let d: Arc<DummyListDeque<u64, dcas::HarrisMcasHazard>> = Arc::new(DummyListDeque::new());
    let threads = 4u64;
    let per = 400u64;
    let mut handles = vec![];
    for t in 0..threads {
        let d = Arc::clone(&d);
        handles.push(std::thread::spawn(move || {
            let mut popped = 0u64;
            for i in 0..per {
                let v = t * per + i;
                if i % 2 == 0 {
                    d.push_left(v).unwrap();
                } else {
                    d.push_right(v).unwrap();
                }
                if i % 3 == 0 {
                    popped += u64::from(d.pop_right().is_some());
                } else {
                    popped += u64::from(d.pop_left().is_some());
                }
            }
            popped
        }));
    }
    let popped: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let mut rest = 0u64;
    while d.pop_left().is_some() {
        rest += 1;
    }
    assert_eq!(popped + rest, threads * per);
    HazardReclaimer::flush();
    assert!(
        HazardReclaimer::live_garbage() <= dcas::reclaim::hazard::static_garbage_bound(),
        "hazard live garbage exceeds the static bound after flush"
    );
}

/// Both node-allocation arms (page pool and seed-compatible `Box`)
/// behind the same deque semantics: interleaved two-ended traffic
/// drains to the exact push count on each arm. Named `pooled_` so CI's
/// allocator suite can select the per-family A/B units.
#[test]
fn pooled_and_boxed_arms_agree() {
    for pooled in [false, true] {
        let d = DummyListDeque::<u32>::with_node_alloc(super::node_alloc(pooled));
        for i in 0..200u32 {
            if i % 2 == 0 {
                d.push_right(i).unwrap();
            } else {
                d.push_left(i).unwrap();
            }
        }
        let mut got = 0;
        while d.pop_left().is_some() || d.pop_right().is_some() {
            got += 1;
        }
        assert_eq!(got, 200, "pooled={pooled}");
    }
}
