//! The Sundell–Tsigas lock-free deque — the **CAS-only competitor** to
//! the paper's DCAS algorithms ("Lock-Free and Practical Deques and
//! Doubly Linked Lists using Single-Word Compare-And-Swap", Sundell &
//! Tsigas; see PAPERS.md).
//!
//! The 2000 DCAS paper argues deques are impractical with single-word
//! CAS; this algorithm is the later refutation. It is a doubly-linked
//! list between two sentinels in which the `next` chain is
//! authoritative and `prev` pointers are lagging hints, repaired on
//! demand:
//!
//! * **Push** is a two-step insert: one CAS publishes the node into the
//!   predecessor's `next` word, then `push_common` (helpable) swings the
//!   successor's `prev` word back to it.
//! * **Pop** marks the victim's own `next` word (logical deletion — the
//!   unique mark winner owns the value), then `help_delete` splices the
//!   node out of the `next` chain and `help_insert` repairs the
//!   successor's `prev` hint. Any thread that encounters a marked node
//!   can complete both repairs, which is what makes the deque lock-free.
//!
//! No descriptors and no DCAS anywhere: every shared-word transition is
//! one single-word CAS through [`DcasStrategy::cas`], so the strategy's
//! DCAS/CASN machinery is never exercised. Wired into the same
//! [`ConcurrentDeque`] surface as the DCAS deques, this is the repo's
//! DCAS-vs-CAS study arm (bench E16).
//!
//! # Memory reclamation
//!
//! The original algorithm leans on lock-free reference counting. We keep
//! the counting idea but route the actual retirement through the
//! pluggable [`Reclaimer`] backend (PR 8), so the deque runs under both
//! the epoch and the hazard-pointer reclaimers:
//!
//! * Every node carries a **link count**: the number of shared words
//!   (`head.next`/`tail.prev` and live or dead nodes' `prev`/`next`
//!   words) currently naming it, plus in-flight installation
//!   reservations. The invariant is that *any* shared word naming a
//!   non-sentinel node implies its count is at least one.
//! * A CAS that installs a pointer first **reserves** the target
//!   (increment-from-nonzero; zero is terminal, so a retired node can
//!   never be resurrected) and releases the displaced pointer's unit on
//!   success. Mark-only CASes leave the pointer part unchanged and need
//!   no accounting.
//! * When a count hits zero the node **dies**: each of its link words is
//!   taken over (CAS loop — a racing helper may still install a reserved
//!   unit, which the takeover then releases) and retargeted to a marked
//!   sentinel, the displaced targets are released (cascading deaths run
//!   off a worklist, not recursion), and the node's memory is retired
//!   through the reclamation guard.
//! * `remove_cross_reference` (run by each pop on its own node)
//!   retargets the dead node's outgoing links past already-deleted
//!   neighbors, which orders dead-node references by deletion time and
//!   thus keeps the dead-node graph acyclic — every dead chain collapses
//!   once its newest member is unreferenced.
//!
//! Under the hazard backend every dereference follows the same
//! announce-and-validate protocol as the DCAS list deque: protect the
//! candidate, re-read the word it came from, and retry on mismatch — a
//! stable re-read proves the count was nonzero (the word named it) and
//! hence the node unretired when the hazard landed.
//!
//! A thread killed between reserving and installing leaks that unit, so
//! a node reachable only through it is never retired: bounded,
//! kill-proportional *node-memory* garbage (values are always owned by
//! the mark winner, so value conservation is unaffected — the torture
//! suite asserts exactly this).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;
use dcas::{Backoff, DcasStrategy, DcasWord, HarrisMcas, NodeAlloc, NodePool, ReclaimGuard, Reclaimer};

use crate::reserved::{SENTL, SENTR};
use crate::value::{Boxed, WordValue};
use crate::{ConcurrentDeque, Full};

#[cfg(test)]
mod tests;

/// The guard type of a strategy's reclamation backend.
type GuardOf<S> = <<S as DcasStrategy>::Reclaimer as Reclaimer>::Guard;

/// Fault-injection hooks at the algorithm's own decision points. The
/// deque never takes the strategy's DCAS/CASN paths, so the MCAS
/// protocol's hooks can't reach it; these mirror them: `PreInstall`
/// before a push's publish CAS, `MidHelping` inside every retry/helping
/// loop (`$ef` records whether the in-flight op has published state or
/// taken value ownership — the panic-kill precondition), `PreRelease` at
/// op exit.
#[cfg(feature = "fault-inject")]
macro_rules! fault_hit {
    ($p:ident, $ef:expr) => {
        dcas::fault::hit(dcas::FaultPoint::$p, $ef)
    };
}
#[cfg(not(feature = "fault-inject"))]
macro_rules! fault_hit {
    ($p:ident, $ef:expr) => {{
        let _ = $ef;
    }};
}

/// A deque node: two link words, the immutable-after-publish value word,
/// and the link count. 16-byte alignment keeps the low bits of node
/// addresses clear for the substrate tag bits and the deleted flag.
#[repr(align(16))]
struct Node {
    /// `⟨ptr, mark⟩` to the left neighbor (lagging hint). A set mark
    /// means **this** node is logically deleted.
    prev: DcasWord,
    /// `⟨ptr, mark⟩` to the right neighbor (authoritative chain).
    next: DcasWord,
    /// Encoded user value; written once before publication.
    value: DcasWord,
    /// Shared-word reference count (see the module docs). Zero is
    /// terminal.
    links: AtomicU64,
}

impl Node {
    fn new_blank(links: u64) -> Node {
        Node {
            prev: DcasWord::new(0),
            next: DcasWord::new(0),
            value: DcasWord::new(0),
            links: AtomicU64::new(links),
        }
    }
}

/// Page pool for this module's nodes (sentinels stay boxed).
static NODE_POOL: NodePool = NodePool::new("sundell", std::mem::size_of::<Node>(), 16);

/// Builds a [`NodeAlloc`] handle for this module's node pool:
/// `pooled = true` selects the page-pool arm, `false` the boxed
/// seed-compat arm (for A/B comparisons inside one binary).
pub fn node_alloc(pooled: bool) -> NodeAlloc {
    if pooled {
        NodeAlloc::pooled(&NODE_POOL)
    } else {
        NodeAlloc::boxed(&NODE_POOL)
    }
}

/// Default allocation arm; `box-nodes` flips it to the seed-compat heap.
fn default_node_alloc() -> NodeAlloc {
    if cfg!(feature = "box-nodes") {
        NodeAlloc::boxed(&NODE_POOL)
    } else {
        NodeAlloc::pooled(&NODE_POOL)
    }
}

/// Allocates a blank node (with `links` birth units) through `alloc`'s
/// arm.
fn alloc_node(alloc: NodeAlloc, links: u64) -> *mut Node {
    if alloc.is_pooled() {
        let n = alloc.pool().alloc().cast::<Node>();
        // SAFETY: type-stable pool slot, reinitialized through the atomic
        // fields per the pool's quarantine contract (`init_store` and
        // `store(Relaxed)` are atomic stores).
        unsafe {
            (*n).prev.init_store(0);
            (*n).next.init_store(0);
            (*n).value.init_store(0);
            (*n).links.store(links, Ordering::Relaxed);
        }
        n
    } else {
        Box::into_raw(Box::new(Node::new_blank(links)))
    }
}

/// Immediately frees an unpublished or quiescent node through `alloc`'s
/// arm.
///
/// # Safety
///
/// `n` must come from [`alloc_node`] with the same mode, be freed once,
/// and be unreachable by other threads.
unsafe fn free_node_now(alloc: NodeAlloc, n: *mut Node) {
    if alloc.is_pooled() {
        unsafe { NodePool::dealloc(n.cast()) };
    } else {
        drop(unsafe { Box::from_raw(n) });
    }
}

/// Reclaimer dtor for pooled nodes.
unsafe fn free_node_pooled(p: *mut u8) {
    // SAFETY: `p` came from the node pool; runs once, post-scan.
    unsafe { NodePool::dealloc(p) };
}

/// Reclaimer dtor for the boxed seed-compat arm.
unsafe fn free_node_boxed(p: *mut u8) {
    // SAFETY: `p` came from `Box::into_raw::<Node>`; runs once.
    drop(unsafe { Box::from_raw(p.cast::<Node>()) });
}

/// Bit 2 of a link word marks the word's **owner** as logically deleted
/// (bits 0–1 are reserved for the DCAS substrate).
const DELETED_BIT: u64 = 0b100;

#[inline]
fn pack(ptr: *const Node, deleted: bool) -> u64 {
    let p = ptr as u64;
    debug_assert_eq!(p & 0xF, 0, "node pointers must be 16-byte aligned");
    p | if deleted { DELETED_BIT } else { 0 }
}

#[inline]
fn ptr_of(w: u64) -> *const Node {
    (w & !0xF) as *const Node
}

#[inline]
fn deleted_of(w: u64) -> bool {
    w & DELETED_BIT != 0
}

/// An unpublished node plus its encoded value, owned by a push from
/// allocation to the publish CAS. Dropping it — only by unwinding out of
/// a strategy call or a fault hook — frees both; nothing was published.
struct Pending<V: WordValue> {
    node: *mut Node,
    val: u64,
    alloc: NodeAlloc,
    _marker: PhantomData<V>,
}

impl<V: WordValue> Pending<V> {
    fn new(v: V, alloc: NodeAlloc) -> Self {
        // Born with one unit: consumed by the predecessor's `next` word
        // at the publish CAS.
        let node = alloc_node(alloc, 1);
        let val = v.encode();
        // SAFETY: the node is private until published.
        unsafe { (*node).value.init_store(val) };
        Pending { node, val, alloc, _marker: PhantomData }
    }

    fn published(self) {
        std::mem::forget(self);
    }
}

impl<V: WordValue> Drop for Pending<V> {
    fn drop(&mut self) {
        // SAFETY: reached only before publication — node private, value
        // unconsumed.
        unsafe {
            free_node_now(self.alloc, self.node);
            V::drop_encoded(self.val);
        }
    }
}

// Hazard-slot layout (disjoint roles; at most 7 live protections per op).
const SLOT_OP: usize = 0;
const SLOT_PREV: usize = 1;
const SLOT_NODE2: usize = 2;
const SLOT_LAST: usize = 3;
const SLOT_TMP: usize = 4;
const SLOT_RCR_A: usize = 5;
const SLOT_RCR_B: usize = 6;

/// Word-level Sundell–Tsigas deque storing [`WordValue`]-encoded values.
/// Use [`SundellDeque`] for arbitrary element types.
pub struct RawSundellDeque<V: WordValue, S: DcasStrategy> {
    strategy: S,
    /// Left sentinel; its `next` word is the authoritative list head.
    head: Box<CachePadded<Node>>,
    /// Right sentinel; its `prev` word is the (lagging) list tail hint.
    tail: Box<CachePadded<Node>>,
    /// Node-allocation arm: page pool (default) or boxed seed-compat.
    alloc: NodeAlloc,
    _marker: PhantomData<fn(V) -> V>,
}

// SAFETY: all shared-word accesses go through the `DcasStrategy`, link
// counts are atomic, values are `Send` (implied by `WordValue`), and
// node lifetimes are governed by the count + reclamation protocol.
unsafe impl<V: WordValue, S: DcasStrategy> Send for RawSundellDeque<V, S> {}
unsafe impl<V: WordValue, S: DcasStrategy> Sync for RawSundellDeque<V, S> {}

impl<V: WordValue, S: DcasStrategy> Default for RawSundellDeque<V, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: WordValue, S: DcasStrategy> RawSundellDeque<V, S> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        Self::with_node_alloc(default_node_alloc())
    }

    /// Creates an empty deque with an explicit node-allocation arm (the
    /// E17 bench compares both arms inside one binary).
    pub fn with_node_alloc(alloc: NodeAlloc) -> Self {
        let head = Box::new(CachePadded::new(Node::new_blank(0)));
        let tail = Box::new(CachePadded::new(Node::new_blank(0)));
        let hp: *const Node = &**head;
        let tp: *const Node = &**tail;
        head.value.init_store(SENTL);
        tail.value.init_store(SENTR);
        head.next.init_store(pack(tp, false));
        tail.prev.init_store(pack(hp, false));
        // The sentinels' outward words stay null and unmarked.
        RawSundellDeque { strategy: S::default(), head, tail, alloc, _marker: PhantomData }
    }

    /// The DCAS strategy instance (for counter snapshots).
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    #[inline]
    fn headp(&self) -> *const Node {
        &**self.head
    }

    #[inline]
    fn tailp(&self) -> *const Node {
        &**self.tail
    }

    /// Sentinels (and null) are never counted or retired.
    #[inline]
    fn uncounted(&self, p: *const Node) -> bool {
        p.is_null() || p == self.headp() || p == self.tailp()
    }

    /// Whether the backend requires announce-and-validate before
    /// dereferencing traversed nodes.
    const NP: bool = <GuardOf<S> as ReclaimGuard>::NEEDS_PROTECT;

    /// Protected load of a link word `w` (which must itself be readable:
    /// a sentinel word or a field of a node protected at another slot).
    /// Announces `slot` on the named node and re-reads until stable; a
    /// stable re-read proves the node was named by a shared word — hence
    /// count ≥ 1, hence unretired — after the announce.
    fn load_link(&self, g: &GuardOf<S>, w: &DcasWord, slot: usize) -> u64 {
        let mut v = self.strategy.load(w);
        if Self::NP {
            loop {
                g.protect(slot, ptr_of(v) as u64);
                let v2 = self.strategy.load(w);
                if v2 == v {
                    break;
                }
                v = v2;
            }
        }
        v
    }

    /// Moves the protection at `slot` to the node named by `w` (a field
    /// of the node currently protected at `slot`, which stays protected
    /// via `SLOT_TMP` until the new announce is validated). Returns the
    /// stable word.
    fn step(&self, g: &GuardOf<S>, w: &DcasWord, slot: usize) -> u64 {
        let v = self.load_link(g, w, SLOT_TMP);
        if Self::NP {
            g.protect(slot, ptr_of(v) as u64);
            g.clear(SLOT_TMP);
        }
        v
    }

    /// Adds one reservation to `p`'s link count; `false` if the count is
    /// already zero (the node is dead — zero is terminal, so a reserve
    /// can never resurrect it). The caller must hold `p` readable
    /// (protected or pinned).
    fn reserve(&self, p: *const Node) -> bool {
        if self.uncounted(p) {
            return true;
        }
        // SAFETY: readable per the method contract.
        let links = unsafe { &(*p).links };
        let mut c = links.load(Ordering::Acquire);
        loop {
            if c == 0 {
                return false;
            }
            match links.compare_exchange_weak(c, c + 1, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(cur) => c = cur,
            }
        }
    }

    /// Releases one unit of `p` (a displaced shared-word reference or a
    /// canceled reservation). A count hitting zero kills the node: its
    /// link words are taken over (CAS loop, so a concurrently installed
    /// reserved unit is released rather than leaked) and retargeted to
    /// marked sentinels, the displaced targets are released in turn
    /// (worklist — deaths cascade), and the memory is retired through
    /// the reclamation guard.
    fn release(&self, p: *const Node, guard: &GuardOf<S>) {
        let mut work = vec![p];
        while let Some(p) = work.pop() {
            if self.uncounted(p) {
                continue;
            }
            // SAFETY: `p` was named by a shared word (or a reservation)
            // the caller just gave up, so it was unretired at that
            // instant; it is not retired until below, after this unique
            // zero-transition.
            let node = unsafe { &*p };
            if node.links.fetch_sub(1, Ordering::AcqRel) != 1 {
                continue;
            }
            let takeovers: [(&DcasWord, u64); 2] = [
                (&node.prev, pack(self.headp(), true)),
                (&node.next, pack(self.tailp(), true)),
            ];
            for (w, repl) in takeovers {
                loop {
                    let v = self.strategy.load(w);
                    if self.strategy.cas(w, v, repl) {
                        work.push(ptr_of(v));
                        break;
                    }
                }
            }
            // SAFETY: count is zero and terminal — no shared word names
            // the node and none ever will again; retire exactly once.
            unsafe { self.retire(p, guard) };
        }
    }

    /// Retires a dead node through the strategy's reclamation backend.
    ///
    /// # Safety
    ///
    /// `p` must have been allocated by this deque's push path and have
    /// just taken its unique link-count zero transition.
    unsafe fn retire(&self, p: *const Node, guard: &GuardOf<S>) {
        let dtor = if self.alloc.is_pooled() { free_node_pooled } else { free_node_boxed };
        // SAFETY: per the method contract; threads that can still reach
        // the memory are pinned (epoch) or have it announced (hazard).
        unsafe { guard.retire(p as *mut u8, std::mem::size_of::<Node>(), dtor) };
    }

    /// Marks `w`'s owner deleted (idempotent; pointer part untouched, so
    /// no accounting).
    fn set_mark(&self, w: &DcasWord) {
        loop {
            let v = self.strategy.load(w);
            if deleted_of(v) || self.strategy.cas(w, v, pack(ptr_of(v), true)) {
                return;
            }
        }
    }

    /// `PushLeft`. The publish CAS moves `head.next` from the old first
    /// node to the new one; the displaced unit transfers to the new
    /// node's `next` word (set just before), so no reservation is
    /// needed.
    pub fn push_left(&self, v: V) -> Result<(), Full<V>> {
        let guard = S::Reclaimer::pin();
        let pending = Pending::<V>::new(v, self.alloc);
        let node = pending.node;
        if Self::NP {
            // Trivially valid: the node is still private.
            guard.protect(SLOT_OP, node as u64);
        }
        let mut backoff = Backoff::new();
        loop {
            fault_hit!(PreInstall, true);
            let next_w = self.load_link(&guard, &self.head.next, SLOT_NODE2);
            let next = ptr_of(next_w);
            // SAFETY: `node` is private; re-initializing on retry is fine.
            unsafe {
                (*node).prev.init_store(pack(self.headp(), false));
                (*node).next.init_store(pack(next, false));
            }
            if self
                .strategy
                .cas(&self.head.next, pack(next, false), pack(node, false))
            {
                pending.published();
                self.push_common(&guard, node, next);
                fault_hit!(PreRelease, false);
                return Ok(());
            }
            // Lost the publish race: nothing shared yet, so this retry
            // point is effect-free (an unwinding kill frees `pending`).
            fault_hit!(PreRelease, true);
            backoff.snooze();
        }
    }

    /// `PushRight`. `tail.prev` is only a hint, so the rightmost node is
    /// validated by its own `next` word; the publish CAS installs the
    /// node into `prev.next`, with `prev` reserved for the new node's
    /// `prev` backlink.
    pub fn push_right(&self, v: V) -> Result<(), Full<V>> {
        let guard = S::Reclaimer::pin();
        let pending = Pending::<V>::new(v, self.alloc);
        let node = pending.node;
        if Self::NP {
            guard.protect(SLOT_OP, node as u64);
        }
        let mut backoff = Backoff::new();
        loop {
            fault_hit!(PreInstall, true);
            let prev_w = self.load_link(&guard, &self.tail.prev, SLOT_PREV);
            let prev = ptr_of(prev_w);
            // SAFETY: `prev` is protected at SLOT_PREV (or is the head
            // sentinel).
            let pn = self.strategy.load(unsafe { &(*prev).next });
            if pn != pack(self.tailp(), false) {
                // `prev` is not the rightmost live node (deleted, or the
                // hint lags); repair `tail.prev` and retry.
                if deleted_of(pn) && !self.uncounted(prev) {
                    self.help_insert(&guard, self.headp(), self.tailp(), true);
                } else {
                    self.help_insert(&guard, prev, self.tailp(), true);
                }
                continue;
            }
            // SAFETY: `node` is private until the CAS below.
            unsafe {
                (*node).prev.init_store(pack(prev, false));
                (*node).next.init_store(pack(self.tailp(), false));
            }
            if !self.reserve(prev) {
                continue; // `prev` died under us; re-read the hint
            }
            // SAFETY: `prev` protected as above.
            if self.strategy.cas(
                unsafe { &(*prev).next },
                pack(self.tailp(), false),
                pack(node, false),
            ) {
                pending.published();
                self.push_common(&guard, node, self.tailp());
                fault_hit!(PreRelease, false);
                return Ok(());
            }
            self.release(prev, &guard);
            // Publish race lost and the reservation returned: effect-free.
            fault_hit!(PreRelease, true);
            backoff.snooze();
        }
    }

    /// Second insert step (helpable): swing `next.prev` back to `node`.
    /// `node` must be protected at [`SLOT_OP`] and `next` at
    /// [`SLOT_NODE2`] (or be a sentinel).
    fn push_common(&self, guard: &GuardOf<S>, node: *const Node, next: *const Node) {
        let mut backoff = Backoff::new();
        loop {
            fault_hit!(MidHelping, false);
            // SAFETY: `next` is protected/sentinel per the contract;
            // `node` is protected at SLOT_OP.
            let link1 = self.strategy.load(unsafe { &(*next).prev });
            if deleted_of(link1)
                || self.strategy.load(unsafe { &(*node).next }) != pack(next, false)
            {
                // `next` is being deleted, or `node` is no longer (or was
                // never observed) adjacent — the repair is someone
                // else's.
                return;
            }
            if !self.reserve(node) {
                return; // node already popped and fully unlinked
            }
            if self
                .strategy
                .cas(unsafe { &(*next).prev }, link1, pack(node, false))
            {
                self.release(ptr_of(link1), guard);
                // SAFETY: as above.
                if deleted_of(self.strategy.load(unsafe { &(*node).prev })) {
                    // Our node was deleted while we repaired: re-point
                    // `next.prev` past it.
                    self.help_insert(guard, self.headp(), next, false);
                }
                return;
            }
            self.release(node, guard);
            backoff.snooze();
        }
    }

    /// `PopLeft`. Marking the first node's `next` word is the logical
    /// deletion; the unique mark winner owns the value. The op may
    /// linearize at its `head.next` read (where the node was provably
    /// leftmost) — the mark only certifies no *same-node* interference.
    pub fn pop_left(&self) -> Option<V> {
        let guard = S::Reclaimer::pin();
        let mut backoff = Backoff::new();
        loop {
            fault_hit!(MidHelping, true);
            let node_w = self.load_link(&guard, &self.head.next, SLOT_OP);
            let node = ptr_of(node_w);
            if node == self.tailp() {
                fault_hit!(PreRelease, true);
                return None;
            }
            // SAFETY: `node` is protected at SLOT_OP.
            let link1 = self.strategy.load(unsafe { &(*node).next });
            if deleted_of(link1) {
                self.help_delete(&guard, node, true);
                continue;
            }
            // SAFETY: as above.
            if self.strategy.cas(
                unsafe { &(*node).next },
                link1,
                pack(ptr_of(link1), true),
            ) {
                // SAFETY: the value word is immutable after publish and
                // the mark win makes us its unique owner.
                let v = self.strategy.load(unsafe { &(*node).value });
                self.help_delete(&guard, node, false);
                let next_w = self.load_link(&guard, unsafe { &(*node).next }, SLOT_NODE2);
                self.help_insert(&guard, self.headp(), ptr_of(next_w), false);
                self.remove_cross_reference(&guard, node);
                fault_hit!(PreRelease, false);
                // SAFETY: unique ownership via the mark CAS.
                return Some(unsafe { V::decode(v) });
            }
            // Mark race lost: no ownership taken — effect-free retry.
            fault_hit!(PreRelease, true);
            backoff.snooze();
        }
    }

    /// `PopRight`. The mark CAS expects `⟨tail, unmarked⟩`, so success
    /// atomically certifies the node was rightmost — a static
    /// linearization point.
    pub fn pop_right(&self) -> Option<V> {
        let guard = S::Reclaimer::pin();
        let mut backoff = Backoff::new();
        loop {
            fault_hit!(MidHelping, true);
            let node_w = self.load_link(&guard, &self.tail.prev, SLOT_OP);
            let node = ptr_of(node_w);
            // SAFETY: `node` is protected at SLOT_OP (or the head
            // sentinel).
            let nn = self.strategy.load(unsafe { &(*node).next });
            if nn != pack(self.tailp(), false) {
                if deleted_of(nn) && !self.uncounted(node) {
                    self.help_delete(&guard, node, true);
                } else {
                    // The hint lags; walk it forward. `node` is already
                    // protected at SLOT_OP, so the extra announce is
                    // backed.
                    if Self::NP {
                        guard.protect(SLOT_PREV, node as u64);
                    }
                    self.help_insert(&guard, node, self.tailp(), true);
                }
                continue;
            }
            if node == self.headp() {
                fault_hit!(PreRelease, true);
                return None;
            }
            // SAFETY: as above.
            if self.strategy.cas(
                unsafe { &(*node).next },
                pack(self.tailp(), false),
                pack(self.tailp(), true),
            ) {
                // SAFETY: unique mark winner (see `pop_left`).
                let v = self.strategy.load(unsafe { &(*node).value });
                self.help_delete(&guard, node, false);
                let prev_w = self.load_link(&guard, unsafe { &(*node).prev }, SLOT_PREV);
                self.help_insert(&guard, ptr_of(prev_w), self.tailp(), false);
                self.remove_cross_reference(&guard, node);
                fault_hit!(PreRelease, false);
                // SAFETY: as above.
                return Some(unsafe { V::decode(v) });
            }
            // Mark race lost: effect-free retry.
            fault_hit!(PreRelease, true);
            backoff.snooze();
        }
    }

    /// Splices the marked `node` (protected at [`SLOT_OP`]) out of the
    /// `next` chain. Any thread may help; `effect_free` reports whether
    /// the *calling op* has published state or taken ownership yet.
    fn help_delete(&self, g: &GuardOf<S>, node: *const Node, effect_free: bool) {
        // SAFETY: `node` protected at SLOT_OP per the contract.
        self.set_mark(unsafe { &(*node).prev });
        let mut last: *const Node = std::ptr::null();
        let mut prev = ptr_of(self.load_link(g, unsafe { &(*node).prev }, SLOT_PREV));
        let mut next = ptr_of(self.load_link(g, unsafe { &(*node).next }, SLOT_NODE2));
        loop {
            fault_hit!(MidHelping, effect_free);
            if prev == next {
                return;
            }
            // SAFETY: `next` is protected at SLOT_NODE2 (or a sentinel;
            // the tail's null `next` word reads as unmarked).
            if deleted_of(self.strategy.load(unsafe { &(*next).next })) {
                // `next` is deleted too; skip past it.
                next = ptr_of(self.step(g, unsafe { &(*next).next }, SLOT_NODE2));
                continue;
            }
            // SAFETY: `prev` is protected at SLOT_PREV (or a sentinel).
            let prev2 = self.strategy.load(unsafe { &(*prev).next });
            if deleted_of(prev2) {
                // `prev` is itself deleted: splice it out of `last` (or
                // backtrack if we have no predecessor for it).
                if !last.is_null() {
                    // SAFETY: as above.
                    self.set_mark(unsafe { &(*prev).prev });
                    let target = ptr_of(prev2);
                    if self.reserve(target) {
                        // SAFETY: `last` stays protected at SLOT_LAST.
                        if self.strategy.cas(
                            unsafe { &(*last).next },
                            pack(prev, false),
                            pack(target, false),
                        ) {
                            self.release(prev, g);
                        } else {
                            self.release(target, g);
                        }
                    }
                    if Self::NP {
                        g.protect(SLOT_PREV, last as u64);
                        g.clear(SLOT_LAST);
                    }
                    prev = last;
                    last = std::ptr::null();
                } else {
                    prev = ptr_of(self.step(g, unsafe { &(*prev).prev }, SLOT_PREV));
                }
                continue;
            }
            if ptr_of(prev2) != node {
                // Walk right toward `node`, remembering the predecessor.
                if Self::NP {
                    g.protect(SLOT_LAST, prev as u64);
                }
                last = prev;
                prev = ptr_of(self.step(g, unsafe { &(*prev).next }, SLOT_PREV));
                continue;
            }
            // `prev.next` names `node` unmarked: splice.
            if !self.reserve(next) {
                continue; // `next` died; its takeover redirects us above
            }
            // SAFETY: as above.
            if self.strategy.cas(
                unsafe { &(*prev).next },
                pack(node, false),
                pack(next, false),
            ) {
                self.release(node, g);
                return;
            }
            self.release(next, g);
        }
    }

    /// Repairs `node.prev` to name a live predecessor, starting the walk
    /// at `prev`. `prev` must be protected at [`SLOT_PREV`] (or be a
    /// sentinel) and `node` at [`SLOT_NODE2`] (or be a sentinel); uses
    /// [`SLOT_LAST`]/[`SLOT_TMP`] internally.
    fn help_insert(
        &self,
        g: &GuardOf<S>,
        mut prev: *const Node,
        node: *const Node,
        effect_free: bool,
    ) {
        let mut last: *const Node = std::ptr::null();
        loop {
            fault_hit!(MidHelping, effect_free);
            // SAFETY: `node` is protected at SLOT_NODE2 per the contract
            // (or a sentinel).
            let link1 = self.strategy.load(unsafe { &(*node).prev });
            if deleted_of(link1) {
                return; // node deleted — nothing to repair
            }
            // SAFETY: `prev` is protected at SLOT_PREV/SLOT_LAST moves
            // (or a sentinel).
            let prev2 = self.strategy.load(unsafe { &(*prev).next });
            if deleted_of(prev2) {
                if !last.is_null() {
                    // SAFETY: as above.
                    self.set_mark(unsafe { &(*prev).prev });
                    let target = ptr_of(prev2);
                    if self.reserve(target) {
                        // SAFETY: `last` protected at SLOT_LAST.
                        if self.strategy.cas(
                            unsafe { &(*last).next },
                            pack(prev, false),
                            pack(target, false),
                        ) {
                            self.release(prev, g);
                        } else {
                            self.release(target, g);
                        }
                    }
                    if Self::NP {
                        g.protect(SLOT_PREV, last as u64);
                        g.clear(SLOT_LAST);
                    }
                    prev = last;
                    last = std::ptr::null();
                } else {
                    prev = ptr_of(self.step(g, unsafe { &(*prev).prev }, SLOT_PREV));
                }
                continue;
            }
            let prev2p = ptr_of(prev2);
            if prev2p != node {
                if prev2p.is_null() {
                    // Ran off the end of the chain: `node` must be
                    // mid-deletion; re-check `link1`.
                    continue;
                }
                if Self::NP {
                    g.protect(SLOT_LAST, prev as u64);
                }
                last = prev;
                prev = ptr_of(self.step(g, unsafe { &(*prev).next }, SLOT_PREV));
                continue;
            }
            if ptr_of(link1) == prev {
                return; // already correct
            }
            if !self.reserve(prev) {
                // `prev` died between the adjacency read and here.
                prev = ptr_of(self.step(g, unsafe { &(*node).prev }, SLOT_PREV));
                continue;
            }
            // SAFETY: as above.
            if self
                .strategy
                .cas(unsafe { &(*node).prev }, link1, pack(prev, false))
            {
                self.release(ptr_of(link1), g);
                // SAFETY: as above.
                if deleted_of(self.strategy.load(unsafe { &(*prev).prev })) {
                    continue; // prev got deleted — repair once more
                }
                return;
            }
            self.release(prev, g);
        }
    }

    /// Retargets the popped `node`'s own links past already-deleted
    /// neighbors (keeping its marks), so dead nodes never pin each
    /// other: post-retarget references always point at nodes that were
    /// undeleted at retarget time, ordering the dead-node graph by
    /// deletion time (acyclic — every dead chain collapses).
    /// `node` must be protected at [`SLOT_OP`].
    fn remove_cross_reference(&self, g: &GuardOf<S>, node: *const Node) {
        // SAFETY throughout: `node` is protected at SLOT_OP; `p` is
        // protected at SLOT_RCR_A before dereference (validated against
        // the word that named it), and the reserve target at SLOT_RCR_B.
        unsafe {
            loop {
                let pw = self.load_link(g, &(*node).prev, SLOT_RCR_A);
                let p = ptr_of(pw);
                if self.uncounted(p) {
                    break;
                }
                if !deleted_of(self.strategy.load(&(*p).next)) {
                    break; // target still live — fine to keep
                }
                let p2w = self.load_link(g, &(*p).prev, SLOT_RCR_B);
                let p2 = ptr_of(p2w);
                if !self.reserve(p2) {
                    continue;
                }
                if self
                    .strategy
                    .cas(&(*node).prev, pw, pack(p2, deleted_of(pw)))
                {
                    self.release(p, g);
                } else {
                    self.release(p2, g);
                }
            }
            loop {
                let nw = self.load_link(g, &(*node).next, SLOT_RCR_A);
                let n = ptr_of(nw);
                if self.uncounted(n) {
                    break;
                }
                if !deleted_of(self.strategy.load(&(*n).next)) {
                    break;
                }
                let n2w = self.load_link(g, &(*n).next, SLOT_RCR_B);
                let n2 = ptr_of(n2w);
                if !self.reserve(n2) {
                    continue;
                }
                if self
                    .strategy
                    .cas(&(*node).next, nw, pack(n2, deleted_of(nw)))
                {
                    self.release(n, g);
                } else {
                    self.release(n2, g);
                }
            }
        }
    }

    /// Quiescent snapshot of the live values' words, left to right (for
    /// tests and diagnostics; only meaningful with no ops in flight).
    pub fn live_words(&self) -> Vec<u64> {
        let _guard = S::Reclaimer::pin();
        let mut out = Vec::new();
        let mut cur = ptr_of(self.strategy.load(&self.head.next));
        while cur != self.tailp() {
            // SAFETY: quiescent per the method contract; nodes linked
            // from the head are alive.
            unsafe {
                let nw = self.strategy.load(&(*cur).next);
                if !deleted_of(nw) {
                    out.push(self.strategy.load(&(*cur).value));
                }
                cur = ptr_of(nw);
            }
        }
        out
    }
}

impl<V: WordValue, S: DcasStrategy> Drop for RawSundellDeque<V, S> {
    fn drop(&mut self) {
        // Exclusive access: walk the physical `next` chain. On-chain
        // nodes are named by their predecessor (count ≥ 1), so they were
        // never retired — free them here; a marked node's value belongs
        // to the popper that marked it. Spliced-out nodes were retired
        // by the death cascade and are freed by their queued destructors.
        // SAFETY: quiescence per `&mut self`.
        unsafe {
            let mut cur = ptr_of(self.head.next.unsync_load_shared());
            while cur != self.tailp() {
                let node = cur as *mut Node;
                let nw = (*node).next.unsync_load_shared();
                if !deleted_of(nw) {
                    V::drop_encoded((*node).value.unsync_load_shared());
                }
                cur = ptr_of(nw);
                free_node_now(self.alloc, node);
            }
        }
    }
}

/// The Sundell–Tsigas CAS-only deque for arbitrary element types `T`
/// (heap-boxed per element) and any [`DcasStrategy`] `S` — of which it
/// uses only `load`/`store`/`cas`, never DCAS or CASN.
///
/// See the [module documentation](self) for the algorithm and
/// [`RawSundellDeque`] for the word-level API used by benches.
pub struct SundellDeque<T: Send, S: DcasStrategy = HarrisMcas> {
    raw: RawSundellDeque<Boxed<T>, S>,
}

impl<T: Send, S: DcasStrategy> Default for SundellDeque<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send, S: DcasStrategy> SundellDeque<T, S> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        SundellDeque { raw: RawSundellDeque::new() }
    }

    /// Creates an empty deque with an explicit node-allocation arm.
    pub fn with_node_alloc(alloc: NodeAlloc) -> Self {
        SundellDeque { raw: RawSundellDeque::with_node_alloc(alloc) }
    }

    /// The DCAS strategy instance (for counter snapshots).
    pub fn strategy(&self) -> &S {
        self.raw.strategy()
    }

    /// Appends `v` at the right end. Never fails (unbounded).
    pub fn push_right(&self, v: T) -> Result<(), Full<T>> {
        self.raw
            .push_right(Boxed::new(v))
            .map_err(|Full(b)| Full(b.into_inner()))
    }

    /// Appends `v` at the left end. Never fails.
    pub fn push_left(&self, v: T) -> Result<(), Full<T>> {
        self.raw
            .push_left(Boxed::new(v))
            .map_err(|Full(b)| Full(b.into_inner()))
    }

    /// Removes and returns the rightmost value, or `None` if empty.
    pub fn pop_right(&self) -> Option<T> {
        self.raw.pop_right().map(Boxed::into_inner)
    }

    /// Removes and returns the leftmost value, or `None` if empty.
    pub fn pop_left(&self) -> Option<T> {
        self.raw.pop_left().map(Boxed::into_inner)
    }
}

impl<T: Send, S: DcasStrategy> ConcurrentDeque<T> for SundellDeque<T, S> {
    fn push_right(&self, v: T) -> Result<(), Full<T>> {
        SundellDeque::push_right(self, v)
    }

    fn push_left(&self, v: T) -> Result<(), Full<T>> {
        SundellDeque::push_left(self, v)
    }

    fn pop_right(&self) -> Option<T> {
        SundellDeque::pop_right(self)
    }

    fn pop_left(&self) -> Option<T> {
        SundellDeque::pop_left(self)
    }

    // Batched ops inherit the per-element default loops (like the
    // dummy-node deque): this algorithm has no multi-word transition to
    // make a chunk atomic with.

    fn impl_name(&self) -> &'static str {
        "sundell-cas"
    }
}
