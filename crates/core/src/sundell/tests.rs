//! Unit tests for the Sundell–Tsigas CAS-only deque: sequential
//! semantics across every strategy, a VecDeque model check, value/node
//! accounting on drop, and concurrent conservation smokes under both
//! reclamation backends.

use dcas::{
    Counting, DcasStrategy, GlobalLock, GlobalSeqLock, HarrisMcas, HarrisMcasHazard, StripedLock,
};

use super::{RawSundellDeque, SundellDeque};

fn for_all_strategies(f: impl Fn(Box<dyn Fn() -> Box<dyn DynDeque>>)) {
    f(Box::new(|| {
        Box::new(RawSundellDeque::<u32, GlobalLock>::new())
    }));
    f(Box::new(|| {
        Box::new(RawSundellDeque::<u32, GlobalSeqLock>::new())
    }));
    f(Box::new(|| {
        Box::new(RawSundellDeque::<u32, StripedLock>::new())
    }));
    f(Box::new(|| {
        Box::new(RawSundellDeque::<u32, HarrisMcas>::new())
    }));
    f(Box::new(|| {
        Box::new(RawSundellDeque::<u32, HarrisMcasHazard>::new())
    }));
}

trait DynDeque {
    fn push_right(&self, v: u32);
    fn push_left(&self, v: u32);
    fn pop_right(&self) -> Option<u32>;
    fn pop_left(&self) -> Option<u32>;
}

impl<S: DcasStrategy> DynDeque for RawSundellDeque<u32, S> {
    fn push_right(&self, v: u32) {
        RawSundellDeque::push_right(self, v).unwrap();
    }
    fn push_left(&self, v: u32) {
        RawSundellDeque::push_left(self, v).unwrap();
    }
    fn pop_right(&self) -> Option<u32> {
        RawSundellDeque::pop_right(self)
    }
    fn pop_left(&self) -> Option<u32> {
        RawSundellDeque::pop_left(self)
    }
}

#[test]
fn running_example() {
    for_all_strategies(|mk| {
        let d = mk();
        d.push_right(1);
        d.push_left(2);
        d.push_right(3);
        assert_eq!(d.pop_left(), Some(2));
        assert_eq!(d.pop_left(), Some(1));
        assert_eq!(d.pop_left(), Some(3));
        assert_eq!(d.pop_left(), None);
        assert_eq!(d.pop_right(), None);
    });
}

#[test]
fn single_element_popped_from_far_side() {
    for_all_strategies(|mk| {
        let d = mk();
        d.push_right(9);
        assert_eq!(d.pop_right(), Some(9));
        assert_eq!(d.pop_left(), None);
        assert_eq!(d.pop_left(), None);
        d.push_left(4);
        assert_eq!(d.pop_right(), Some(4));
        assert_eq!(d.pop_right(), None);
    });
}

#[test]
fn lifo_from_each_end() {
    for_all_strategies(|mk| {
        let d = mk();
        for i in 0..50 {
            d.push_right(i);
        }
        for i in (0..50).rev() {
            assert_eq!(d.pop_right(), Some(i));
        }
        for i in 0..50 {
            d.push_left(i);
        }
        for i in (0..50).rev() {
            assert_eq!(d.pop_left(), Some(i));
        }
    });
}

#[test]
fn fifo_across_ends() {
    for_all_strategies(|mk| {
        let d = mk();
        for i in 0..50 {
            d.push_right(i);
        }
        for i in 0..50 {
            assert_eq!(d.pop_left(), Some(i));
        }
        for i in 0..50 {
            d.push_left(i);
        }
        for i in 0..50 {
            assert_eq!(d.pop_right(), Some(i));
        }
        assert_eq!(d.pop_right(), None);
        assert_eq!(d.pop_left(), None);
    });
}

#[test]
fn alternating_push_pop_both_sides() {
    for_all_strategies(|mk| {
        let d = mk();
        for round in 0..20 {
            d.push_left(round * 2);
            d.push_right(round * 2 + 1);
            assert_eq!(d.pop_left(), Some(round * 2));
            assert_eq!(d.pop_right(), Some(round * 2 + 1));
            assert_eq!(d.pop_right(), None);
        }
    });
}

#[test]
fn cas_only_claim() {
    // The whole point of the algorithm: no DCAS, no CASN, ever. The
    // counting wrapper proves the multi-word paths stay cold.
    use crate::value::WordValue;
    let d = RawSundellDeque::<u32, Counting<GlobalLock>>::new();
    for i in 0..20 {
        d.push_right(i).unwrap();
        d.push_left(i).unwrap();
    }
    for _ in 0..10 {
        d.pop_left();
        d.pop_right();
    }
    // Left half <9..0> from the push_lefts, right half <0..9> from the
    // push_rights.
    assert_eq!(
        d.live_words(),
        (0..10)
            .rev()
            .chain(0..10)
            .map(|v: u32| v.encode())
            .collect::<Vec<_>>()
    );
    let s = d.strategy().stats();
    assert_eq!(s.dcas_attempts, 0, "sundell must never issue a DCAS");
    assert!(s.cas_attempts > 0);
}

#[test]
fn typed_deque_with_strings() {
    let d: SundellDeque<String> = SundellDeque::new();
    d.push_right("b".into()).unwrap();
    d.push_left("a".into()).unwrap();
    d.push_right("c".into()).unwrap();
    assert_eq!(d.pop_left().as_deref(), Some("a"));
    assert_eq!(d.pop_right().as_deref(), Some("c"));
    assert_eq!(d.pop_right().as_deref(), Some("b"));
    assert_eq!(d.pop_right(), None);
}

#[test]
fn drop_releases_remaining_values_and_nodes() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    #[derive(Debug)]
    struct Probe;
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    DROPS.store(0, Ordering::SeqCst);
    {
        let d: SundellDeque<Probe, GlobalLock> = SundellDeque::new();
        for _ in 0..6 {
            d.push_right(Probe).unwrap();
        }
        drop(d.pop_left().unwrap());
        drop(d.pop_right().unwrap());
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }
    assert_eq!(DROPS.load(Ordering::SeqCst), 6);
}

mod properties {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[derive(Debug, Clone)]
    enum Op {
        PushRight(u32),
        PushLeft(u32),
        PopRight,
        PopLeft,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u32..1000).prop_map(Op::PushRight),
            (0u32..1000).prop_map(Op::PushLeft),
            Just(Op::PopRight),
            Just(Op::PopLeft),
        ]
    }

    proptest! {
        #[test]
        fn matches_vecdeque_model(
            ops in proptest::collection::vec(op_strategy(), 0..300),
        ) {
            use crate::value::WordValue;
            let d = RawSundellDeque::<u32, GlobalSeqLock>::new();
            let mut model: VecDeque<u32> = VecDeque::new();
            for op in &ops {
                match *op {
                    Op::PushRight(v) => {
                        d.push_right(v).unwrap();
                        model.push_back(v);
                    }
                    Op::PushLeft(v) => {
                        d.push_left(v).unwrap();
                        model.push_front(v);
                    }
                    Op::PopRight => prop_assert_eq!(d.pop_right(), model.pop_back()),
                    Op::PopLeft => prop_assert_eq!(d.pop_left(), model.pop_front()),
                }
            }
            let want: Vec<u64> = model.iter().map(|&v| v.encode()).collect();
            prop_assert_eq!(d.live_words(), want);
        }
    }
}

/// Mixed-ends concurrent conservation: every pushed value pops exactly
/// once, across both ends, for the given strategy.
fn concurrent_conservation<S: DcasStrategy + 'static>() {
    use std::sync::Arc;
    use std::sync::Mutex;
    let d: Arc<RawSundellDeque<u32, S>> = Arc::new(RawSundellDeque::new());
    let popped = Mutex::new(Vec::<u32>::new());
    const PER: u32 = 5_000;
    std::thread::scope(|s| {
        for t in 0..2u32 {
            let d = Arc::clone(&d);
            s.spawn(move || {
                for v in (t * PER)..(t + 1) * PER {
                    if v % 2 == 0 {
                        d.push_right(v).unwrap();
                    } else {
                        d.push_left(v).unwrap();
                    }
                }
            });
        }
        for t in 0..2u32 {
            let d = Arc::clone(&d);
            let popped = &popped;
            s.spawn(move || {
                let mut got = Vec::new();
                let mut idle = 0;
                while idle < 20_000 {
                    let v = if t == 0 { d.pop_left() } else { d.pop_right() };
                    match v {
                        Some(v) => {
                            got.push(v);
                            idle = 0;
                        }
                        None => idle += 1,
                    }
                }
                popped.lock().unwrap().extend(got);
            });
        }
    });
    let mut all = popped.into_inner().unwrap();
    while let Some(v) = d.pop_left() {
        all.push(v);
    }
    all.sort_unstable();
    let before = all.len();
    all.dedup();
    assert_eq!(all.len(), before, "duplicate values popped");
    assert_eq!(all.len(), 2 * PER as usize, "values lost");
}

#[test]
fn concurrent_conservation_epoch() {
    concurrent_conservation::<HarrisMcas>();
    // The epoch backend drains its deferred queue on demand.
    use dcas::{EpochReclaimer, Reclaimer};
    for _ in 0..4 {
        EpochReclaimer::flush();
    }
}

#[test]
fn concurrent_conservation_hazard() {
    concurrent_conservation::<HarrisMcasHazard>();
    use dcas::{HazardReclaimer, Reclaimer};
    HazardReclaimer::flush();
    assert!(
        HazardReclaimer::live_garbage() <= dcas::reclaim::hazard::static_garbage_bound(),
        "hazard live garbage exceeds the static bound after flush"
    );
}

#[test]
fn concurrent_conservation_locked() {
    concurrent_conservation::<StripedLock>();
}

/// Both node-allocation arms (page pool and seed-compatible `Box`)
/// behind the same deque semantics: interleaved two-ended traffic
/// drains to the exact push count on each arm. Named `pooled_` so CI's
/// allocator suite can select the per-family A/B units.
#[test]
fn pooled_and_boxed_arms_agree() {
    for pooled in [false, true] {
        let d = SundellDeque::<u32>::with_node_alloc(super::node_alloc(pooled));
        for i in 0..200u32 {
            if i % 2 == 0 {
                d.push_right(i).unwrap();
            } else {
                d.push_left(i).unwrap();
            }
        }
        let mut got = 0;
        while d.pop_left().is_some() || d.pop_right().is_some() {
            got += 1;
        }
        assert_eq!(got, 200, "pooled={pooled}");
    }
}
