//! The two DCAS-based concurrent deques of Agesen, Detlefs, Flood,
//! Garthwaite, Martin, Moir, Shavit & Steele, *DCAS-Based Concurrent
//! Deques* (SPAA 2000), implemented faithfully in Rust over the software
//! DCAS emulations of the [`dcas`] crate.
//!
//! * [`ArrayDeque`] — the array-based **bounded** deque of Section 3
//!   (Figures 2, 3, 30, 31). Both ends can be operated concurrently; the
//!   empty and full boundary cases are detected without atomically
//!   comparing the two end indices, using the paper's key observation that
//!   the state is determined by *one* index plus the content of the cell
//!   it points at.
//! * [`ListDeque`] — the linked-list-based **unbounded** deque of
//!   Section 4 (Figures 11, 13, 17, 32, 33, 34), the first non-blocking
//!   unbounded-memory deque. Pops are *split* into a logical deletion
//!   (null the value, set a deleted bit in the sentinel pointer) and a
//!   physical deletion (splice the node out), at the cost of one extra
//!   DCAS per pop. Node reclamation uses epoch-based reclamation
//!   (`crossbeam-epoch`) in place of the paper's assumed garbage
//!   collector.
//! * [`DummyListDeque`] — the variant sketched in the paper's footnote 4 /
//!   Figure 10, which replaces the deleted *bit* by per-side dummy
//!   indirection nodes.
//! * [`LfrcListDeque`] — the list deque transformed to run **without a
//!   garbage collector** via the authors' DCAS-based Lock-Free Reference
//!   Counting methodology (Section 1.1 of the paper; reference \[12\]).
//!
//! All deques are **linearizable** and, when instantiated with the
//! lock-free [`HarrisMcas`](dcas::HarrisMcas) strategy, **non-blocking**
//! end-to-end. Each deque is generic over the DCAS emulation
//! ([`dcas::DcasStrategy`]). The lock-free strategy's hot-path knobs
//! (descriptor pooling, exponential backoff, owner fast-path
//! installation) are re-exported here as [`McasConfig`], and its
//! feature-gated operation counters as [`StrategyStats`] (build with
//! `dcas/stats` to enable them).
//!
//! # Quickstart
//!
//! ```
//! use dcas_deque::{ArrayDeque, ListDeque, ConcurrentDeque};
//!
//! // A bounded deque holding up to 8 strings.
//! let d: ArrayDeque<String> = ArrayDeque::new(8);
//! d.push_right("b".into()).unwrap();
//! d.push_left("a".into()).unwrap();
//! assert_eq!(d.pop_right().as_deref(), Some("b"));
//! assert_eq!(d.pop_left().as_deref(), Some("a"));
//! assert_eq!(d.pop_left(), None); // empty
//!
//! // An unbounded deque.
//! let d: ListDeque<i64> = ListDeque::new();
//! for i in 0..100 {
//!     d.push_right(i).unwrap();
//! }
//! assert_eq!(d.pop_left(), Some(0));
//! assert_eq!(d.pop_right(), Some(99));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod array;
pub(crate) mod guard;
pub mod list;
pub mod list_dummy;
pub mod list_lfrc;
pub mod sundell;
pub mod value;

pub use array::ArrayDeque;
pub use list::ListDeque;
pub use list_dummy::DummyListDeque;
pub use list_lfrc::LfrcListDeque;
pub use sundell::SundellDeque;
pub use value::{Boxed, TraceId, WordValue};

// Strategy-level tuning and observability, re-exported so deque users can
// configure the default lock-free DCAS emulation without depending on the
// `dcas` crate directly. `EndConfig` gates the per-end elimination arrays
// consulted by the unbounded deques' retry loops (off by default; the
// bounded array deque has no such knob — see its module docs).
pub use dcas::{EndConfig, HarrisMcas, McasConfig, StrategyStats};

/// Maximum number of elements a batched deque operation moves in **one**
/// atomic transition.
///
/// The batched operations ([`ConcurrentDeque::push_right_n`] and friends)
/// accept any number of elements but split them into chunks of at most
/// this many; each chunk commits with a single CASN built from the
/// [`dcas`] substrate, so the chunk's elements appear (or vanish)
/// together at one linearization point. The bound is set by
/// [`dcas::MAX_CASN_WORDS`]: the widest chunk CASN (a batched list pop)
/// needs `k + 3` words.
pub const MAX_BATCH: usize = 8;

/// The word constants the paper's algorithms distinguish from user values.
pub mod reserved {
    /// The distinguished "null" value (denoted `0` in the paper's figures).
    pub const NULL: u64 = 0;
    /// The left sentinel's distinguished value (`sentL`).
    pub const SENTL: u64 = 4;
    /// The right sentinel's distinguished value (`sentR`).
    pub const SENTR: u64 = 8;
    /// Smallest word an encoded user value may occupy; everything below is
    /// reserved.
    pub const MIN_VALUE: u64 = 16;
}

/// Error returned by push operations on a full bounded deque. Carries the
/// rejected value back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct Full<T>(pub T);

impl<T> Full<T> {
    /// Recovers the value that could not be pushed.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::fmt::Display for Full<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deque is full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for Full<T> {}

/// Common interface over every deque in this workspace (the two paper
/// algorithms, the dummy-node variant, and the baseline comparators), used
/// by the stress harness, the work-stealing scheduler and the benches.
///
/// Push operations return `Err(Full(v))` when a bounded implementation is
/// at capacity (unbounded implementations never fail); pop operations
/// return `None` when the deque is observed empty.
pub trait ConcurrentDeque<T>: Send + Sync {
    /// Appends `v` at the right end.
    fn push_right(&self, v: T) -> Result<(), Full<T>>;
    /// Appends `v` at the left end.
    fn push_left(&self, v: T) -> Result<(), Full<T>>;
    /// Removes and returns the rightmost value, or `None` if empty.
    fn pop_right(&self) -> Option<T>;
    /// Removes and returns the leftmost value, or `None` if empty.
    fn pop_left(&self) -> Option<T>;
    /// Short implementation name for reporting.
    fn impl_name(&self) -> &'static str;

    /// Pushes every value of `vals` at the right end, in order — as if by
    /// repeated [`push_right`](Self::push_right) calls. On a full bounded
    /// deque the unpushed tail is handed back in `Full`.
    ///
    /// The default implementation is a per-element loop and therefore
    /// **not** atomic: concurrent operations may interleave between
    /// elements. The paper deques override it with chunk-atomic batches
    /// of up to [`MAX_BATCH`] elements per transition.
    fn push_right_n(&self, vals: Vec<T>) -> Result<(), Full<Vec<T>>> {
        let mut it = vals.into_iter();
        while let Some(v) = it.next() {
            if let Err(Full(v)) = self.push_right(v) {
                let mut rest = vec![v];
                rest.extend(it);
                return Err(Full(rest));
            }
        }
        Ok(())
    }

    /// Pushes every value of `vals` at the left end, in order — as if by
    /// repeated [`push_left`](Self::push_left) calls (so the **last**
    /// element of `vals` ends up leftmost). Same atomicity caveats and
    /// overrides as [`push_right_n`](Self::push_right_n).
    fn push_left_n(&self, vals: Vec<T>) -> Result<(), Full<Vec<T>>> {
        let mut it = vals.into_iter();
        while let Some(v) = it.next() {
            if let Err(Full(v)) = self.push_left(v) {
                let mut rest = vec![v];
                rest.extend(it);
                return Err(Full(rest));
            }
        }
        Ok(())
    }

    /// Removes up to `n` values from the right end, rightmost first — as
    /// if by repeated [`pop_right`](Self::pop_right) calls, stopping early
    /// when the deque is observed empty.
    ///
    /// The default implementation is a per-element loop; the paper deques
    /// override it with chunk-atomic batches.
    fn pop_right_n(&self, n: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.pop_right() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }

    /// Removes up to `n` values from the left end, leftmost first — as if
    /// by repeated [`pop_left`](Self::pop_left) calls, stopping early when
    /// the deque is observed empty. Same atomicity caveats and overrides
    /// as [`pop_right_n`](Self::pop_right_n).
    fn pop_left_n(&self, n: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.pop_left() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }
}
