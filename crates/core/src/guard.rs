//! Unwind-safety guards for encoded values in flight.
//!
//! A push encodes the caller's value into a payload word *before* the
//! committing DCAS, and between those two instants the word is owned by
//! nothing the compiler can see: if a strategy call unwinds (a
//! fault-injected kill under the `dcas/fault-inject` feature) or a
//! batch iterator panics mid-chunk (a throwing `Clone`), the encoded
//! word — and the heap box behind a [`Boxed`](crate::value::Boxed)
//! value — would leak. These guards pin that ownership: the word(s)
//! are released by `Drop` unless explicitly committed to the deque.
//!
//! Soundness rests on the [`DcasStrategy`](dcas::DcasStrategy)
//! unwinding contract: a strategy call that unwinds had **no effect**,
//! so at every unwind point the deque does not yet reference the
//! words and dropping them here is the unique release.

use std::marker::PhantomData;
use std::mem;

use crate::value::WordValue;
use crate::MAX_BATCH;

/// One encoded value awaiting its committing DCAS.
pub(crate) struct EncodedGuard<V: WordValue> {
    word: u64,
    _marker: PhantomData<V>,
}

impl<V: WordValue> EncodedGuard<V> {
    pub(crate) fn new(v: V) -> Self {
        EncodedGuard { word: v.encode(), _marker: PhantomData }
    }

    pub(crate) fn word(&self) -> u64 {
        self.word
    }

    /// The committing DCAS succeeded: the deque owns the word now.
    pub(crate) fn commit(self) {
        mem::forget(self);
    }

    /// The push failed (bounded deque full): reconstitute the value.
    pub(crate) fn reclaim(self) -> V {
        let w = self.word;
        mem::forget(self);
        // SAFETY: `w` was produced by `encode` in `new` and — absent a
        // `commit` — never consumed.
        unsafe { V::decode(w) }
    }
}

impl<V: WordValue> Drop for EncodedGuard<V> {
    fn drop(&mut self) {
        // Reached only by unwinding out of the push: no DCAS
        // transferred the word to the deque (strategy unwinding
        // contract), so this guard still uniquely owns it.
        // SAFETY: as above.
        unsafe { V::drop_encoded(self.word) };
    }
}

/// Up to [`MAX_BATCH`] encoded values awaiting one chunk CASN.
pub(crate) struct EncodedChunk<V: WordValue> {
    words: [u64; MAX_BATCH],
    len: usize,
    _marker: PhantomData<V>,
}

impl<V: WordValue> EncodedChunk<V> {
    pub(crate) fn new() -> Self {
        EncodedChunk { words: [0; MAX_BATCH], len: 0, _marker: PhantomData }
    }

    pub(crate) fn push(&mut self, v: V) {
        debug_assert!(self.len < MAX_BATCH);
        self.words[self.len] = v.encode();
        self.len += 1;
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn words(&self) -> &[u64] {
        &self.words[..self.len]
    }

    /// The chunk CASN succeeded: the deque owns every word now.
    pub(crate) fn commit(self) {
        mem::forget(self);
    }

    /// The chunk could not be pushed: reconstitute the values in order.
    pub(crate) fn reclaim(self) -> Vec<V> {
        let (words, len) = (self.words, self.len);
        mem::forget(self);
        // SAFETY: each word was encoded by `push` and never consumed.
        words[..len].iter().map(|&w| unsafe { V::decode(w) }).collect()
    }
}

impl<V: WordValue> Drop for EncodedChunk<V> {
    fn drop(&mut self) {
        for &w in &self.words[..self.len] {
            // SAFETY: as in `reclaim`; reached only by unwinding before
            // the chunk was committed.
            unsafe { V::drop_encoded(w) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicIsize, Ordering};

    static LIVE: AtomicIsize = AtomicIsize::new(0);

    struct Probe;
    impl Probe {
        fn new() -> Self {
            LIVE.fetch_add(1, Ordering::SeqCst);
            Probe
        }
    }
    impl Drop for Probe {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn dropped_guard_releases_value() {
        let before = LIVE.load(Ordering::SeqCst);
        let g = EncodedGuard::new(crate::value::Boxed::new(Probe::new()));
        assert_eq!(LIVE.load(Ordering::SeqCst), before + 1);
        drop(g);
        assert_eq!(LIVE.load(Ordering::SeqCst), before);
    }

    #[test]
    fn reclaimed_guard_round_trips() {
        let g = EncodedGuard::new(42u32);
        assert_eq!(g.reclaim(), 42);
    }

    #[test]
    fn dropped_chunk_releases_partial_batch() {
        let before = LIVE.load(Ordering::SeqCst);
        let mut c = EncodedChunk::new();
        for _ in 0..3 {
            c.push(crate::value::Boxed::new(Probe::new()));
        }
        assert_eq!(c.len(), 3);
        assert_eq!(LIVE.load(Ordering::SeqCst), before + 3);
        drop(c);
        assert_eq!(LIVE.load(Ordering::SeqCst), before);
    }

    #[test]
    fn reclaimed_chunk_preserves_order() {
        let mut c = EncodedChunk::new();
        for v in [7u32, 8, 9] {
            c.push(v);
        }
        assert!(!c.is_empty());
        assert_eq!(c.words().len(), 3);
        assert_eq!(c.reclaim(), vec![7, 8, 9]);
    }
}
