//! The linked-list deque transformed to run **without a garbage
//! collector**, via DCAS-based lock-free reference counting (LFRC).
//!
//! The paper notes (Section 1.1): "we have also shown how these
//! algorithms can be transformed into equivalent ones that do not depend
//! on garbage collection, using our Lock-Free Reference Counting (LFRC)
//! methodology \[12\]" (Detlefs, Martin, Moir & Steele, PODC 2001). This
//! module carries out that transformation on the Section 4 deque —
//! fittingly, LFRC is itself built on DCAS, so the whole stack still
//! bottoms out in the one primitive the paper studies.
//!
//! # The methodology, as applied here
//!
//! Every node carries a reference count (`rc`) that tallies (a) shared
//! pointer slots targeting the node (sentinel inward words and neighbor
//! link fields) and (b) live local references held by in-flight
//! operations.
//!
//! * **`load_ptr` (LFRCLoad)** — reading a pointer slot acquires a local
//!   reference with one DCAS: `DCAS(slot, &target.rc, w, rc, w, rc+1)`
//!   succeeds only if the slot *still* points at the target, which
//!   guarantees the target is alive (the slot itself holds a counted
//!   reference).
//! * **`release` (LFRCDestroy)** — dropping a reference decrements with a
//!   single CAS; the thread that takes the count to zero releases the
//!   node's own outgoing references (recursively) and retires the node.
//! * **DCASes that overwrite pointer slots** pre-increment the counts of
//!   the new targets and, on success, decrement those of the overwritten
//!   targets (LFRCDCAS).
//!
//! ABA safety without epochs: a node is recycled only when its count is
//! zero, i.e. when no slot points at it **and** no operation holds a
//! local reference — and every DCAS expectation in the algorithm is a
//! word obtained from `load_ptr` whose reference is still held at DCAS
//! time.
//!
//! # Where the pluggable [`Reclaimer`] comes in
//!
//! LFRC decides *when* a node is dead (count zero) without any epoch or
//! hazard machinery — but `load_ptr` performs one **speculative** read
//! of the candidate's count word before its validating DCAS, and that
//! read must land on mapped memory even if the node just died. The
//! original implementation bought this with a type-stable node pool
//! that never returned memory to the allocator while the deque lived.
//! This module now routes the end of a node's life through the
//! strategy's pluggable [`Reclaimer`] instead: dead nodes are retired
//! on the operation's guard and genuinely freed after the grace period
//! (epoch backend) or hazard drain (hazard backend, where `load_ptr`
//! announces and revalidates the candidate before the speculative
//! read). The backend covers exactly that one-window access; every
//! other dereference rides on a counted reference.
//!
//! Compared with the epoch-based [`ListDeque`](crate::ListDeque), pops
//! and pushes execute extra count-maintenance CASes (measured in bench
//! `e5_array_vs_list` and the `boundary_cases` example); the payoff is
//! that reclamation *decisions* are immediate and deterministic — the
//! paper's footnote 2 caveat, discharged — while the allocator is a
//! plain `Box` per node rather than a never-shrinking pool.

// Nested `if`s mirror the paper's listing structure; do not collapse.
#![allow(clippy::collapsible_if)]

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use dcas::{DcasStrategy, DcasWord, HarrisMcas, NodeAlloc, NodePool, ReclaimGuard, Reclaimer};

use crate::reserved::{NULL, SENTL, SENTR};
use crate::value::{Boxed, WordValue};
use crate::{ConcurrentDeque, Full};

#[cfg(test)]
mod tests;

/// The reclaim guard type of a strategy's backend.
type GuardOf<S> = <<S as DcasStrategy>::Reclaimer as Reclaimer>::Guard;

/// Hazard slot used by [`RawLfrcListDeque::load_ptr`] for the
/// speculative count-word access. Only one slot is ever live: every
/// other dereference is backed by a counted reference, which blocks
/// retirement outright.
const SLOT_LOAD: usize = 0;

/// Per-deque allocation audit. Every live (not yet freed) node holds
/// one `Arc` reference, so `Arc::strong_count - 1` *is* the
/// outstanding-node gauge — and keeps the audit block alive for
/// retire dtors that run after the deque itself is dropped.
struct NodeAudit {
    /// Total nodes this deque ever allocated.
    allocated: AtomicU64,
}

/// A node: the paper's three words plus the LFRC reference count and
/// the audit backlink.
#[repr(align(16))]
pub(crate) struct Node {
    l: DcasWord,
    r: DcasWord,
    value: DcasWord,
    /// Reference count, stored shifted left by two (payload contract).
    rc: DcasWord,
    /// Raw `Arc<NodeAudit>` handle, released when the node is freed.
    audit: *const NodeAudit,
}

impl Node {
    pub(crate) fn new_blank() -> Node {
        Node {
            l: DcasWord::new(0),
            r: DcasWord::new(0),
            value: DcasWord::new(NULL),
            rc: DcasWord::new(0),
            audit: std::ptr::null(),
        }
    }
}

/// Frees a dead node: runs as the [`ReclaimGuard::retire`] dtor (on any
/// thread, possibly after the deque is gone) and from `Drop` for nodes
/// still linked at teardown.
///
/// # Safety
///
/// `p` must come from `Box::into_raw` in [`RawLfrcListDeque::alloc_node`]
/// and be unreachable; runs exactly once per node.
unsafe fn free_node_boxed(p: *mut u8) {
    // SAFETY: per the function contract.
    let node = unsafe { Box::from_raw(p.cast::<Node>()) };
    // SAFETY: `audit` holds the strong reference `alloc_node` leaked.
    unsafe { drop(Arc::from_raw(node.audit)) };
}

/// Pooled counterpart of [`free_node_boxed`]: the audit backlink must be
/// read out *before* the slot returns to the pool (a recycler may
/// overwrite it immediately).
unsafe fn free_node_pooled(p: *mut u8) {
    // SAFETY: per the same contract; exclusive access until dealloc.
    let audit = unsafe { (*p.cast::<Node>()).audit };
    // SAFETY: `p` came from the node pool; runs once, post-scan.
    unsafe { NodePool::dealloc(p) };
    // SAFETY: `audit` holds the strong reference `alloc_node` leaked.
    unsafe { drop(Arc::from_raw(audit)) };
}

/// Immediately frees a quiescent node through `alloc`'s arm.
///
/// # Safety
///
/// Same contract as the retire dtors; the caller has exclusive access.
unsafe fn free_node_now(alloc: NodeAlloc, p: *mut u8) {
    if alloc.is_pooled() {
        unsafe { free_node_pooled(p) };
    } else {
        unsafe { free_node_boxed(p) };
    }
}

/// Page pool for this module's nodes (sentinels stay boxed).
static NODE_POOL: NodePool = NodePool::new("list_lfrc", std::mem::size_of::<Node>(), 16);

/// Builds a [`NodeAlloc`] handle for this module's node pool:
/// `pooled = true` selects the page-pool arm, `false` the boxed
/// seed-compat arm (for A/B comparisons inside one binary).
pub fn node_alloc(pooled: bool) -> NodeAlloc {
    if pooled {
        NodeAlloc::pooled(&NODE_POOL)
    } else {
        NodeAlloc::boxed(&NODE_POOL)
    }
}

/// Default allocation arm; `box-nodes` flips it to the seed-compat heap.
fn default_node_alloc() -> NodeAlloc {
    if cfg!(feature = "box-nodes") {
        NodeAlloc::boxed(&NODE_POOL)
    } else {
        NodeAlloc::pooled(&NODE_POOL)
    }
}

const DELETED_BIT: u64 = 0b100;
/// One reference, in the shifted encoding.
const ONE: u64 = 4;

#[inline]
fn pack(ptr: *const Node, deleted: bool) -> u64 {
    let p = ptr as u64;
    debug_assert_eq!(p & 0xF, 0);
    p | if deleted { DELETED_BIT } else { 0 }
}

#[inline]
fn ptr_of(w: u64) -> *const Node {
    (w & !0xF) as *const Node
}

#[inline]
fn deleted_of(w: u64) -> bool {
    w & DELETED_BIT != 0
}

/// Diagnostics snapshot of the census and the reclamation audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LfrcStats {
    /// Nodes currently linked in the deque (including logically deleted).
    pub linked: usize,
    /// Total nodes ever allocated by this deque.
    pub allocated: u64,
    /// Nodes allocated but not yet freed: linked nodes plus retirements
    /// the backend has not drained yet. Zero after drain + flush means
    /// the drop-count audit balances.
    pub outstanding: u64,
}

/// Word-level LFRC deque; use [`LfrcListDeque`] for arbitrary element
/// types.
pub struct RawLfrcListDeque<V: WordValue, S: DcasStrategy> {
    strategy: S,
    audit: Arc<NodeAudit>,
    /// Node-allocation arm: page pool (default) or boxed seed-compat.
    alloc: NodeAlloc,
    sl: Box<CachePadded<Node>>,
    sr: Box<CachePadded<Node>>,
    _marker: PhantomData<fn(V) -> V>,
}

// SAFETY: shared-word accesses go through the strategy; node lifetime is
// governed by the reference-counting protocol, with the speculative
// window covered by the strategy's reclaim guard.
unsafe impl<V: WordValue, S: DcasStrategy> Send for RawLfrcListDeque<V, S> {}
unsafe impl<V: WordValue, S: DcasStrategy> Sync for RawLfrcListDeque<V, S> {}

impl<V: WordValue, S: DcasStrategy> Default for RawLfrcListDeque<V, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: WordValue, S: DcasStrategy> RawLfrcListDeque<V, S> {
    /// Const-folds to `false` for the epoch backend, where pinning alone
    /// protects the speculative count-word read.
    const NP: bool = <GuardOf<S> as ReclaimGuard>::NEEDS_PROTECT;

    /// Creates an empty deque.
    pub fn new() -> Self {
        Self::with_node_alloc(default_node_alloc())
    }

    /// Creates an empty deque with an explicit node-allocation arm (the
    /// E17 bench compares both arms inside one binary).
    pub fn with_node_alloc(alloc: NodeAlloc) -> Self {
        let sl = Box::new(CachePadded::new(Node::new_blank()));
        let sr = Box::new(CachePadded::new(Node::new_blank()));
        let slp: *const Node = &**sl as *const Node;
        let srp: *const Node = &**sr as *const Node;
        sl.value.init_store(SENTL);
        sr.value.init_store(SENTR);
        sl.r.init_store(pack(srp, false));
        sr.l.init_store(pack(slp, false));
        // Sentinels are owned by the deque and never reclaimed; their
        // counts are maintained uniformly but ignored.
        sl.rc.init_store(ONE);
        sr.rc.init_store(ONE);
        RawLfrcListDeque {
            strategy: S::default(),
            audit: Arc::new(NodeAudit { allocated: AtomicU64::new(0) }),
            alloc,
            sl,
            sr,
            _marker: PhantomData,
        }
    }

    #[inline]
    fn slp(&self) -> *const Node {
        &**self.sl as *const Node
    }

    #[inline]
    fn srp(&self) -> *const Node {
        &**self.sr as *const Node
    }

    #[inline]
    fn is_sentinel(&self, n: *const Node) -> bool {
        n == self.slp() || n == self.srp()
    }

    /// The DCAS strategy instance.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Allocates a blank node carrying a strong audit reference.
    fn alloc_node(&self) -> *mut Node {
        self.audit.allocated.fetch_add(1, Ordering::Relaxed);
        let n = if self.alloc.is_pooled() {
            let n = self.alloc.pool().alloc().cast::<Node>();
            // SAFETY: type-stable pool slot, reinitialized through the
            // atomic fields per the pool's quarantine contract; `audit`
            // is a plain field never read by in-flight validators.
            unsafe {
                (*n).l.init_store(0);
                (*n).r.init_store(0);
                (*n).value.init_store(NULL);
                (*n).rc.init_store(0);
            }
            n
        } else {
            Box::into_raw(Box::new(Node::new_blank()))
        };
        // SAFETY: fresh allocation, unpublished.
        unsafe { (*n).audit = Arc::into_raw(Arc::clone(&self.audit)) };
        n
    }

    /// LFRC *addToRC*: takes one additional reference to the target of
    /// `w`. The caller must already hold a reference to that target (or
    /// it must be a sentinel).
    fn add_ref(&self, w: u64) {
        let n = ptr_of(w);
        if n.is_null() || self.is_sentinel(n) {
            return;
        }
        loop {
            // SAFETY: caller holds a reference, so `n` is alive.
            let rc = self.strategy.load(unsafe { &(*n).rc });
            debug_assert!(rc >= ONE);
            if self.strategy.cas(unsafe { &(*n).rc }, rc, rc + ONE) {
                return;
            }
        }
    }

    /// LFRC *LFRCDestroy*: drops one reference to the target of `w`; the
    /// dropper of the last reference releases the node's outgoing links
    /// and retires it on `g` (freed after the backend's grace period).
    fn release(&self, g: &GuardOf<S>, w: u64) {
        let mut stack = vec![w];
        while let Some(w) = stack.pop() {
            let n = ptr_of(w);
            if n.is_null() || self.is_sentinel(n) {
                continue;
            }
            loop {
                // SAFETY: the reference being dropped keeps `n` alive
                // until the CAS below commits the decrement.
                let rc = self.strategy.load(unsafe { &(*n).rc });
                debug_assert!(rc >= ONE, "reference-count underflow");
                if self.strategy.cas(unsafe { &(*n).rc }, rc, rc - ONE) {
                    if rc == ONE {
                        // Last reference: no slot points here and no
                        // operation holds it. Release children, retire.
                        // SAFETY: exclusive access now; stale `load_ptr`
                        // snoops of the count word are covered by their
                        // own guards until the dtor actually runs.
                        unsafe {
                            debug_assert_eq!(
                                (*n).value.unsync_load_shared(),
                                NULL,
                                "only logically deleted nodes can die"
                            );
                            stack.push((*n).l.unsync_load_shared());
                            stack.push((*n).r.unsync_load_shared());
                            let dtor = if self.alloc.is_pooled() {
                                free_node_pooled
                            } else {
                                free_node_boxed
                            };
                            g.retire(
                                n as *mut Node as *mut u8,
                                std::mem::size_of::<Node>(),
                                dtor,
                            );
                        }
                    }
                    break;
                }
            }
        }
    }

    /// LFRC *LFRCLoad*: atomically reads pointer slot `a` and acquires a
    /// reference to its target. Returns the word read; the caller owns
    /// one reference to `ptr_of(word)` and must `release` it.
    ///
    /// The count-word access before the validating DCAS is speculative:
    /// the node may have died after `a` was read. The epoch backend
    /// covers it by pinning; the hazard backend announces the candidate
    /// at [`SLOT_LOAD`] and revalidates `a` first, and the DCAS then
    /// fails if the slot moved on. Once the DCAS lands, the acquired
    /// count itself blocks retirement, so the slot is cleared.
    ///
    /// # Safety
    ///
    /// `a` must be a live pointer slot of this deque (a sentinel inward
    /// word, or a link field of a node the caller holds a reference to).
    unsafe fn load_ptr(&self, g: &GuardOf<S>, a: &DcasWord) -> u64 {
        loop {
            let w = self.strategy.load(a);
            let n = ptr_of(w);
            if n.is_null() || self.is_sentinel(n) {
                return w;
            }
            if Self::NP {
                g.protect(SLOT_LOAD, n as u64);
                if self.strategy.load(a) != w {
                    // Announcement not validated: the slot moved on, so
                    // the hazard may have raced the scanner. Start over.
                    continue;
                }
            }
            // SAFETY: pinned (epoch) or announced-and-validated
            // (hazard) — the count word is readable even if `n` died.
            let rc = self.strategy.load(unsafe { &(*n).rc });
            let ok = rc >= ONE
                && self
                    .strategy
                    .dcas(a, unsafe { &(*n).rc }, w, rc, w, rc + ONE);
            if Self::NP {
                g.clear(SLOT_LOAD);
            }
            if ok {
                return w;
            }
        }
    }

    /// `popRight`, LFRC-transformed.
    pub fn pop_right(&self) -> Option<V> {
        let g = S::Reclaimer::pin();
        loop {
            // SAFETY: the sentinel word is always live.
            let old_l = unsafe { self.load_ptr(&g, &self.sr.l) }; // ref: olp
            let olp = ptr_of(old_l);
            // SAFETY: reference held.
            let v = self.strategy.load(unsafe { &(*olp).value });
            if v == SENTL {
                self.release(&g, old_l);
                return None;
            }
            if deleted_of(old_l) {
                self.delete_right(&g);
                self.release(&g, old_l);
                continue;
            }
            if v == NULL {
                // Identity DCAS: no slot retargets, no count changes.
                // SAFETY: reference held.
                let ok = self.strategy.dcas(
                    &self.sr.l,
                    unsafe { &(*olp).value },
                    old_l,
                    v,
                    old_l,
                    v,
                );
                self.release(&g, old_l);
                if ok {
                    return None;
                }
                continue;
            }
            // Logical deletion: the sentinel slot keeps targeting `olp`
            // (only the deleted bit flips), so counts are unchanged.
            // SAFETY: reference held.
            let ok = self.strategy.dcas(
                &self.sr.l,
                unsafe { &(*olp).value },
                old_l,
                v,
                pack(olp, true),
                NULL,
            );
            self.release(&g, old_l);
            if ok {
                // SAFETY: the DCAS moved the value out; unique ownership.
                return Some(unsafe { V::decode(v) });
            }
        }
    }

    /// `pushRight`, LFRC-transformed.
    pub fn push_right(&self, v: V) -> Result<(), Full<V>> {
        let g = S::Reclaimer::pin();
        let node = self.alloc_node();
        let val = v.encode();
        // Creator's local reference.
        // SAFETY: fresh node, unpublished: exclusive access.
        unsafe { (*node).rc.init_store(ONE) };
        loop {
            // SAFETY: sentinel word.
            let old_l = unsafe { self.load_ptr(&g, &self.sr.l) }; // ref: olp
            if deleted_of(old_l) {
                self.delete_right(&g);
                self.release(&g, old_l);
                continue;
            }
            let olp = ptr_of(old_l);
            // SAFETY: unpublished node.
            unsafe {
                (*node).l.init_store(old_l);
                (*node).r.init_store(pack(self.srp(), false));
                (*node).value.init_store(val);
            }
            // Prospective new counted slots: SR->L -> node, olp.r -> node
            // (two refs to node) and node.l -> olp (one ref to olp).
            let nw = pack(node, false);
            self.add_ref(nw);
            self.add_ref(nw);
            self.add_ref(pack(olp, false));
            // SAFETY: reference to olp held.
            if self.strategy.dcas(
                &self.sr.l,
                unsafe { &(*olp).r },
                old_l,
                pack(self.srp(), false),
                nw,
                nw,
            ) {
                // Overwritten slots: SR->L targeted olp (release); olp.r
                // targeted SR (sentinel, no-op).
                self.release(&g, pack(olp, false));
                // Creator's local reference to the now-published node.
                self.release(&g, nw);
                self.release(&g, old_l);
                return Ok(());
            }
            // Undo the prospective counts and retry.
            self.release(&g, nw);
            self.release(&g, nw);
            self.release(&g, pack(olp, false));
            self.release(&g, old_l);
        }
    }

    /// `deleteRight`, LFRC-transformed.
    fn delete_right(&self, g: &GuardOf<S>) {
        loop {
            // SAFETY: sentinel word.
            let old_l = unsafe { self.load_ptr(g, &self.sr.l) }; // ref: olp
            if !deleted_of(old_l) {
                self.release(g, old_l);
                return;
            }
            let olp = ptr_of(old_l);
            // SAFETY: reference to olp held; its link field is live.
            let old_ll_w = unsafe { self.load_ptr(g, &(*olp).l) }; // ref: oll
            let oll = ptr_of(old_ll_w);
            // SAFETY: reference to oll held.
            let v = self.strategy.load(unsafe { &(*oll).value });
            if v != NULL {
                // SAFETY: reference to oll held.
                let old_llr = unsafe { self.load_ptr(g, &(*oll).r) }; // ref: t
                if ptr_of(old_llr) == olp {
                    // Splice: SR->L -> oll (new counted slot), oll.r -> SR
                    // (sentinel).
                    self.add_ref(pack(oll, false));
                    // SAFETY: references held.
                    if self.strategy.dcas(
                        &self.sr.l,
                        unsafe { &(*oll).r },
                        old_l,
                        old_llr,
                        pack(oll, false),
                        pack(self.srp(), false),
                    ) {
                        // Overwritten slots both targeted olp.
                        self.release(g, pack(olp, false));
                        self.release(g, pack(olp, false));
                        self.release(g, old_llr); // local (t == olp)
                        self.release(g, old_ll_w);
                        self.release(g, old_l);
                        return;
                    }
                    self.release(g, pack(oll, false)); // undo
                }
                self.release(g, old_llr);
                self.release(g, old_ll_w);
                self.release(g, old_l);
            } else {
                // Two null nodes: double splice toward the sentinels.
                // SAFETY: sentinel word.
                let old_r = unsafe { self.load_ptr(g, &self.sl.r) }; // ref: orp
                let orp = ptr_of(old_r);
                if deleted_of(old_r) {
                    // New slot targets are both sentinels: no pre-counts.
                    if self.strategy.dcas(
                        &self.sr.l,
                        &self.sl.r,
                        old_l,
                        old_r,
                        pack(self.slp(), false),
                        pack(self.srp(), false),
                    ) {
                        // The two unlinked null nodes reference each other
                        // (olp.l -> orp, orp.r -> olp): a dead cycle that
                        // reference counting cannot reclaim. The winner
                        // breaks it by retargeting the dead links at the
                        // (always-valid, uncounted) sentinels — harmless
                        // for stale readers, which revalidate with DCAS.
                        self.break_cycle(g, olp, orp);
                        // Overwritten: SR->L targeted olp, SL->R targeted
                        // orp.
                        self.release(g, pack(olp, false));
                        self.release(g, pack(orp, false));
                        self.release(g, old_r);
                        self.release(g, old_ll_w);
                        self.release(g, old_l);
                        return;
                    }
                }
                self.release(g, old_r);
                self.release(g, old_ll_w);
                self.release(g, old_l);
            }
        }
    }

    /// Breaks the mutual-reference cycle between the two null nodes a
    /// two-null double splice unlinks: retargets `left.r` (which points at
    /// `right`) and `right.l` (which points at `left`) to the sentinels,
    /// releasing the counted references those dead links held. Only the
    /// thread that won the double-splice DCAS calls this, and both nodes
    /// are already unreachable from the structure, so each link is
    /// rewritten at most once.
    fn break_cycle(&self, g: &GuardOf<S>, right: *const Node, left: *const Node) {
        // SAFETY: we hold references to both nodes (caller's locals).
        unsafe {
            let rl = self.strategy.load(&(*right).l);
            if ptr_of(rl) == left && self.strategy.cas(&(*right).l, rl, pack(self.slp(), false))
            {
                self.release(g, rl);
            }
            let lr = self.strategy.load(&(*left).r);
            if ptr_of(lr) == right && self.strategy.cas(&(*left).r, lr, pack(self.srp(), false))
            {
                self.release(g, lr);
            }
        }
    }

    /// `popLeft`, LFRC-transformed (mirror of `pop_right`).
    pub fn pop_left(&self) -> Option<V> {
        let g = S::Reclaimer::pin();
        loop {
            // SAFETY: sentinel word.
            let old_r = unsafe { self.load_ptr(&g, &self.sl.r) }; // ref: orp
            let orp = ptr_of(old_r);
            // SAFETY: reference held.
            let v = self.strategy.load(unsafe { &(*orp).value });
            if v == SENTR {
                self.release(&g, old_r);
                return None;
            }
            if deleted_of(old_r) {
                self.delete_left(&g);
                self.release(&g, old_r);
                continue;
            }
            if v == NULL {
                // SAFETY: reference held.
                let ok = self.strategy.dcas(
                    &self.sl.r,
                    unsafe { &(*orp).value },
                    old_r,
                    v,
                    old_r,
                    v,
                );
                self.release(&g, old_r);
                if ok {
                    return None;
                }
                continue;
            }
            // SAFETY: reference held.
            let ok = self.strategy.dcas(
                &self.sl.r,
                unsafe { &(*orp).value },
                old_r,
                v,
                pack(orp, true),
                NULL,
            );
            self.release(&g, old_r);
            if ok {
                // SAFETY: unique ownership via the DCAS.
                return Some(unsafe { V::decode(v) });
            }
        }
    }

    /// `pushLeft`, LFRC-transformed (mirror of `push_right`).
    pub fn push_left(&self, v: V) -> Result<(), Full<V>> {
        let g = S::Reclaimer::pin();
        let node = self.alloc_node();
        let val = v.encode();
        // SAFETY: unpublished node.
        unsafe { (*node).rc.init_store(ONE) };
        loop {
            // SAFETY: sentinel word.
            let old_r = unsafe { self.load_ptr(&g, &self.sl.r) }; // ref: orp
            if deleted_of(old_r) {
                self.delete_left(&g);
                self.release(&g, old_r);
                continue;
            }
            let orp = ptr_of(old_r);
            // SAFETY: unpublished node.
            unsafe {
                (*node).r.init_store(old_r);
                (*node).l.init_store(pack(self.slp(), false));
                (*node).value.init_store(val);
            }
            let nw = pack(node, false);
            self.add_ref(nw);
            self.add_ref(nw);
            self.add_ref(pack(orp, false));
            // SAFETY: reference to orp held.
            if self.strategy.dcas(
                &self.sl.r,
                unsafe { &(*orp).l },
                old_r,
                pack(self.slp(), false),
                nw,
                nw,
            ) {
                self.release(&g, pack(orp, false));
                self.release(&g, nw);
                self.release(&g, old_r);
                return Ok(());
            }
            self.release(&g, nw);
            self.release(&g, nw);
            self.release(&g, pack(orp, false));
            self.release(&g, old_r);
        }
    }

    /// `deleteLeft`, LFRC-transformed (mirror of `delete_right`).
    fn delete_left(&self, g: &GuardOf<S>) {
        loop {
            // SAFETY: sentinel word.
            let old_r = unsafe { self.load_ptr(g, &self.sl.r) }; // ref: orp
            if !deleted_of(old_r) {
                self.release(g, old_r);
                return;
            }
            let orp = ptr_of(old_r);
            // SAFETY: reference held.
            let old_rr_w = unsafe { self.load_ptr(g, &(*orp).r) }; // ref: orr
            let orr = ptr_of(old_rr_w);
            // SAFETY: reference held.
            let v = self.strategy.load(unsafe { &(*orr).value });
            if v != NULL {
                // SAFETY: reference held.
                let old_rrl = unsafe { self.load_ptr(g, &(*orr).l) }; // ref: t
                if ptr_of(old_rrl) == orp {
                    self.add_ref(pack(orr, false));
                    // SAFETY: references held.
                    if self.strategy.dcas(
                        &self.sl.r,
                        unsafe { &(*orr).l },
                        old_r,
                        old_rrl,
                        pack(orr, false),
                        pack(self.slp(), false),
                    ) {
                        self.release(g, pack(orp, false));
                        self.release(g, pack(orp, false));
                        self.release(g, old_rrl);
                        self.release(g, old_rr_w);
                        self.release(g, old_r);
                        return;
                    }
                    self.release(g, pack(orr, false));
                }
                self.release(g, old_rrl);
                self.release(g, old_rr_w);
                self.release(g, old_r);
            } else {
                // SAFETY: sentinel word.
                let old_l = unsafe { self.load_ptr(g, &self.sr.l) }; // ref: olp
                let olp = ptr_of(old_l);
                if deleted_of(old_l) {
                    if self.strategy.dcas(
                        &self.sl.r,
                        &self.sr.l,
                        old_r,
                        old_l,
                        pack(self.srp(), false),
                        pack(self.slp(), false),
                    ) {
                        self.break_cycle(g, olp, orp);
                        self.release(g, pack(orp, false));
                        self.release(g, pack(olp, false));
                        self.release(g, old_l);
                        self.release(g, old_rr_w);
                        self.release(g, old_r);
                        return;
                    }
                }
                self.release(g, old_l);
                self.release(g, old_rr_w);
                self.release(g, old_r);
            }
        }
    }

    /// Quiescent structural snapshot, comparable with
    /// [`ListLayout`](crate::list::ListLayout).
    pub fn layout(&self) -> crate::list::ListLayout {
        let mut cells = Vec::new();
        let mut cur = ptr_of(self.strategy.load(&self.sl.r));
        while cur != self.srp() {
            // SAFETY: quiescent per the method contract.
            let v = self.strategy.load(unsafe { &(*cur).value });
            cells.push((v != NULL).then_some(v));
            cur = ptr_of(self.strategy.load(unsafe { &(*cur).r }));
        }
        crate::list::ListLayout {
            cells,
            left_deleted: deleted_of(self.strategy.load(&self.sl.r)),
            right_deleted: deleted_of(self.strategy.load(&self.sr.l)),
        }
    }

    /// Census and reclamation-audit diagnostics (quiescent).
    pub fn stats(&self) -> LfrcStats {
        LfrcStats {
            linked: self.layout().cells.len(),
            allocated: self.audit.allocated.load(Ordering::Relaxed),
            // The deque's own handle is the `- 1`.
            outstanding: Arc::strong_count(&self.audit) as u64 - 1,
        }
    }
}

impl<V: WordValue, S: DcasStrategy> Drop for RawLfrcListDeque<V, S> {
    fn drop(&mut self) {
        // Exclusive access: free still-linked nodes (and their values)
        // directly. Nodes already dead went through `retire` and are
        // freed by the backend — their dtors only touch the node box
        // and the `Arc`-kept audit block, both of which outlive us.
        // SAFETY: quiescence.
        unsafe {
            let mut cur = ptr_of(self.sl.r.unsync_load_shared());
            while cur != self.srp() {
                let next = ptr_of((*cur).r.unsync_load_shared());
                let v = (*cur).value.unsync_load_shared();
                if v != NULL {
                    V::drop_encoded(v);
                }
                free_node_now(self.alloc, cur as *mut Node as *mut u8);
                cur = next;
            }
        }
    }
}

/// The GC-free unbounded deque: Section 4's algorithm under the LFRC
/// transformation, for arbitrary element types.
pub struct LfrcListDeque<T: Send, S: DcasStrategy = HarrisMcas> {
    raw: RawLfrcListDeque<Boxed<T>, S>,
}

impl<T: Send, S: DcasStrategy> Default for LfrcListDeque<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send, S: DcasStrategy> LfrcListDeque<T, S> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        LfrcListDeque { raw: RawLfrcListDeque::new() }
    }

    /// Creates an empty deque with an explicit node-allocation arm.
    pub fn with_node_alloc(alloc: NodeAlloc) -> Self {
        LfrcListDeque { raw: RawLfrcListDeque::with_node_alloc(alloc) }
    }

    /// The DCAS strategy instance (for counter snapshots).
    pub fn strategy(&self) -> &S {
        self.raw.strategy()
    }

    /// Appends `v` at the right end. Never fails.
    pub fn push_right(&self, v: T) -> Result<(), Full<T>> {
        self.raw
            .push_right(Boxed::new(v))
            .map_err(|Full(b)| Full(b.into_inner()))
    }

    /// Appends `v` at the left end. Never fails.
    pub fn push_left(&self, v: T) -> Result<(), Full<T>> {
        self.raw
            .push_left(Boxed::new(v))
            .map_err(|Full(b)| Full(b.into_inner()))
    }

    /// Removes and returns the rightmost value, or `None` if empty.
    pub fn pop_right(&self) -> Option<T> {
        self.raw.pop_right().map(Boxed::into_inner)
    }

    /// Removes and returns the leftmost value, or `None` if empty.
    pub fn pop_left(&self) -> Option<T> {
        self.raw.pop_left().map(Boxed::into_inner)
    }

    /// Quiescent layout snapshot.
    pub fn layout(&self) -> crate::list::ListLayout {
        self.raw.layout()
    }

    /// Census and reclamation-audit diagnostics.
    pub fn stats(&self) -> LfrcStats {
        self.raw.stats()
    }
}

impl<T: Send, S: DcasStrategy> ConcurrentDeque<T> for LfrcListDeque<T, S> {
    fn push_right(&self, v: T) -> Result<(), Full<T>> {
        LfrcListDeque::push_right(self, v)
    }

    fn push_left(&self, v: T) -> Result<(), Full<T>> {
        LfrcListDeque::push_left(self, v)
    }

    fn pop_right(&self) -> Option<T> {
        LfrcListDeque::pop_right(self)
    }

    fn pop_left(&self) -> Option<T> {
        LfrcListDeque::pop_left(self)
    }

    fn impl_name(&self) -> &'static str {
        "list-lfrc-dcas"
    }
}
