//! A type-stable node pool for the LFRC deque.
//!
//! Lock-free reference counting requires that a node's memory remain
//! valid (as a `Node`) even after the node is logically freed: a slow
//! thread may still perform the `DCAS(ptr_slot, &node.rc, ...)` of
//! `LFRCLoad` against it, and that DCAS must be able to *read* the count
//! word — it will simply fail if the pointer slot no longer targets the
//! node. The pool therefore never returns memory to the allocator while
//! the deque is alive: freed nodes go to a freelist and are reused only
//! as nodes.
//!
//! (This matches the PODC 2001 LFRC paper's assumption, and echoes the
//! original paper's footnote 2: "the problem of implementing a
//! non-blocking storage allocator is not addressed in this paper". The
//! freelist is mutex-protected for simplicity; allocation is not the
//! algorithm under study.)

use parking_lot::Mutex;

use super::Node;

const CHUNK: usize = 64;

pub(super) struct NodePool {
    /// Owning storage; boxed slices never move, so node addresses are
    /// stable for the pool's lifetime.
    chunks: Mutex<Vec<Box<[Node]>>>,
    free: Mutex<Vec<*mut Node>>,
}

// SAFETY: the raw pointers refer to memory owned by `chunks`; access
// discipline is enforced by the reference-counting protocol above.
unsafe impl Send for NodePool {}
unsafe impl Sync for NodePool {}

impl NodePool {
    pub(super) fn new() -> Self {
        NodePool { chunks: Mutex::new(Vec::new()), free: Mutex::new(Vec::new()) }
    }

    /// Takes a node from the freelist, growing the pool by a chunk when
    /// empty. Field contents are unspecified; the caller reinitializes.
    pub(super) fn alloc(&self) -> *mut Node {
        if let Some(n) = self.free.lock().pop() {
            return n;
        }
        let chunk: Box<[Node]> = (0..CHUNK).map(|_| Node::new_blank()).collect();
        let base = chunk.as_ptr() as *mut Node;
        {
            let mut chunks = self.chunks.lock();
            let mut free = self.free.lock();
            for i in 1..CHUNK {
                // SAFETY: in-bounds within the chunk we just allocated.
                free.push(unsafe { base.add(i) });
            }
            chunks.push(chunk);
        }
        base
    }

    /// Returns a node whose reference count reached zero.
    ///
    /// # Safety
    ///
    /// `n` must come from this pool's `alloc` and be unreachable (rc 0).
    pub(super) unsafe fn dealloc(&self, n: *mut Node) {
        self.free.lock().push(n);
    }

    /// Number of nodes currently on the freelist (diagnostics).
    pub(super) fn free_count(&self) -> usize {
        self.free.lock().len()
    }

    /// Total nodes ever allocated (diagnostics).
    pub(super) fn total_count(&self) -> usize {
        self.chunks.lock().len() * CHUNK
    }
}
