//! Tests for the LFRC (GC-free) list deque. Beyond functional
//! correctness, these verify the reference-counting discipline itself:
//! after draining to quiescence and flushing the reclamation backend,
//! every node ever allocated must have been freed (drop-count audit
//! balances — no leaks, including the two-null mutual-reference cycle).

use dcas::{GlobalLock, GlobalSeqLock, HarrisMcas, HarrisMcasHazard, Reclaimer, StripedLock};

use super::{LfrcListDeque, RawLfrcListDeque};
use crate::value::WordValue;

/// Flushes the strategy's reclamation backend until the deque's
/// drop-count audit balances (`outstanding - linked == 0` among
/// reclaimable nodes; here callers have drained, so `outstanding == 0`).
/// Panics if it never does.
fn assert_audit_balances<V: WordValue, S: dcas::DcasStrategy>(d: &RawLfrcListDeque<V, S>) {
    for _ in 0..1_000 {
        let stats = d.stats();
        if stats.outstanding == 0 {
            return;
        }
        S::Reclaimer::flush();
        std::thread::yield_now();
    }
    panic!("drop-count audit never balanced: {:?}", d.stats());
}

#[test]
fn paper_running_example() {
    let d = RawLfrcListDeque::<u32, GlobalSeqLock>::new();
    d.push_right(1).unwrap();
    d.push_left(2).unwrap();
    d.push_right(3).unwrap();
    assert_eq!(d.pop_left(), Some(2));
    assert_eq!(d.pop_left(), Some(1));
    assert_eq!(d.pop_left(), Some(3));
    assert_eq!(d.pop_left(), None);
}

#[test]
fn fifo_lifo_semantics_all_strategies() {
    fn run<S: dcas::DcasStrategy>() {
        let d = RawLfrcListDeque::<u32, S>::new();
        for i in 0..30 {
            d.push_right(i).unwrap();
        }
        for i in 0..15 {
            assert_eq!(d.pop_left(), Some(i), "strategy {}", S::NAME);
        }
        for i in (15..30).rev() {
            assert_eq!(d.pop_right(), Some(i), "strategy {}", S::NAME);
        }
        assert_eq!(d.pop_left(), None);
    }
    run::<GlobalLock>();
    run::<GlobalSeqLock>();
    run::<StripedLock>();
    run::<HarrisMcas>();
    run::<HarrisMcasHazard>();
}

#[test]
fn nodes_are_recycled_not_leaked() {
    let d = RawLfrcListDeque::<u32, GlobalSeqLock>::new();
    for round in 0..50 {
        for i in 0..20 {
            d.push_right(round * 100 + i).unwrap();
        }
        for _ in 0..20 {
            assert!(d.pop_left().is_some());
        }
        // Flush lingering logically-deleted nodes.
        assert_eq!(d.pop_left(), None);
        assert_eq!(d.pop_right(), None);
    }
    let stats = d.stats();
    assert_eq!(stats.linked, 0);
    // Allocation happens exactly once per push (outside the retry loop).
    assert_eq!(stats.allocated, 1000);
    // Every allocated node reaches the backend and is freed: the
    // drop-count audit balances.
    assert_audit_balances(&d);
}

#[test]
fn two_null_cycle_is_broken_and_reclaimed() {
    // The regression test for the dead two-node reference cycle: pop one
    // element from each side of a two-element deque, trigger the double
    // splice, and verify both nodes are retired and freed.
    let d = RawLfrcListDeque::<u32, GlobalLock>::new();
    for _ in 0..100 {
        d.push_left(1).unwrap();
        d.push_right(2).unwrap();
        assert_eq!(d.pop_right(), Some(2));
        assert_eq!(d.pop_left(), Some(1));
        // Both nodes are now logically deleted; the next op runs the
        // two-null double splice.
        assert_eq!(d.pop_right(), None);
        assert_eq!(d.layout().cells, vec![]);
    }
    assert_eq!(d.stats().allocated, 200);
    assert_audit_balances(&d);
}

#[test]
fn layout_matches_epoch_variant() {
    let a = crate::list::RawListDeque::<u32, GlobalLock>::new();
    let b = RawLfrcListDeque::<u32, GlobalLock>::new();
    let ops: Vec<(u8, u32)> = vec![
        (0, 1),
        (1, 2),
        (0, 3),
        (2, 0),
        (3, 0),
        (1, 4),
        (2, 0),
        (2, 0),
        (3, 0),
        (3, 0),
        (0, 5),
    ];
    for (op, v) in ops {
        match op {
            0 => {
                a.push_right(v).unwrap();
                b.push_right(v).unwrap();
            }
            1 => {
                a.push_left(v).unwrap();
                b.push_left(v).unwrap();
            }
            2 => assert_eq!(a.pop_right(), b.pop_right()),
            _ => assert_eq!(a.pop_left(), b.pop_left()),
        }
        let (la, lb) = (a.layout(), b.layout());
        assert_eq!(la.cells, lb.cells);
        assert_eq!(la.left_deleted, lb.left_deleted);
        assert_eq!(la.right_deleted, lb.right_deleted);
    }
}

/// The ISSUE-mandated regression for the reclamation migration: under
/// concurrent churn on each MCAS backend (epoch-pinned and hazard),
/// popped values are conserved AND the drop-count audit balances — every
/// node the deque ever allocated is freed by the pluggable [`Reclaimer`]
/// once the backend drains, with nothing left outstanding.
#[test]
fn reclaimer_audit_balances_across_backends() {
    fn churn<S: dcas::DcasStrategy>() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let d = Arc::new(RawLfrcListDeque::<u32, S>::new());
        let done = Arc::new(AtomicBool::new(false));
        let pushes_per_thread = 2_000u32;
        let pushers = 2u32;

        let popped_sum = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..2 {
                let d = Arc::clone(&d);
                let done = Arc::clone(&done);
                handles.push(s.spawn(move || {
                    let mut sum = 0u64;
                    loop {
                        let v = if t == 0 { d.pop_left() } else { d.pop_right() };
                        match v {
                            Some(v) => sum += v as u64,
                            None => {
                                if done.load(Ordering::Acquire) {
                                    return sum;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                }));
            }
            std::thread::scope(|inner| {
                for t in 0..pushers {
                    let d = Arc::clone(&d);
                    inner.spawn(move || {
                        for i in 0..pushes_per_thread {
                            let v = t * pushes_per_thread + i;
                            if v.is_multiple_of(2) {
                                d.push_right(v).unwrap();
                            } else {
                                d.push_left(v).unwrap();
                            }
                        }
                    });
                }
            });
            done.store(true, Ordering::Release);
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        });

        let mut residue = 0u64;
        while let Some(v) = d.pop_left() {
            residue += v as u64;
        }
        let total = u64::from(pushers * pushes_per_thread);
        assert_eq!(popped_sum + residue, (0..total).sum::<u64>(), "{}", S::NAME);
        // Quiesce (flush logically-deleted stragglers) and audit.
        assert_eq!(d.pop_left(), None);
        assert_eq!(d.pop_right(), None);
        let stats = d.stats();
        assert_eq!(stats.linked, 0, "{}", S::NAME);
        assert_eq!(stats.allocated, total, "{}", S::NAME);
        assert_audit_balances(&d);
    }
    churn::<HarrisMcas>();
    churn::<HarrisMcasHazard>();
}

#[test]
fn typed_deque_and_drop_with_values() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    #[derive(Debug)]
    struct Probe;
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    {
        let d: LfrcListDeque<Probe, GlobalLock> = LfrcListDeque::new();
        for _ in 0..5 {
            d.push_right(Probe).unwrap();
        }
        drop(d.pop_left().unwrap());
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
    assert_eq!(DROPS.load(Ordering::SeqCst), 5);
}

#[test]
fn value_words_roundtrip() {
    let d = RawLfrcListDeque::<u32, GlobalLock>::new();
    d.push_right(7).unwrap();
    assert_eq!(d.layout().cells, vec![Some(7u32.encode())]);
    assert_eq!(d.pop_right(), Some(7));
}

mod properties {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[derive(Debug, Clone)]
    enum Op {
        PushRight(u32),
        PushLeft(u32),
        PopRight,
        PopLeft,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u32..1000).prop_map(Op::PushRight),
            (0u32..1000).prop_map(Op::PushLeft),
            Just(Op::PopRight),
            Just(Op::PopLeft),
        ]
    }

    proptest! {
        #[test]
        fn matches_vecdeque_model(
            ops in proptest::collection::vec(op_strategy(), 0..200),
        ) {
            let d = RawLfrcListDeque::<u32, GlobalSeqLock>::new();
            let mut model: VecDeque<u32> = VecDeque::new();
            for op in &ops {
                match *op {
                    Op::PushRight(v) => {
                        d.push_right(v).unwrap();
                        model.push_back(v);
                    }
                    Op::PushLeft(v) => {
                        d.push_left(v).unwrap();
                        model.push_front(v);
                    }
                    Op::PopRight => prop_assert_eq!(d.pop_right(), model.pop_back()),
                    Op::PopLeft => prop_assert_eq!(d.pop_left(), model.pop_front()),
                }
            }
            prop_assert_eq!(d.layout().live_values(), model.len());
        }

        #[test]
        fn no_leaks_after_any_op_sequence(
            ops in proptest::collection::vec(op_strategy(), 0..150),
        ) {
            let d = RawLfrcListDeque::<u32, GlobalLock>::new();
            let mut pushes = 0u64;
            for op in &ops {
                match *op {
                    Op::PushRight(v) => { d.push_right(v).unwrap(); pushes += 1; }
                    Op::PushLeft(v) => { d.push_left(v).unwrap(); pushes += 1; }
                    Op::PopRight => { d.pop_right(); }
                    Op::PopLeft => { d.pop_left(); }
                }
            }
            // Drain and quiesce.
            while d.pop_left().is_some() {}
            let _ = d.pop_right();
            let _ = d.pop_left();
            let stats = d.stats();
            prop_assert_eq!(stats.linked, 0);
            prop_assert_eq!(stats.allocated, pushes);
            assert_audit_balances(&d);
        }
    }
}

/// Both node-allocation arms (page pool and seed-compatible `Box`)
/// behind the same deque semantics: interleaved two-ended traffic
/// drains to the exact push count on each arm. Named `pooled_` so CI's
/// allocator suite can select the per-family A/B units.
#[test]
fn pooled_and_boxed_arms_agree() {
    for pooled in [false, true] {
        let d = LfrcListDeque::<u32>::with_node_alloc(super::node_alloc(pooled));
        for i in 0..200u32 {
            if i % 2 == 0 {
                d.push_right(i).unwrap();
            } else {
                d.push_left(i).unwrap();
            }
        }
        let mut got = 0;
        while d.pop_left().is_some() || d.pop_right().is_some() {
            got += 1;
        }
        assert_eq!(got, 200, "pooled={pooled}");
    }
}
