//! Edge-case tests for [`TieredDeque`]: the seams between the private
//! tier, the staging buffer, and the shared linearizable level.
//!
//! The interesting states all live at tier boundaries — a ring exactly
//! at its spill threshold, a refill racing a thief, an empty tier
//! falling through to the shared level — and a property test checks the
//! whole single-owner surface against a sequential `VecDeque` oracle.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

use dcas_baselines::MutexDeque;
use dcas_deque::{ConcurrentDeque, ListDeque, MAX_BATCH};
use dcas_workstealing::{ChaseLevTier, TieredDeque, RING_CAP};
use proptest::prelude::*;

type Shared = ListDeque<u64>;
type VecTiered = TieredDeque<u64, Shared>;
type ClTiered = TieredDeque<u64, Shared, ChaseLevTier<u64>>;

fn vec_tiered() -> VecTiered {
    TieredDeque::new(ListDeque::new())
}

fn cl_tiered() -> ClTiered {
    TieredDeque::with_tier(ListDeque::new())
}

// ---------------------------------------------------------------------
// Deterministic boundary cases
// ---------------------------------------------------------------------

#[test]
fn empty_tier_pop_falls_through_to_shared() {
    // Work sitting only in the shared level (as after a cross-worker
    // steal_half re-queue... or here, planted directly) must be
    // reachable through `pop` via the refill path.
    let d = vec_tiered();
    for v in 0..10u64 {
        d.shared().push_right(v).unwrap();
    }
    // Refill pulls a chunk from the shared right end; pop order within
    // what was a right-end run is newest-first (LIFO), and conservation
    // is exact.
    let mut got = Vec::new();
    while let Some(v) = d.pop() {
        got.push(v);
    }
    got.sort_unstable();
    assert_eq!(got, (0..10).collect::<Vec<_>>());
}

#[test]
fn capacity_boundary_spill_preserves_oldest_first() {
    // Pushing one past RING_CAP must spill exactly one MAX_BATCH chunk
    // of the *oldest* values to the shared level, leaving the newest in
    // the ring.
    let d = vec_tiered();
    for v in 0..(RING_CAP as u64 + 1) {
        d.push(v).unwrap();
    }
    // The shared level now holds the oldest chunk, oldest at the left.
    let spilled = d.shared().pop_left_n(MAX_BATCH);
    assert_eq!(spilled, (0..MAX_BATCH as u64).collect::<Vec<_>>());
    assert!(d.shared().pop_left().is_none(), "exactly one chunk spills");
    // Owner still pops the rest LIFO.
    assert_eq!(d.pop(), Some(RING_CAP as u64));
}

#[test]
fn chaselev_tier_steal_without_spill() {
    // The whole point of the Chase-Lev tier: work is stealable *before*
    // any spill. Oldest value first, provenance counted as private.
    let d = cl_tiered();
    for v in 0..4u64 {
        d.push(v).unwrap();
    }
    assert_eq!(d.steal(), Some(0));
    assert_eq!(d.steal(), Some(1));
    let (private, shared) = d.tier_steals();
    assert_eq!((private, shared), (2, 0));
    assert_eq!(d.pop(), Some(3), "owner end untouched by steals");
}

#[test]
fn vecring_tier_is_not_stealable() {
    let d = vec_tiered();
    for v in 0..4u64 {
        d.push(v).unwrap();
    }
    assert_eq!(d.steal(), None, "ring-only work is invisible to thieves");
    // flush_local publishes the ring to the shared level (returning only
    // rejects — none on an unbounded shared); then thieves can see it.
    assert!(d.flush_local().is_empty());
    assert_eq!(d.steal(), Some(0));
}

#[test]
fn steal_half_prefers_shared_then_private() {
    let d = cl_tiered();
    let n = (RING_CAP + MAX_BATCH) as u64;
    for v in 0..n {
        d.push(v).unwrap();
    }
    // At least one chunk spilled; the first steal_half must come from
    // the shared level (oldest work), later ones from the private tier.
    let first = d.steal_half();
    assert!(!first.is_empty());
    assert_eq!(first[0], 0, "shared level holds the oldest value");
    let mut seen: HashSet<u64> = first.into_iter().collect();
    loop {
        let batch = d.steal_half();
        if batch.is_empty() {
            break;
        }
        for v in batch {
            assert!(seen.insert(v), "value {v} delivered twice");
        }
    }
    let (private, shared) = d.tier_steals();
    assert!(private > 0, "some steals must hit the private tier");
    assert!(shared > 0, "some steals must hit the shared level");
    assert_eq!(private + shared, seen.len() as u64);
    assert_eq!(seen.len() as u64, n, "every value stolen exactly once");
}

#[test]
fn steal_races_inflight_refill_conserves_values() {
    // One owner cycles values through push/pop (triggering spills and
    // refills at the ring boundary) while a thief steals continuously.
    // Every value must come out exactly once, across both exits.
    for trial in 0..20u64 {
        let d = cl_tiered();
        let n = 4 * RING_CAP as u64;
        let stop = AtomicBool::new(false);
        let start = Barrier::new(2);
        let (owner_got, thief_got) = std::thread::scope(|s| {
            let owner = s.spawn(|| {
                let mut got = Vec::new();
                start.wait();
                for v in 0..n {
                    d.push(v + trial * n).unwrap();
                    // Pop roughly half back, creating refill traffic.
                    if v % 2 == 0 {
                        if let Some(x) = d.pop() {
                            got.push(x);
                        }
                    }
                }
                // Drain what's left from the owner end.
                while let Some(x) = d.pop() {
                    got.push(x);
                }
                stop.store(true, Ordering::Release);
                got
            });
            let thief = s.spawn(|| {
                let mut got = Vec::new();
                start.wait();
                while !stop.load(Ordering::Acquire) {
                    got.extend(d.steal_half());
                }
                got
            });
            (owner.join().unwrap(), thief.join().unwrap())
        });
        // Post-join sweep: values can be parked in the shared level or
        // the tier after the owner's last pop returned None (a thief
        // may have re-ordered the race).
        let mut rest = d.flush_local();
        loop {
            let batch = d.steal_half();
            if batch.is_empty() {
                break;
            }
            rest.extend(batch);
        }
        let mut all: Vec<u64> = owner_got;
        all.extend(thief_got);
        all.extend(rest);
        all.sort_unstable();
        let expect: Vec<u64> = (trial * n..(trial + 1) * n).collect();
        assert_eq!(all, expect, "trial {trial}: conservation violated");
    }
}

// ---------------------------------------------------------------------
// Property test: single-owner surface vs a sequential oracle
// ---------------------------------------------------------------------

/// With no thieves, a `TieredDeque` is observationally a plain LIFO
/// stack for the owner, whatever the internal spill/refill traffic.
/// The oracle is a sequential `VecDeque` used stack-wise.
#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
    /// Drain the deque through `flush_local` + shared pops and compare
    /// the *set* of survivors, then stop (terminal op).
    FlushCompare,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Unweighted union: repeat arms to bias (4 push : 2 pop : 1 flush).
    prop_oneof![
        any::<u64>().prop_map(Op::Push),
        any::<u64>().prop_map(Op::Push),
        any::<u64>().prop_map(Op::Push),
        any::<u64>().prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::FlushCompare),
    ]
}

fn run_against_oracle<P>(d: &TieredDeque<u64, MutexDeque<u64>, P>, ops: &[Op])
where
    P: dcas_workstealing::PrivateTier<u64>,
{
    let mut oracle: Vec<u64> = Vec::new();
    for op in ops {
        match op {
            Op::Push(v) => {
                d.push(*v).unwrap();
                oracle.push(*v);
            }
            Op::Pop => {
                // Single-owner, no thieves: pop must agree with LIFO.
                assert_eq!(d.pop(), oracle.pop());
            }
            Op::FlushCompare => {
                let mut rest = d.flush_local();
                rest.extend(std::iter::from_fn(|| d.shared().pop_left()));
                rest.sort_unstable();
                oracle.sort_unstable();
                assert_eq!(rest, oracle, "drain mismatch");
                return;
            }
        }
    }
    // Final conservation check even without an explicit flush op.
    let mut rest = d.flush_local();
    rest.extend(std::iter::from_fn(|| d.shared().pop_left()));
    rest.sort_unstable();
    oracle.sort_unstable();
    assert_eq!(rest, oracle, "final drain mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vecring_matches_sequential_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..400)
    ) {
        let d: TieredDeque<u64, MutexDeque<u64>> = TieredDeque::new(MutexDeque::new());
        run_against_oracle(&d, &ops);
    }

    #[test]
    fn chaselev_tier_matches_sequential_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..400)
    ) {
        let d: TieredDeque<u64, MutexDeque<u64>, ChaseLevTier<u64>> =
            TieredDeque::with_tier(MutexDeque::new());
        run_against_oracle(&d, &ops);
    }
}
