//! Chase–Lev buffer growth under concurrent steals.
//!
//! The risky moment in a growable Chase–Lev deque is the buffer swap: a
//! thief that loaded the old buffer pointer may still be mid-`read`
//! while the owner publishes the doubled copy and retires the old
//! generation. This test forces that window repeatedly — the deque
//! starts at capacity 2 and the owner outruns the thieves in bursts, so
//! growth fires many times while steals are in flight — then audits:
//!
//! * at least two growths actually happened under fire (a test that
//!   never grows proves nothing),
//! * the retired-buffer ledger matches the capacity arithmetic
//!   (`initial << growths == final capacity` — nothing freed early,
//!   nothing retired twice),
//! * every pushed value comes out exactly once across thieves and
//!   owner (no element lost to a torn copy or a stale-buffer read).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use dcas_workstealing::{ChaseLev, ChaseLevSteal as Steal};

#[test]
fn growth_under_concurrent_steal_conserves_and_retires() {
    const TOTAL: u64 = 40_000;
    const BURST: u64 = 512; // >> initial capacity, so bursts force growth
    const THIEVES: usize = 2;
    const INITIAL_CAP: usize = 2;

    let d = ChaseLev::with_min_capacity(INITIAL_CAP);
    let taken: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..THIEVES {
            s.spawn(|| {
                let mut got = Vec::new();
                loop {
                    match d.steal() {
                        Steal::Stolen(v) => got.push(v),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::SeqCst) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                taken.lock().unwrap().extend(got);
            });
        }

        // Owner: push in bursts that exceed the current capacity (so the
        // live window [top, bottom) overflows and growth fires while the
        // thieves are looping), with a sprinkle of owner pops to keep the
        // bottom end contended too.
        let mut kept = Vec::new();
        let mut next = 0u64;
        while next < TOTAL {
            for _ in 0..BURST.min(TOTAL - next) {
                d.push(next);
                next += 1;
            }
            if let Some(v) = d.pop() {
                kept.push(v);
            }
            // Let the thieves at the backlog between bursts.
            std::thread::yield_now();
        }
        while let Some(v) = d.pop() {
            kept.push(v);
        }
        done.store(true, Ordering::SeqCst);
        taken.lock().unwrap().extend(kept);
    });

    // Retirement audit (owner side, now quiescent): growth must have
    // fired at least twice under fire, and the retired ledger must
    // account for every generation — after g doublings from INITIAL_CAP
    // the live buffer holds exactly INITIAL_CAP << g slots.
    let growths = d.retired_buffers();
    assert!(growths >= 2, "only {growths} growths — burst never overflowed the buffer");
    assert_eq!(
        d.capacity(),
        INITIAL_CAP << growths,
        "capacity does not match {growths} retirements from {INITIAL_CAP}"
    );

    // Conservation: exactly 0..TOTAL, each value once.
    let mut all = taken.into_inner().unwrap();
    assert_eq!(all.len() as u64, TOTAL, "lost or duplicated values under growth");
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len() as u64, TOTAL, "duplicated values under growth");
    assert_eq!(all.first(), Some(&0));
    assert_eq!(all.last(), Some(&(TOTAL - 1)));
}
