//! The work-deque abstraction and its implementations.

use std::sync::atomic::{AtomicUsize, Ordering};

use dcas::HarrisMcas;
use dcas_baselines::{AbpDeque, MutexDeque, Steal};
use dcas_deque::value::{Boxed, WordValue};
use dcas_deque::{ArrayDeque, ConcurrentDeque, ListDeque, MAX_BATCH};

use crate::scheduler::Task;

/// Result of a steal attempt.
pub enum StealOutcome {
    /// The victim's deque was observed empty.
    Empty,
    /// Lost a race; try another victim.
    Retry,
    /// A task was stolen.
    Stolen(Task),
}

/// A per-worker deque of tasks. `push`/`pop` are called only by the
/// owning worker; `steal`/`steal_half` by anyone.
pub trait WorkDeque: Send + Sync + 'static {
    /// Creates a deque able to hold at least `capacity` tasks (bounded
    /// implementations may refuse pushes beyond it).
    fn with_capacity(capacity: usize) -> Self;
    /// Owner: pushes a task; returns it back if the deque is full (the
    /// caller then runs it inline).
    fn push(&self, t: Task) -> Result<(), Task>;
    /// Owner: pops the most recently pushed task (LIFO, for locality).
    fn pop(&self) -> Option<Task>;
    /// Thief: takes the oldest task (FIFO, largest work first).
    fn steal(&self) -> StealOutcome;
    /// Implementation name for reporting.
    fn name() -> &'static str;

    /// Thief: takes up to roughly **half** of the victim's tasks, oldest
    /// first, amortising the steal's synchronisation over several tasks
    /// (the "steal-half" policy of Hendler & Shavit's non-blocking
    /// steal-half work queues).
    ///
    /// Returns stolen tasks oldest-first; empty means nothing was taken
    /// (empty victim or lost race). The default degenerates to a single
    /// [`steal`](Self::steal); the batched deques override it with one
    /// chunk-atomic multi-pop.
    fn steal_half(&self) -> Vec<Task> {
        match self.steal() {
            StealOutcome::Stolen(t) => vec![t],
            _ => Vec::new(),
        }
    }

    /// Owner: pushes a batch of tasks in order, returning any rejected
    /// tail (bounded implementations at capacity; the caller runs those
    /// inline). Used by the scheduler to re-queue the surplus of a
    /// [`steal_half`](Self::steal_half).
    fn push_batch(&self, tasks: Vec<Task>) -> Vec<Task> {
        let mut it = tasks.into_iter();
        let mut rejected = Vec::new();
        while let Some(t) = it.next() {
            if let Err(t) = self.push(t) {
                rejected.push(t);
                rejected.extend(it);
                break;
            }
        }
        rejected
    }
}

/// Best-effort size hint maintained *outside* the deque: the owner and
/// thieves bump it around their operations, so it lags reality by the
/// operations in flight. That is fine — `steal_half` only needs an
/// estimate to size its batch, and clamps to `1..=MAX_BATCH` anyway.
struct LenHint(AtomicUsize);

impl LenHint {
    fn new() -> Self {
        LenHint(AtomicUsize::new(0))
    }

    fn add(&self, n: usize) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn sub(&self, n: usize) {
        // Saturating: a racing pop may decrement before the matching
        // push's increment lands.
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(n))
        });
    }

    /// Batch size for stealing about half the (estimated) content.
    fn half_batch(&self) -> usize {
        (self.0.load(Ordering::Relaxed) / 2).clamp(1, MAX_BATCH)
    }
}

/// Work deque over the paper's unbounded linked-list deque.
pub struct ListWorkDeque {
    inner: ListDeque<Task, HarrisMcas>,
    len: LenHint,
}

impl WorkDeque for ListWorkDeque {
    fn with_capacity(_capacity: usize) -> Self {
        ListWorkDeque { inner: ListDeque::new(), len: LenHint::new() }
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        self.inner.push_right(t).map_err(|e| e.into_inner())?;
        self.len.add(1);
        Ok(())
    }

    fn pop(&self) -> Option<Task> {
        let t = self.inner.pop_right()?;
        self.len.sub(1);
        Some(t)
    }

    fn steal(&self) -> StealOutcome {
        match self.inner.pop_left() {
            Some(t) => {
                self.len.sub(1);
                StealOutcome::Stolen(t)
            }
            None => StealOutcome::Empty,
        }
    }

    fn steal_half(&self) -> Vec<Task> {
        let tasks = self.inner.pop_left_n(self.len.half_batch());
        self.len.sub(tasks.len());
        tasks
    }

    fn push_batch(&self, tasks: Vec<Task>) -> Vec<Task> {
        let n = tasks.len();
        match self.inner.push_right_n(tasks) {
            Ok(()) => {
                self.len.add(n);
                Vec::new()
            }
            Err(full) => {
                let rest = full.into_inner();
                self.len.add(n - rest.len());
                rest
            }
        }
    }

    fn name() -> &'static str {
        "list-dcas"
    }
}

/// Work deque over the paper's bounded array deque.
pub struct ArrayWorkDeque {
    inner: ArrayDeque<Task, HarrisMcas>,
    len: LenHint,
}

impl WorkDeque for ArrayWorkDeque {
    fn with_capacity(capacity: usize) -> Self {
        ArrayWorkDeque { inner: ArrayDeque::new(capacity.max(1)), len: LenHint::new() }
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        self.inner.push_right(t).map_err(|e| e.into_inner())?;
        self.len.add(1);
        Ok(())
    }

    fn pop(&self) -> Option<Task> {
        let t = self.inner.pop_right()?;
        self.len.sub(1);
        Some(t)
    }

    fn steal(&self) -> StealOutcome {
        match self.inner.pop_left() {
            Some(t) => {
                self.len.sub(1);
                StealOutcome::Stolen(t)
            }
            None => StealOutcome::Empty,
        }
    }

    fn steal_half(&self) -> Vec<Task> {
        let tasks = self.inner.pop_left_n(self.len.half_batch());
        self.len.sub(tasks.len());
        tasks
    }

    fn push_batch(&self, tasks: Vec<Task>) -> Vec<Task> {
        let n = tasks.len();
        match self.inner.push_right_n(tasks) {
            Ok(()) => {
                self.len.add(n);
                Vec::new()
            }
            Err(full) => {
                let rest = full.into_inner();
                self.len.add(n - rest.len());
                rest
            }
        }
    }

    fn name() -> &'static str {
        "array-dcas"
    }
}

/// Work deque over the CAS-only ABP deque (the baseline built for this
/// exact access pattern).
pub struct AbpWorkDeque(AbpDeque);

impl WorkDeque for AbpWorkDeque {
    fn with_capacity(capacity: usize) -> Self {
        AbpWorkDeque(AbpDeque::new(capacity.max(1)))
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        let w = Boxed::new(t).encode();
        if self.0.push_bottom(w) {
            Ok(())
        } else {
            // SAFETY: `w` was just encoded and rejected; we reclaim it.
            Err(unsafe { Boxed::<Task>::decode(w) }.into_inner())
        }
    }

    fn pop(&self) -> Option<Task> {
        // SAFETY: words in the deque are exactly the `Boxed<Task>`
        // encodings pushed above, consumed once.
        self.0.pop_bottom().map(|w| unsafe { Boxed::<Task>::decode(w) }.into_inner())
    }

    fn steal(&self) -> StealOutcome {
        match self.0.steal() {
            // SAFETY: as above.
            Steal::Success(w) => {
                StealOutcome::Stolen(unsafe { Boxed::<Task>::decode(w) }.into_inner())
            }
            Steal::Empty => StealOutcome::Empty,
            Steal::Abort => StealOutcome::Retry,
        }
    }

    fn name() -> &'static str {
        "abp-cas"
    }
}

impl Drop for AbpWorkDeque {
    fn drop(&mut self) {
        // Reclaim any tasks left behind (scheduler aborts, panics).
        while let Some(w) = self.0.pop_bottom() {
            // SAFETY: as in `pop`.
            drop(unsafe { Boxed::<Task>::decode(w) });
        }
    }
}

/// Work deque over the lock-based baseline.
pub struct MutexWorkDeque(MutexDeque<Task>);

impl WorkDeque for MutexWorkDeque {
    fn with_capacity(_capacity: usize) -> Self {
        MutexWorkDeque(MutexDeque::new())
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        ConcurrentDeque::push_right(&self.0, t).map_err(|e| e.into_inner())
    }

    fn pop(&self) -> Option<Task> {
        ConcurrentDeque::pop_right(&self.0)
    }

    fn steal(&self) -> StealOutcome {
        match ConcurrentDeque::pop_left(&self.0) {
            Some(t) => StealOutcome::Stolen(t),
            None => StealOutcome::Empty,
        }
    }

    fn name() -> &'static str {
        "mutex"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> Task {
        Box::new(|_| {})
    }

    /// All tasks pushed are retrieved exactly once through a mix of
    /// `steal_half` and owner pops, across every implementation.
    fn steal_half_conserves<D: WorkDeque>() {
        let d = D::with_capacity(64);
        for _ in 0..20 {
            assert!(d.push(noop()).is_ok(), "{}", D::name());
        }
        let stolen = d.steal_half();
        assert!(
            !stolen.is_empty() && stolen.len() <= MAX_BATCH,
            "{}: steal_half took {}",
            D::name(),
            stolen.len()
        );
        let mut total = stolen.len();
        loop {
            let s = d.steal_half();
            if s.is_empty() {
                break;
            }
            total += s.len();
        }
        while d.pop().is_some() {
            total += 1;
        }
        assert_eq!(total, 20, "{}: tasks lost or duplicated", D::name());
    }

    #[test]
    fn steal_half_conserves_all_impls() {
        steal_half_conserves::<ListWorkDeque>();
        steal_half_conserves::<ArrayWorkDeque>();
        steal_half_conserves::<AbpWorkDeque>();
        steal_half_conserves::<MutexWorkDeque>();
    }

    #[test]
    fn push_batch_returns_overflow() {
        let d = ArrayWorkDeque::with_capacity(16);
        let rejected = d.push_batch((0..30).map(|_| noop()).collect());
        let mut held = 0;
        while d.pop().is_some() {
            held += 1;
        }
        assert_eq!(held + rejected.len(), 30, "tasks lost in push_batch");
        assert!(held <= 16);
        // Unbounded list deque never rejects.
        let d = ListWorkDeque::with_capacity(0);
        assert!(d.push_batch((0..30).map(|_| noop()).collect()).is_empty());
        let mut held = 0;
        while d.pop().is_some() {
            held += 1;
        }
        assert_eq!(held, 30);
    }

    #[test]
    fn steal_half_scales_with_size_hint() {
        let d = ListWorkDeque::with_capacity(0);
        // Two tasks: half is one.
        assert!(d.push(noop()).is_ok());
        assert!(d.push(noop()).is_ok());
        assert_eq!(d.steal_half().len(), 1);
        // A big pile: half clamps to MAX_BATCH.
        for _ in 0..100 {
            assert!(d.push(noop()).is_ok());
        }
        assert_eq!(d.steal_half().len(), MAX_BATCH);
    }
}
