//! The work-deque abstraction and its implementations.

use std::sync::atomic::{AtomicUsize, Ordering};

use dcas::HarrisMcas;
use dcas_baselines::{AbpDeque, MutexDeque, Steal};
use dcas_deque::value::{Boxed, WordValue};
use dcas_deque::{ArrayDeque, ConcurrentDeque, ListDeque, MAX_BATCH};

use crate::scheduler::Task;

/// Result of a steal attempt.
pub enum StealOutcome {
    /// The victim's deque was observed empty.
    Empty,
    /// Lost a race; try another victim.
    Retry,
    /// A task was stolen.
    Stolen(Task),
}

/// A per-worker deque of tasks. `push`/`pop` are called only by the
/// owning worker; `steal`/`steal_half` by anyone.
pub trait WorkDeque: Send + Sync + 'static {
    /// Creates a deque able to hold at least `capacity` tasks (bounded
    /// implementations may refuse pushes beyond it).
    fn with_capacity(capacity: usize) -> Self;
    /// Owner: pushes a task; returns it back if the deque is full (the
    /// caller then runs it inline).
    fn push(&self, t: Task) -> Result<(), Task>;
    /// Owner: pops the most recently pushed task (LIFO, for locality).
    fn pop(&self) -> Option<Task>;
    /// Thief: takes the oldest task (FIFO, largest work first).
    fn steal(&self) -> StealOutcome;
    /// Implementation name for reporting.
    fn name() -> &'static str;

    /// Thief: takes up to roughly **half** of the victim's tasks, oldest
    /// first, amortising the steal's synchronisation over several tasks
    /// (the "steal-half" policy of Hendler & Shavit's non-blocking
    /// steal-half work queues).
    ///
    /// Returns stolen tasks oldest-first; empty means nothing was taken
    /// (empty victim or lost race). The default degenerates to a single
    /// [`steal`](Self::steal); the batched deques override it with one
    /// chunk-atomic multi-pop.
    fn steal_half(&self) -> Vec<Task> {
        match self.steal() {
            StealOutcome::Stolen(t) => vec![t],
            _ => Vec::new(),
        }
    }

    /// Owner: pushes a batch of tasks in order, returning any rejected
    /// tail (bounded implementations at capacity; the caller runs those
    /// inline). Used by the scheduler to re-queue the surplus of a
    /// [`steal_half`](Self::steal_half).
    fn push_batch(&self, tasks: Vec<Task>) -> Vec<Task> {
        let mut it = tasks.into_iter();
        let mut rejected = Vec::new();
        while let Some(t) = it.next() {
            if let Err(t) = self.push(t) {
                rejected.push(t);
                rejected.extend(it);
                break;
            }
        }
        rejected
    }

    /// Owner: publishes any privately buffered tasks into steal-visible
    /// storage, returning the ones that could not be published (bounded
    /// shared level at capacity; the caller must run those itself).
    ///
    /// Flat deques have no private buffer, so the default is a no-op; the
    /// two-level [`TieredDeque`] wrappers override it. The scheduler
    /// calls this when a worker dies so the tasks in its private ring
    /// become stealable instead of stranding `pending` above zero.
    fn flush_local(&self) -> Vec<Task> {
        Vec::new()
    }
}

/// Best-effort size hint maintained *outside* the deque: the owner and
/// thieves bump it around their operations, so it lags reality by the
/// operations in flight. That is fine — `steal_half` only needs an
/// estimate to size its batch, and clamps to `1..=MAX_BATCH` anyway.
struct LenHint(AtomicUsize);

impl LenHint {
    fn new() -> Self {
        LenHint(AtomicUsize::new(0))
    }

    fn add(&self, n: usize) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn sub(&self, n: usize) {
        // Saturating: a racing pop may decrement before the matching
        // push's increment lands.
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(n))
        });
    }

    /// Batch size for stealing about half the (estimated) content.
    fn half_batch(&self) -> usize {
        (self.0.load(Ordering::Relaxed) / 2).clamp(1, MAX_BATCH)
    }
}

/// Work deque over the paper's unbounded linked-list deque.
pub struct ListWorkDeque {
    inner: ListDeque<Task, HarrisMcas>,
    len: LenHint,
}

impl WorkDeque for ListWorkDeque {
    fn with_capacity(_capacity: usize) -> Self {
        ListWorkDeque { inner: ListDeque::new(), len: LenHint::new() }
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        self.inner.push_right(t).map_err(|e| e.into_inner())?;
        self.len.add(1);
        Ok(())
    }

    fn pop(&self) -> Option<Task> {
        let t = self.inner.pop_right()?;
        self.len.sub(1);
        Some(t)
    }

    fn steal(&self) -> StealOutcome {
        match self.inner.pop_left() {
            Some(t) => {
                self.len.sub(1);
                StealOutcome::Stolen(t)
            }
            None => StealOutcome::Empty,
        }
    }

    fn steal_half(&self) -> Vec<Task> {
        let tasks = self.inner.pop_left_n(self.len.half_batch());
        self.len.sub(tasks.len());
        tasks
    }

    fn push_batch(&self, tasks: Vec<Task>) -> Vec<Task> {
        let n = tasks.len();
        match self.inner.push_right_n(tasks) {
            Ok(()) => {
                self.len.add(n);
                Vec::new()
            }
            Err(full) => {
                let rest = full.into_inner();
                self.len.add(n - rest.len());
                rest
            }
        }
    }

    fn name() -> &'static str {
        "list-dcas"
    }
}

/// Work deque over the paper's bounded array deque.
pub struct ArrayWorkDeque {
    inner: ArrayDeque<Task, HarrisMcas>,
    len: LenHint,
}

impl WorkDeque for ArrayWorkDeque {
    fn with_capacity(capacity: usize) -> Self {
        ArrayWorkDeque { inner: ArrayDeque::new(capacity.max(1)), len: LenHint::new() }
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        self.inner.push_right(t).map_err(|e| e.into_inner())?;
        self.len.add(1);
        Ok(())
    }

    fn pop(&self) -> Option<Task> {
        let t = self.inner.pop_right()?;
        self.len.sub(1);
        Some(t)
    }

    fn steal(&self) -> StealOutcome {
        match self.inner.pop_left() {
            Some(t) => {
                self.len.sub(1);
                StealOutcome::Stolen(t)
            }
            None => StealOutcome::Empty,
        }
    }

    fn steal_half(&self) -> Vec<Task> {
        let tasks = self.inner.pop_left_n(self.len.half_batch());
        self.len.sub(tasks.len());
        tasks
    }

    fn push_batch(&self, tasks: Vec<Task>) -> Vec<Task> {
        let n = tasks.len();
        match self.inner.push_right_n(tasks) {
            Ok(()) => {
                self.len.add(n);
                Vec::new()
            }
            Err(full) => {
                let rest = full.into_inner();
                self.len.add(n - rest.len());
                rest
            }
        }
    }

    fn name() -> &'static str {
        "array-dcas"
    }
}

/// Number of tasks the owner-private ring of a [`TieredDeque`] holds
/// before spilling a batch into the shared level. Sized at 4×
/// [`MAX_BATCH`] so the owner absorbs fork bursts privately and the
/// spill/refill traffic moves whole chunk-atomic batches.
pub const RING_CAP: usize = 4 * MAX_BATCH;

/// Two-level owner-biased work deque: a private, synchronisation-free
/// ring for the owner's `push`/`pop` hot path, backed by one of the
/// paper's linearizable DCAS deques as the shared, steal-visible level.
///
/// The fork-join access pattern is overwhelmingly owner-local — a worker
/// pushes a task and pops it back moments later — yet the flat adapters
/// pay a full DCAS (descriptor install + helping protocol under the
/// Harris substrate) for every one of those operations. Here the owner
/// touches only a `VecDeque` behind an `UnsafeCell`: zero atomics until
/// the ring fills ([`RING_CAP`]), at which point the **oldest**
/// [`MAX_BATCH`] tasks spill into the shared deque's right end with a
/// single chunk-atomic `push_right_n` CASN. Refill is symmetric: an
/// empty ring pulls the newest [`MAX_BATCH`] tasks back with one
/// `pop_right_n`. Thieves never see the ring — they steal oldest-first
/// from the shared deque's left end exactly as before, so all
/// inter-thread transfers still linearize through the paper's deque and
/// the amortised DCAS cost per owner operation drops by ~`MAX_BATCH`×.
///
/// Ordering invariant: the shared deque (left→right) followed by the
/// ring (front→back) is always oldest→newest, because spills move the
/// ring's *oldest* prefix to the shared *right* end and refills take the
/// shared *newest* suffix back. Owner pops remain globally LIFO and
/// steals globally FIFO, same as the flat adapters.
///
/// # Safety contract
///
/// `push`/`pop`/`flush_local` are owner-only (the [`WorkDeque`]
/// contract); the ring is therefore accessed by one thread at a time,
/// with cross-thread ownership handoff (scheduler startup/teardown)
/// synchronised by thread spawn/join. `steal`/`steal_half` touch only
/// the shared level.
pub struct TieredDeque<T, D> {
    ring: std::cell::UnsafeCell<std::collections::VecDeque<T>>,
    shared: D,
    /// Size hint for the shared level only (the ring is owner-private
    /// and never stolen from).
    len: LenHint,
}

// SAFETY: the ring is owner-only per the `WorkDeque` contract (see the
// type-level safety contract above); everything else is `Send + Sync`.
unsafe impl<T: Send, D: Send + Sync> Send for TieredDeque<T, D> {}
unsafe impl<T: Send, D: Send + Sync> Sync for TieredDeque<T, D> {}

impl<T: Send, D: ConcurrentDeque<T>> TieredDeque<T, D> {
    /// Wraps `shared` as the steal-visible level under a fresh private
    /// ring.
    pub fn new(shared: D) -> Self {
        TieredDeque {
            ring: std::cell::UnsafeCell::new(std::collections::VecDeque::with_capacity(
                RING_CAP + 1,
            )),
            shared,
            len: LenHint::new(),
        }
    }

    /// The shared level (e.g. to read its recorder or stats).
    pub fn shared(&self) -> &D {
        &self.shared
    }

    /// Owner-only: the private ring.
    #[allow(clippy::mut_from_ref)]
    fn ring(&self) -> &mut std::collections::VecDeque<T> {
        // SAFETY: owner-only methods are never called concurrently (see
        // the type-level safety contract).
        unsafe { &mut *self.ring.get() }
    }

    /// Owner-only: pushes a value, spilling the ring's oldest batch to
    /// the shared level when full. `Err` hands the value back when the
    /// shared level is bounded and at capacity.
    pub fn push(&self, t: T) -> Result<(), T> {
        let ring = self.ring();
        if ring.len() >= RING_CAP {
            // Spill the oldest batch to the shared right end (it is newer
            // than everything already there, so global order holds).
            let batch: Vec<T> = ring.drain(..MAX_BATCH).collect();
            let n = batch.len();
            if let Err(full) = self.shared.push_right_n(batch) {
                // Bounded shared level at capacity: restore the unspilled
                // tail to the ring front (order preserved) and reject the
                // new task — the caller runs it inline, the standard
                // overflow policy.
                let rest = full.into_inner();
                self.len.add(n - rest.len());
                for t in rest.into_iter().rev() {
                    ring.push_front(t);
                }
                return Err(t);
            }
            self.len.add(n);
        }
        ring.push_back(t);
        Ok(())
    }

    /// Owner-only: pops the newest value (globally LIFO), refilling the
    /// ring from the shared level's newest batch when empty.
    pub fn pop(&self) -> Option<T> {
        let ring = self.ring();
        if let Some(t) = ring.pop_back() {
            return Some(t);
        }
        // Ring empty: pull the newest shared batch back. `pop_right_n`
        // returns rightmost (newest) first; reversed, the chunk extends
        // the ring oldest→newest so the back stays the newest task.
        let chunk = self.shared.pop_right_n(MAX_BATCH);
        self.len.sub(chunk.len());
        ring.extend(chunk.into_iter().rev());
        ring.pop_back()
    }

    /// Thief: takes the globally oldest *published* value (the ring is
    /// invisible to thieves by design).
    pub fn steal(&self) -> Option<T> {
        let t = self.shared.pop_left();
        if t.is_some() {
            self.len.sub(1);
        }
        t
    }

    /// Thief: takes about half of the shared level, oldest first.
    pub fn steal_half(&self) -> Vec<T> {
        let tasks = self.shared.pop_left_n(self.len.half_batch());
        self.len.sub(tasks.len());
        tasks
    }

    /// Owner-only: publishes the whole ring to the shared level,
    /// returning whatever a bounded shared level rejects.
    pub fn flush_local(&self) -> Vec<T> {
        let ring = self.ring();
        if ring.is_empty() {
            return Vec::new();
        }
        let batch: Vec<T> = ring.drain(..).collect();
        let n = batch.len();
        match self.shared.push_right_n(batch) {
            Ok(()) => {
                self.len.add(n);
                Vec::new()
            }
            Err(full) => {
                let rest = full.into_inner();
                self.len.add(n - rest.len());
                rest
            }
        }
    }
}

macro_rules! tiered_workdeque {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $ctor:expr, $label:literal) => {
        $(#[$doc])*
        pub struct $name(TieredDeque<Task, $inner>);

        impl WorkDeque for $name {
            fn with_capacity(capacity: usize) -> Self {
                #[allow(clippy::redundant_closure_call)]
                $name(TieredDeque::new(($ctor)(capacity)))
            }

            fn push(&self, t: Task) -> Result<(), Task> {
                self.0.push(t)
            }

            fn pop(&self) -> Option<Task> {
                self.0.pop()
            }

            fn steal(&self) -> StealOutcome {
                match self.0.steal() {
                    Some(t) => StealOutcome::Stolen(t),
                    None => StealOutcome::Empty,
                }
            }

            fn steal_half(&self) -> Vec<Task> {
                self.0.steal_half()
            }

            fn flush_local(&self) -> Vec<Task> {
                self.0.flush_local()
            }

            fn name() -> &'static str {
                $label
            }
        }
    };
}

tiered_workdeque!(
    /// Two-level work deque over the paper's unbounded list deque.
    TieredListWorkDeque,
    ListDeque<Task, HarrisMcas>,
    |_capacity| ListDeque::new(),
    "tiered-list-dcas"
);

tiered_workdeque!(
    /// Two-level work deque over the paper's bounded array deque. The
    /// capacity bounds the shared level; the private ring adds up to
    /// [`RING_CAP`] tasks of owner-side buffering on top.
    TieredArrayWorkDeque,
    ArrayDeque<Task, HarrisMcas>,
    |capacity: usize| ArrayDeque::new(std::cmp::max(capacity, 1)),
    "tiered-array-dcas"
);

/// Work deque over the CAS-only ABP deque (the baseline built for this
/// exact access pattern).
pub struct AbpWorkDeque(AbpDeque);

impl WorkDeque for AbpWorkDeque {
    fn with_capacity(capacity: usize) -> Self {
        AbpWorkDeque(AbpDeque::new(capacity.max(1)))
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        let w = Boxed::new(t).encode();
        if self.0.push_bottom(w) {
            Ok(())
        } else {
            // SAFETY: `w` was just encoded and rejected; we reclaim it.
            Err(unsafe { Boxed::<Task>::decode(w) }.into_inner())
        }
    }

    fn pop(&self) -> Option<Task> {
        // SAFETY: words in the deque are exactly the `Boxed<Task>`
        // encodings pushed above, consumed once.
        self.0.pop_bottom().map(|w| unsafe { Boxed::<Task>::decode(w) }.into_inner())
    }

    fn steal(&self) -> StealOutcome {
        match self.0.steal() {
            // SAFETY: as above.
            Steal::Success(w) => {
                StealOutcome::Stolen(unsafe { Boxed::<Task>::decode(w) }.into_inner())
            }
            Steal::Empty => StealOutcome::Empty,
            Steal::Abort => StealOutcome::Retry,
        }
    }

    fn name() -> &'static str {
        "abp-cas"
    }
}

impl Drop for AbpWorkDeque {
    fn drop(&mut self) {
        // Reclaim any tasks left behind (scheduler aborts, panics).
        while let Some(w) = self.0.pop_bottom() {
            // SAFETY: as in `pop`.
            drop(unsafe { Boxed::<Task>::decode(w) });
        }
    }
}

/// Work deque over the lock-based baseline.
pub struct MutexWorkDeque(MutexDeque<Task>);

impl WorkDeque for MutexWorkDeque {
    fn with_capacity(_capacity: usize) -> Self {
        MutexWorkDeque(MutexDeque::new())
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        ConcurrentDeque::push_right(&self.0, t).map_err(|e| e.into_inner())
    }

    fn pop(&self) -> Option<Task> {
        ConcurrentDeque::pop_right(&self.0)
    }

    fn steal(&self) -> StealOutcome {
        match ConcurrentDeque::pop_left(&self.0) {
            Some(t) => StealOutcome::Stolen(t),
            None => StealOutcome::Empty,
        }
    }

    fn name() -> &'static str {
        "mutex"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> Task {
        Box::new(|_| {})
    }

    /// All tasks pushed are retrieved exactly once through a mix of
    /// `steal_half` and owner pops, across every implementation.
    fn steal_half_conserves<D: WorkDeque>() {
        let d = D::with_capacity(64);
        for _ in 0..20 {
            assert!(d.push(noop()).is_ok(), "{}", D::name());
        }
        let stolen = d.steal_half();
        assert!(
            !stolen.is_empty() && stolen.len() <= MAX_BATCH,
            "{}: steal_half took {}",
            D::name(),
            stolen.len()
        );
        let mut total = stolen.len();
        loop {
            let s = d.steal_half();
            if s.is_empty() {
                break;
            }
            total += s.len();
        }
        while d.pop().is_some() {
            total += 1;
        }
        assert_eq!(total, 20, "{}: tasks lost or duplicated", D::name());
    }

    #[test]
    fn steal_half_conserves_all_impls() {
        steal_half_conserves::<ListWorkDeque>();
        steal_half_conserves::<ArrayWorkDeque>();
        steal_half_conserves::<AbpWorkDeque>();
        steal_half_conserves::<MutexWorkDeque>();
    }

    /// `steal_half` only sees the shared level, so a tiered deque with
    /// fewer than `RING_CAP` tasks looks empty to thieves until the
    /// owner spills — but `flush_local` + pops still conserve every
    /// task.
    fn tiered_conserves<D: WorkDeque>() {
        let d = D::with_capacity(256);
        const N: usize = 100;
        for _ in 0..N {
            assert!(d.push(noop()).is_ok(), "{}", D::name());
        }
        // 100 pushes spill floor((100 - RING_CAP) / MAX_BATCH + 1) —
        // enough that thieves find work without the owner's help.
        let mut total = 0;
        loop {
            let s = d.steal_half();
            if s.is_empty() {
                break;
            }
            assert!(s.len() <= MAX_BATCH);
            total += s.len();
        }
        assert!(total > 0, "{}: spilled tasks must be stealable", D::name());
        while d.pop().is_some() {
            total += 1;
        }
        assert_eq!(total, N, "{}: tasks lost or duplicated", D::name());
    }

    #[test]
    fn tiered_conserves_all_impls() {
        tiered_conserves::<TieredListWorkDeque>();
        tiered_conserves::<TieredArrayWorkDeque>();
    }

    #[test]
    fn tiered_ring_is_private_until_spill() {
        let d = TieredListWorkDeque::with_capacity(0);
        // Below RING_CAP nothing is shared…
        for _ in 0..RING_CAP {
            assert!(d.push(noop()).is_ok());
        }
        assert!(matches!(d.steal(), StealOutcome::Empty));
        // …the next push spills exactly one batch of the oldest tasks…
        assert!(d.push(noop()).is_ok());
        let stolen = d.steal_half();
        assert!(!stolen.is_empty() && stolen.len() <= MAX_BATCH);
        // …and flush_local publishes the rest of the ring.
        let leftover = d.flush_local();
        assert!(leftover.is_empty(), "unbounded shared level never rejects");
        let mut total = stolen.len();
        loop {
            let s = d.steal_half();
            if s.is_empty() {
                break;
            }
            total += s.len();
        }
        assert_eq!(total, RING_CAP + 1);
        assert!(d.pop().is_none());
    }

    #[test]
    fn tiered_pop_refills_from_shared_in_lifo_order() {
        // Tasks are opaque closures, so order is observed through a
        // drop-guard each task captures: popping and dropping a task
        // appends its index to the log.
        use std::sync::{Arc, Mutex};
        struct Tag(usize, Arc<Mutex<Vec<usize>>>);
        impl Drop for Tag {
            fn drop(&mut self) {
                self.1.lock().unwrap().push(self.0);
            }
        }
        let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let tagged = |i: usize| -> Task {
            let guard = Tag(i, log.clone());
            Box::new(move |_| {
                let _ = &guard;
            })
        };
        let d = TieredListWorkDeque::with_capacity(0);
        const N: usize = RING_CAP + 2 * MAX_BATCH;
        for i in 0..N {
            assert!(d.push(tagged(i)).is_ok());
        }
        // Owner pops must return newest-first across the spill boundary:
        // the ring drains, then refills pull the spilled batches back.
        while let Some(t) = d.pop() {
            drop(t);
        }
        assert_eq!(*log.lock().unwrap(), (0..N).rev().collect::<Vec<_>>());
    }

    #[test]
    fn tiered_bounded_push_rejects_when_shared_full() {
        // Shared capacity 8 + ring RING_CAP: after both fill, pushes
        // must hand the task back instead of growing without bound.
        let d = TieredArrayWorkDeque::with_capacity(MAX_BATCH);
        let mut held = 0usize;
        let mut rejected = 0usize;
        for _ in 0..(RING_CAP + 3 * MAX_BATCH) {
            match d.push(noop()) {
                Ok(()) => held += 1,
                Err(t) => {
                    drop(t);
                    rejected += 1;
                }
            }
        }
        assert!(rejected > 0, "bounded tiered deque never rejected");
        let mut drained = 0usize;
        while d.pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, held, "tasks lost in bounded tiered deque");
    }

    #[test]
    fn push_batch_returns_overflow() {
        let d = ArrayWorkDeque::with_capacity(16);
        let rejected = d.push_batch((0..30).map(|_| noop()).collect());
        let mut held = 0;
        while d.pop().is_some() {
            held += 1;
        }
        assert_eq!(held + rejected.len(), 30, "tasks lost in push_batch");
        assert!(held <= 16);
        // Unbounded list deque never rejects.
        let d = ListWorkDeque::with_capacity(0);
        assert!(d.push_batch((0..30).map(|_| noop()).collect()).is_empty());
        let mut held = 0;
        while d.pop().is_some() {
            held += 1;
        }
        assert_eq!(held, 30);
    }

    #[test]
    fn steal_half_scales_with_size_hint() {
        let d = ListWorkDeque::with_capacity(0);
        // Two tasks: half is one.
        assert!(d.push(noop()).is_ok());
        assert!(d.push(noop()).is_ok());
        assert_eq!(d.steal_half().len(), 1);
        // A big pile: half clamps to MAX_BATCH.
        for _ in 0..100 {
            assert!(d.push(noop()).is_ok());
        }
        assert_eq!(d.steal_half().len(), MAX_BATCH);
    }
}
