//! The work-deque abstraction and its implementations.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use dcas::HarrisMcas;
use dcas_baselines::{AbpDeque, MutexDeque, Steal};
use dcas_deque::value::{Boxed, WordValue};
use dcas_deque::{ArrayDeque, ConcurrentDeque, ListDeque, SundellDeque, MAX_BATCH};

use crate::chaselev::{ChaseLev, Steal as ClSteal};
use crate::scheduler::Task;

/// Result of a steal attempt.
pub enum StealOutcome {
    /// The victim's deque was observed empty.
    Empty,
    /// Lost a race; try another victim.
    Retry,
    /// A task was stolen.
    Stolen(Task),
}

/// A per-worker deque of tasks. `push`/`pop` are called only by the
/// owning worker; `steal`/`steal_half` by anyone.
pub trait WorkDeque: Send + Sync + 'static {
    /// Creates a deque able to hold at least `capacity` tasks (bounded
    /// implementations may refuse pushes beyond it).
    fn with_capacity(capacity: usize) -> Self;
    /// Owner: pushes a task; returns it back if the deque is full (the
    /// caller then runs it inline).
    fn push(&self, t: Task) -> Result<(), Task>;
    /// Owner: pops the most recently pushed task (LIFO, for locality).
    fn pop(&self) -> Option<Task>;
    /// Thief: takes the oldest task (FIFO, largest work first).
    fn steal(&self) -> StealOutcome;
    /// Implementation name for reporting.
    fn name() -> &'static str;

    /// Thief: takes up to roughly **half** of the victim's tasks, oldest
    /// first, amortising the steal's synchronisation over several tasks
    /// (the "steal-half" policy of Hendler & Shavit's non-blocking
    /// steal-half work queues).
    ///
    /// Returns stolen tasks oldest-first; empty means nothing was taken
    /// (empty victim or lost race). The default degenerates to a single
    /// [`steal`](Self::steal); the batched deques override it with one
    /// chunk-atomic multi-pop.
    fn steal_half(&self) -> Vec<Task> {
        match self.steal() {
            StealOutcome::Stolen(t) => vec![t],
            _ => Vec::new(),
        }
    }

    /// Owner: pushes a batch of tasks in order, returning any rejected
    /// tail (bounded implementations at capacity; the caller runs those
    /// inline). Used by the scheduler to re-queue the surplus of a
    /// [`steal_half`](Self::steal_half).
    fn push_batch(&self, tasks: Vec<Task>) -> Vec<Task> {
        let mut it = tasks.into_iter();
        let mut rejected = Vec::new();
        while let Some(t) = it.next() {
            if let Err(t) = self.push(t) {
                rejected.push(t);
                rejected.extend(it);
                break;
            }
        }
        rejected
    }

    /// Owner: publishes any privately buffered tasks into steal-visible
    /// storage, returning the ones that could not be published (bounded
    /// shared level at capacity; the caller must run those itself).
    ///
    /// Flat deques have no private buffer, so the default is a no-op; the
    /// two-level [`TieredDeque`] wrappers override it. The scheduler
    /// calls this when a worker dies so the tasks in its private ring
    /// become stealable instead of stranding `pending` above zero.
    fn flush_local(&self) -> Vec<Task> {
        Vec::new()
    }

    /// Steal provenance since construction: `(tasks thieves took from
    /// the owner-private tier, tasks thieves took from the shared
    /// level)`. Flat deques have a single level and report zeros.
    fn tier_steals(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Best-effort size hint maintained *outside* the deque: the owner and
/// thieves bump it around their operations, so it lags reality by the
/// operations in flight. That is fine — `steal_half` only needs an
/// estimate to size its batch, and clamps to `1..=MAX_BATCH` anyway.
struct LenHint(AtomicUsize);

impl LenHint {
    fn new() -> Self {
        LenHint(AtomicUsize::new(0))
    }

    fn add(&self, n: usize) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn sub(&self, n: usize) {
        // Saturating: a racing pop may decrement before the matching
        // push's increment lands.
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(n))
        });
    }

    /// Batch size for stealing about half the (estimated) content.
    fn half_batch(&self) -> usize {
        (self.0.load(Ordering::Relaxed) / 2).clamp(1, MAX_BATCH)
    }

    /// Whether the hinted size is zero. A hint, not truth: a stale
    /// nonzero reading merely skips one restock (thieves can still
    /// reach a stealable tier directly), a stale zero merely spills one
    /// batch early.
    fn is_empty_hint(&self) -> bool {
        self.0.load(Ordering::Relaxed) == 0
    }
}

/// Work deque over the paper's unbounded linked-list deque.
pub struct ListWorkDeque {
    inner: ListDeque<Task, HarrisMcas>,
    len: LenHint,
}

impl WorkDeque for ListWorkDeque {
    fn with_capacity(_capacity: usize) -> Self {
        ListWorkDeque { inner: ListDeque::new(), len: LenHint::new() }
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        self.inner.push_right(t).map_err(|e| e.into_inner())?;
        self.len.add(1);
        Ok(())
    }

    fn pop(&self) -> Option<Task> {
        let t = self.inner.pop_right()?;
        self.len.sub(1);
        Some(t)
    }

    fn steal(&self) -> StealOutcome {
        match self.inner.pop_left() {
            Some(t) => {
                self.len.sub(1);
                StealOutcome::Stolen(t)
            }
            None => StealOutcome::Empty,
        }
    }

    fn steal_half(&self) -> Vec<Task> {
        let tasks = self.inner.pop_left_n(self.len.half_batch());
        self.len.sub(tasks.len());
        tasks
    }

    fn push_batch(&self, tasks: Vec<Task>) -> Vec<Task> {
        let n = tasks.len();
        match self.inner.push_right_n(tasks) {
            Ok(()) => {
                self.len.add(n);
                Vec::new()
            }
            Err(full) => {
                let rest = full.into_inner();
                self.len.add(n - rest.len());
                rest
            }
        }
    }

    fn name() -> &'static str {
        "list-dcas"
    }
}

/// Work deque over the paper's bounded array deque.
pub struct ArrayWorkDeque {
    inner: ArrayDeque<Task, HarrisMcas>,
    len: LenHint,
}

impl WorkDeque for ArrayWorkDeque {
    fn with_capacity(capacity: usize) -> Self {
        ArrayWorkDeque { inner: ArrayDeque::new(capacity.max(1)), len: LenHint::new() }
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        self.inner.push_right(t).map_err(|e| e.into_inner())?;
        self.len.add(1);
        Ok(())
    }

    fn pop(&self) -> Option<Task> {
        let t = self.inner.pop_right()?;
        self.len.sub(1);
        Some(t)
    }

    fn steal(&self) -> StealOutcome {
        match self.inner.pop_left() {
            Some(t) => {
                self.len.sub(1);
                StealOutcome::Stolen(t)
            }
            None => StealOutcome::Empty,
        }
    }

    fn steal_half(&self) -> Vec<Task> {
        let tasks = self.inner.pop_left_n(self.len.half_batch());
        self.len.sub(tasks.len());
        tasks
    }

    fn push_batch(&self, tasks: Vec<Task>) -> Vec<Task> {
        let n = tasks.len();
        match self.inner.push_right_n(tasks) {
            Ok(()) => {
                self.len.add(n);
                Vec::new()
            }
            Err(full) => {
                let rest = full.into_inner();
                self.len.add(n - rest.len());
                rest
            }
        }
    }

    fn name() -> &'static str {
        "array-dcas"
    }
}

/// Number of tasks the owner-private tier of a [`TieredDeque`] holds
/// before spilling a batch into the shared level. Sized at 4×
/// [`MAX_BATCH`] so the owner absorbs fork bursts privately and the
/// spill/refill traffic moves whole chunk-atomic batches.
pub const RING_CAP: usize = 4 * MAX_BATCH;

/// The owner-private level of a [`TieredDeque`].
///
/// Two implementations: [`VecRing`] (the original spill-only ring —
/// zero atomics, completely invisible to thieves) and [`ChaseLevTier`]
/// (a [`ChaseLev`] deque — owner ops pay one fence, and thieves may
/// steal the tier's top directly instead of waiting for a spill).
///
/// # Safety contract
///
/// `push`, `pop`, `take_oldest` and `unspill` are owner-only (the
/// [`WorkDeque`] contract); `steal` may be called by any thread, but
/// must return `None` without touching unsynchronised state when
/// [`STEALABLE`](Self::STEALABLE) is `false`.
pub trait PrivateTier<T: Send>: Send + Sync {
    /// Whether thieves may take from this tier directly.
    const STEALABLE: bool;

    /// An empty tier.
    fn new() -> Self;
    /// Owner-only: pushes at the newest end. Never fails (private tiers
    /// are unbounded — growth or amortised reallocation).
    fn push(&self, v: T);
    /// Owner-only: pops the newest value.
    fn pop(&self) -> Option<T>;
    /// Number of elements; exact for the owner, a snapshot for thieves
    /// (and only meaningful to thieves when [`STEALABLE`](Self::STEALABLE)).
    fn len(&self) -> usize;
    /// `len() == 0`, under the same staleness caveat.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Owner-only: removes up to `n` of the **oldest** values,
    /// oldest-first (the spill direction).
    fn take_oldest(&self, n: usize) -> Vec<T>;
    /// Owner-only: returns values a bounded shared level rejected from a
    /// spill. [`VecRing`] restores them in place (exact order);
    /// [`ChaseLevTier`] re-pushes at the bottom (order is a scheduling
    /// heuristic, conservation is the invariant).
    fn unspill(&self, rest: Vec<T>);
    /// Thief: takes the tier's oldest value. Retries internal races, so
    /// `None` means the tier was observed empty (or is not stealable).
    fn steal(&self) -> Option<T>;
}

/// The original owner-private tier: a `VecDeque` behind an
/// `UnsafeCell`. Zero atomics on the owner's hot path; thieves can only
/// see work after a spill.
pub struct VecRing<T>(std::cell::UnsafeCell<std::collections::VecDeque<T>>);

// SAFETY: all &mut access goes through owner-only methods per the
// `PrivateTier` safety contract; `steal` never touches the cell.
unsafe impl<T: Send> Send for VecRing<T> {}
unsafe impl<T: Send> Sync for VecRing<T> {}

impl<T> VecRing<T> {
    /// Owner-only: the ring itself.
    #[allow(clippy::mut_from_ref)]
    fn ring(&self) -> &mut std::collections::VecDeque<T> {
        // SAFETY: owner-only methods are never called concurrently (see
        // the trait-level safety contract).
        unsafe { &mut *self.0.get() }
    }
}

impl<T: Send> PrivateTier<T> for VecRing<T> {
    const STEALABLE: bool = false;

    fn new() -> Self {
        VecRing(std::cell::UnsafeCell::new(std::collections::VecDeque::with_capacity(
            RING_CAP + 1,
        )))
    }

    fn push(&self, v: T) {
        self.ring().push_back(v);
    }

    fn pop(&self) -> Option<T> {
        self.ring().pop_back()
    }

    fn len(&self) -> usize {
        self.ring().len()
    }

    fn take_oldest(&self, n: usize) -> Vec<T> {
        let ring = self.ring();
        let n = n.min(ring.len());
        ring.drain(..n).collect()
    }

    fn unspill(&self, rest: Vec<T>) {
        let ring = self.ring();
        for v in rest.into_iter().rev() {
            ring.push_front(v);
        }
    }

    fn steal(&self) -> Option<T> {
        None
    }
}

/// A [`ChaseLev`] deque as the private tier: the owner pays one release
/// fence per push (instead of zero atomics) and in exchange thieves can
/// steal the tier's top directly — no waiting for the owner to spill.
pub struct ChaseLevTier<T>(ChaseLev<T>);

impl<T: Send> PrivateTier<T> for ChaseLevTier<T> {
    const STEALABLE: bool = true;

    fn new() -> Self {
        ChaseLevTier(ChaseLev::new())
    }

    fn push(&self, v: T) {
        self.0.push(v);
    }

    fn pop(&self) -> Option<T> {
        self.0.pop()
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn take_oldest(&self, n: usize) -> Vec<T> {
        // The owner drains itself through the thief protocol (top end):
        // `Retry` means a concurrent thief won an index — someone made
        // progress — so looping is livelock-free.
        let mut out = Vec::new();
        while out.len() < n {
            match self.0.steal() {
                ClSteal::Stolen(v) => out.push(v),
                ClSteal::Retry => continue,
                ClSteal::Empty => break,
            }
        }
        out
    }

    fn unspill(&self, rest: Vec<T>) {
        // Rejected spill values re-enter at the bottom: their relative
        // age is scrambled, but every value stays in the deque
        // (conservation over ordering; see the trait docs).
        for v in rest {
            self.0.push(v);
        }
    }

    fn steal(&self) -> Option<T> {
        loop {
            match self.0.steal() {
                ClSteal::Stolen(v) => return Some(v),
                ClSteal::Retry => std::hint::spin_loop(),
                ClSteal::Empty => return None,
            }
        }
    }
}

/// Two-level owner-biased work deque: a private tier for the owner's
/// `push`/`pop` hot path, backed by one of the paper's linearizable
/// DCAS deques as the shared level.
///
/// The fork-join access pattern is overwhelmingly owner-local — a worker
/// pushes a task and pops it back moments later — yet the flat adapters
/// pay a full DCAS (descriptor install + helping protocol under the
/// Harris substrate) for every one of those operations. Here the owner
/// touches only the private tier `P`: at most a release fence per
/// operation until the tier fills ([`RING_CAP`]), at which point the
/// **oldest** [`MAX_BATCH`] tasks spill into the shared deque's right
/// end with a single chunk-atomic `push_right_n` CASN (for a stealable
/// tier only when the shared level looks empty — see
/// [`push`](Self::push) for the policy). Refill is
/// symmetric: an empty tier pulls the newest [`MAX_BATCH`] tasks back
/// with one `pop_right_n`. Thieves prefer the shared deque's left end
/// (the globally oldest work); with a [`ChaseLevTier`] they can also
/// take the private tier's top once the shared level runs dry, so a
/// burst of forked work is stealable *before* the owner spills.
///
/// Ordering invariant: the shared deque (left→right) followed by the
/// private tier (oldest→newest) is always oldest→newest, because spills
/// move the tier's *oldest* prefix to the shared *right* end and refills
/// take the shared *newest* suffix back. Owner pops remain globally
/// LIFO; steals drain globally FIFO through the shared level, then
/// oldest-first from a stealable private tier.
///
/// Spills stage their chunk in an owner-private `staged` buffer between
/// draining the tier and the shared-level push, so a worker killed
/// mid-spill strands nothing: [`flush_local`](Self::flush_local)
/// publishes `staged` along with the tier.
///
/// # Safety contract
///
/// `push`/`pop`/`flush_local` are owner-only (the [`WorkDeque`]
/// contract), with cross-thread ownership handoff (scheduler
/// startup/teardown) synchronised by thread spawn/join.
/// `steal`/`steal_half` touch only the shared level and (when
/// `P::STEALABLE`) the private tier's thief-safe top end.
pub struct TieredDeque<T, D, P = VecRing<T>> {
    private: P,
    /// Mid-spill staging: the chunk drained from the private tier but
    /// not yet pushed to the shared level. Owner-only, like the tier.
    staged: std::cell::UnsafeCell<Vec<T>>,
    shared: D,
    /// Size hint for the shared level only.
    len: LenHint,
    /// Steal provenance: tasks thieves took from the private tier vs
    /// the shared level (relaxed counters, surfaced in `SchedStats`).
    steals_private: AtomicU64,
    steals_shared: AtomicU64,
}

// SAFETY: `staged` is owner-only per the `WorkDeque` contract (see the
// type-level safety contract above); everything else is `Send + Sync`.
unsafe impl<T: Send, D: Send + Sync, P: Send + Sync> Send for TieredDeque<T, D, P> {}
unsafe impl<T: Send, D: Send + Sync, P: Send + Sync> Sync for TieredDeque<T, D, P> {}

impl<T: Send, D: ConcurrentDeque<T>> TieredDeque<T, D> {
    /// Wraps `shared` as the steal-visible level under a fresh private
    /// [`VecRing`] (the spill-only tier). Use
    /// [`with_tier`](TieredDeque::with_tier) to pick another tier.
    pub fn new(shared: D) -> Self {
        Self::with_tier(shared)
    }
}

impl<T: Send, D: ConcurrentDeque<T>, P: PrivateTier<T>> TieredDeque<T, D, P> {
    /// Wraps `shared` as the steal-visible level under a fresh private
    /// tier `P`.
    pub fn with_tier(shared: D) -> Self {
        TieredDeque {
            private: P::new(),
            staged: std::cell::UnsafeCell::new(Vec::new()),
            shared,
            len: LenHint::new(),
            steals_private: AtomicU64::new(0),
            steals_shared: AtomicU64::new(0),
        }
    }

    /// The shared level (e.g. to read its recorder or stats).
    pub fn shared(&self) -> &D {
        &self.shared
    }

    /// Steal provenance counters: `(from the private tier, from the
    /// shared level)`.
    pub fn tier_steals(&self) -> (u64, u64) {
        (
            self.steals_private.load(Ordering::Relaxed),
            self.steals_shared.load(Ordering::Relaxed),
        )
    }

    /// Owner-only: the mid-spill staging buffer.
    #[allow(clippy::mut_from_ref)]
    fn staged(&self) -> &mut Vec<T> {
        // SAFETY: owner-only methods are never called concurrently (see
        // the type-level safety contract).
        unsafe { &mut *self.staged.get() }
    }

    /// Owner-only: spills the tier's oldest batch to the shared right
    /// end (it is newer than everything already there, so global order
    /// holds). `Err` returns what a bounded shared level rejected.
    fn spill(&self) -> Result<(), Vec<T>> {
        let staged = self.staged();
        debug_assert!(staged.is_empty());
        *staged = self.private.take_oldest(MAX_BATCH);
        // Death-flush window: a worker killed between the drain above
        // and the shared push below leaves the chunk in `staged`, which
        // `flush_local` publishes — no task is stranded.
        #[cfg(feature = "fault-inject")]
        dcas::fault::hit(dcas::fault::FaultPoint::SpillStaged, true);
        let batch = std::mem::take(staged);
        let n = batch.len();
        match self.shared.push_right_n(batch) {
            Ok(()) => {
                self.len.add(n);
                Ok(())
            }
            Err(full) => {
                let rest = full.into_inner();
                self.len.add(n - rest.len());
                Err(rest)
            }
        }
    }

    /// Owner-only: pushes a value, spilling the tier's oldest batch to
    /// the shared level when full. `Err` hands a task back when the
    /// shared level is bounded and at capacity (normally the one just
    /// pushed; under a thief race on a stealable tier, the newest
    /// remaining one) — the caller runs it inline, the standard
    /// overflow policy.
    ///
    /// Spill policy by tier: a non-stealable tier ([`VecRing`]) spills
    /// whenever it exceeds [`RING_CAP`] — its work is invisible until
    /// published. A stealable tier ([`ChaseLevTier`]) already exposes
    /// every task to thieves, so the only job left for spilling is to
    /// keep the shared linearizable level *stocked* as the preferred
    /// steal channel: it spills only when the shared level is observed
    /// empty. An owner-local burst therefore stays entirely in the
    /// Chase-Lev arrays (which grow) instead of paying one DCAS
    /// round-trip per [`MAX_BATCH`] pushes.
    pub fn push(&self, t: T) -> Result<(), T> {
        self.private.push(t);
        if self.private.len() > RING_CAP && (!P::STEALABLE || self.len.is_empty_hint()) {
            if let Err(rest) = self.spill() {
                // Bounded shared level at capacity: reclaim the newest
                // task for the caller to run inline and restore the
                // unspilled tail to the tier.
                let give_back = self.private.pop();
                self.private.unspill(rest);
                match give_back {
                    Some(t) => return Err(t),
                    // Thieves drained the tier past the value we just
                    // pushed; it is already on its way to execution.
                    None => return Ok(()),
                }
            }
        }
        Ok(())
    }

    /// Owner-only: pops the newest value (globally LIFO), refilling the
    /// tier from the shared level's newest batch when empty.
    pub fn pop(&self) -> Option<T> {
        if let Some(t) = self.private.pop() {
            return Some(t);
        }
        // Tier empty: pull the newest shared batch back. `pop_right_n`
        // returns rightmost (newest) first; reversed, the chunk enters
        // the tier oldest→newest so its newest end stays the global
        // newest task.
        let chunk = self.shared.pop_right_n(MAX_BATCH);
        self.len.sub(chunk.len());
        for v in chunk.into_iter().rev() {
            self.private.push(v);
        }
        // On a stealable tier the refilled tasks are immediately fair
        // game, so this pop can still come back empty — the caller
        // retries or steals elsewhere, same as any lost race.
        self.private.pop()
    }

    /// Thief: takes the globally oldest *published* value, falling back
    /// to the top of a stealable private tier when the shared level is
    /// empty.
    pub fn steal(&self) -> Option<T> {
        if let Some(t) = self.shared.pop_left() {
            self.len.sub(1);
            self.steals_shared.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
        if P::STEALABLE {
            if let Some(t) = self.private.steal() {
                self.steals_private.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Thief: takes about half of the shared level, oldest first; when
    /// that is empty, up to half of a stealable private tier.
    pub fn steal_half(&self) -> Vec<T> {
        let tasks = self.shared.pop_left_n(self.len.half_batch());
        if !tasks.is_empty() {
            self.len.sub(tasks.len());
            self.steals_shared.fetch_add(tasks.len() as u64, Ordering::Relaxed);
            return tasks;
        }
        if P::STEALABLE {
            let want = (self.private.len() / 2).clamp(1, MAX_BATCH);
            let mut out = Vec::new();
            while out.len() < want {
                match self.private.steal() {
                    Some(v) => out.push(v),
                    None => break,
                }
            }
            if !out.is_empty() {
                self.steals_private.fetch_add(out.len() as u64, Ordering::Relaxed);
            }
            return out;
        }
        Vec::new()
    }

    /// Owner-only: publishes any staged mid-spill chunk plus the whole
    /// private tier to the shared level, returning whatever a bounded
    /// shared level rejects.
    pub fn flush_local(&self) -> Vec<T> {
        let mut batch = std::mem::take(self.staged());
        batch.extend(self.private.take_oldest(usize::MAX));
        if batch.is_empty() {
            return Vec::new();
        }
        let n = batch.len();
        match self.shared.push_right_n(batch) {
            Ok(()) => {
                self.len.add(n);
                Vec::new()
            }
            Err(full) => {
                let rest = full.into_inner();
                self.len.add(n - rest.len());
                rest
            }
        }
    }
}

macro_rules! tiered_workdeque {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $tier:ty, $ctor:expr, $label:literal) => {
        $(#[$doc])*
        pub struct $name(TieredDeque<Task, $inner, $tier>);

        impl WorkDeque for $name {
            fn with_capacity(capacity: usize) -> Self {
                #[allow(clippy::redundant_closure_call)]
                $name(TieredDeque::with_tier(($ctor)(capacity)))
            }

            fn push(&self, t: Task) -> Result<(), Task> {
                self.0.push(t)
            }

            fn pop(&self) -> Option<Task> {
                self.0.pop()
            }

            fn steal(&self) -> StealOutcome {
                match self.0.steal() {
                    Some(t) => StealOutcome::Stolen(t),
                    None => StealOutcome::Empty,
                }
            }

            fn steal_half(&self) -> Vec<Task> {
                self.0.steal_half()
            }

            fn flush_local(&self) -> Vec<Task> {
                self.0.flush_local()
            }

            fn tier_steals(&self) -> (u64, u64) {
                self.0.tier_steals()
            }

            fn name() -> &'static str {
                $label
            }
        }
    };
}

tiered_workdeque!(
    /// Two-level work deque over the paper's unbounded list deque, with
    /// the spill-only [`VecRing`] private tier.
    TieredListWorkDeque,
    ListDeque<Task, HarrisMcas>,
    VecRing<Task>,
    |_capacity| ListDeque::new(),
    "tiered-list-dcas"
);

tiered_workdeque!(
    /// Two-level work deque over the paper's bounded array deque. The
    /// capacity bounds the shared level; the private ring adds up to
    /// [`RING_CAP`] tasks of owner-side buffering on top.
    TieredArrayWorkDeque,
    ArrayDeque<Task, HarrisMcas>,
    VecRing<Task>,
    |capacity: usize| ArrayDeque::new(std::cmp::max(capacity, 1)),
    "tiered-array-dcas"
);

tiered_workdeque!(
    /// Two-level work deque with a [`ChaseLev`] private tier over the
    /// paper's unbounded list deque: owner ops stay (nearly) free, and
    /// thieves no longer wait for a spill — they steal the Chase–Lev
    /// top directly once the shared level runs dry. Because the tier is
    /// stealable, the owner spills only to restock an empty shared
    /// level, not on every ring overflow.
    TieredChaseLevWorkDeque,
    ListDeque<Task, HarrisMcas>,
    ChaseLevTier<Task>,
    |_capacity| ListDeque::new(),
    "tiered-chaselev"
);

/// Work deque over the CAS-only Sundell–Tsigas deque: like
/// [`ListWorkDeque`] it is unbounded and two-ended (owner LIFO at the
/// right, thieves FIFO at the left), but every operation is built from
/// single-word CAS instead of DCAS — the scheduler-level half of the
/// E16 DCAS-vs-CAS comparison.
pub struct SundellWorkDeque {
    inner: SundellDeque<Task>,
    len: LenHint,
}

impl WorkDeque for SundellWorkDeque {
    fn with_capacity(_capacity: usize) -> Self {
        SundellWorkDeque { inner: SundellDeque::new(), len: LenHint::new() }
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        self.inner.push_right(t).map_err(|e| e.into_inner())?;
        self.len.add(1);
        Ok(())
    }

    fn pop(&self) -> Option<Task> {
        let t = self.inner.pop_right()?;
        self.len.sub(1);
        Some(t)
    }

    fn steal(&self) -> StealOutcome {
        match self.inner.pop_left() {
            Some(t) => {
                self.len.sub(1);
                StealOutcome::Stolen(t)
            }
            None => StealOutcome::Empty,
        }
    }

    fn steal_half(&self) -> Vec<Task> {
        // No chunk-atomic multi-pop without DCAS: amortise the steal by
        // looping single `pop_left`s up to the half-batch estimate.
        // Each element is individually linearizable; conservation holds,
        // only the chunk-atomicity of the DCAS deques is lost.
        let want = self.len.half_batch();
        let mut out = Vec::new();
        while out.len() < want {
            match self.inner.pop_left() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        self.len.sub(out.len());
        out
    }

    fn name() -> &'static str {
        "sundell-cas"
    }
}

/// Work deque over the CAS-only ABP deque (the baseline built for this
/// exact access pattern).
pub struct AbpWorkDeque(AbpDeque);

impl WorkDeque for AbpWorkDeque {
    fn with_capacity(capacity: usize) -> Self {
        AbpWorkDeque(AbpDeque::new(capacity.max(1)))
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        let w = Boxed::new(t).encode();
        if self.0.push_bottom(w) {
            Ok(())
        } else {
            // SAFETY: `w` was just encoded and rejected; we reclaim it.
            Err(unsafe { Boxed::<Task>::decode(w) }.into_inner())
        }
    }

    fn pop(&self) -> Option<Task> {
        // SAFETY: words in the deque are exactly the `Boxed<Task>`
        // encodings pushed above, consumed once.
        self.0.pop_bottom().map(|w| unsafe { Boxed::<Task>::decode(w) }.into_inner())
    }

    fn steal(&self) -> StealOutcome {
        match self.0.steal() {
            // SAFETY: as above.
            Steal::Success(w) => {
                StealOutcome::Stolen(unsafe { Boxed::<Task>::decode(w) }.into_inner())
            }
            Steal::Empty => StealOutcome::Empty,
            Steal::Abort => StealOutcome::Retry,
        }
    }

    fn name() -> &'static str {
        "abp-cas"
    }
}

impl Drop for AbpWorkDeque {
    fn drop(&mut self) {
        // Reclaim any tasks left behind (scheduler aborts, panics).
        while let Some(w) = self.0.pop_bottom() {
            // SAFETY: as in `pop`.
            drop(unsafe { Boxed::<Task>::decode(w) });
        }
    }
}

/// Work deque over the lock-based baseline.
pub struct MutexWorkDeque(MutexDeque<Task>);

impl WorkDeque for MutexWorkDeque {
    fn with_capacity(_capacity: usize) -> Self {
        MutexWorkDeque(MutexDeque::new())
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        ConcurrentDeque::push_right(&self.0, t).map_err(|e| e.into_inner())
    }

    fn pop(&self) -> Option<Task> {
        ConcurrentDeque::pop_right(&self.0)
    }

    fn steal(&self) -> StealOutcome {
        match ConcurrentDeque::pop_left(&self.0) {
            Some(t) => StealOutcome::Stolen(t),
            None => StealOutcome::Empty,
        }
    }

    fn name() -> &'static str {
        "mutex"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> Task {
        Box::new(|_| {})
    }

    /// All tasks pushed are retrieved exactly once through a mix of
    /// `steal_half` and owner pops, across every implementation.
    fn steal_half_conserves<D: WorkDeque>() {
        let d = D::with_capacity(64);
        for _ in 0..20 {
            assert!(d.push(noop()).is_ok(), "{}", D::name());
        }
        let stolen = d.steal_half();
        assert!(
            !stolen.is_empty() && stolen.len() <= MAX_BATCH,
            "{}: steal_half took {}",
            D::name(),
            stolen.len()
        );
        let mut total = stolen.len();
        loop {
            let s = d.steal_half();
            if s.is_empty() {
                break;
            }
            total += s.len();
        }
        while d.pop().is_some() {
            total += 1;
        }
        assert_eq!(total, 20, "{}: tasks lost or duplicated", D::name());
    }

    #[test]
    fn steal_half_conserves_all_impls() {
        steal_half_conserves::<ListWorkDeque>();
        steal_half_conserves::<ArrayWorkDeque>();
        steal_half_conserves::<SundellWorkDeque>();
        steal_half_conserves::<AbpWorkDeque>();
        steal_half_conserves::<MutexWorkDeque>();
    }

    /// `steal_half` only sees the shared level, so a tiered deque with
    /// fewer than `RING_CAP` tasks looks empty to thieves until the
    /// owner spills — but `flush_local` + pops still conserve every
    /// task.
    fn tiered_conserves<D: WorkDeque>() {
        let d = D::with_capacity(256);
        const N: usize = 100;
        for _ in 0..N {
            assert!(d.push(noop()).is_ok(), "{}", D::name());
        }
        // 100 pushes spill floor((100 - RING_CAP) / MAX_BATCH + 1) —
        // enough that thieves find work without the owner's help.
        let mut total = 0;
        loop {
            let s = d.steal_half();
            if s.is_empty() {
                break;
            }
            assert!(s.len() <= MAX_BATCH);
            total += s.len();
        }
        assert!(total > 0, "{}: spilled tasks must be stealable", D::name());
        while d.pop().is_some() {
            total += 1;
        }
        assert_eq!(total, N, "{}: tasks lost or duplicated", D::name());
    }

    #[test]
    fn tiered_conserves_all_impls() {
        tiered_conserves::<TieredListWorkDeque>();
        tiered_conserves::<TieredArrayWorkDeque>();
        tiered_conserves::<TieredChaseLevWorkDeque>();
    }

    #[test]
    fn chaselev_tier_is_stealable_before_any_spill() {
        let d = TieredChaseLevWorkDeque::with_capacity(0);
        for _ in 0..4 {
            assert!(d.push(noop()).is_ok());
        }
        // Nothing has spilled (4 < RING_CAP), yet a thief finds work —
        // the headline difference from the VecRing tier.
        assert!(matches!(d.steal(), StealOutcome::Stolen(_)));
        assert_eq!(d.tier_steals(), (1, 0));
        let mut total = 1;
        while d.pop().is_some() {
            total += 1;
        }
        assert_eq!(total, 4);
    }

    #[test]
    fn tiered_steal_provenance_counts_both_levels() {
        let d = TieredChaseLevWorkDeque::with_capacity(0);
        // Enough pushes to force at least one spill, with a remainder
        // left in the private tier.
        let n = RING_CAP + MAX_BATCH;
        for _ in 0..n {
            assert!(d.push(noop()).is_ok());
        }
        let mut stolen = 0usize;
        loop {
            let s = d.steal_half();
            if s.is_empty() {
                break;
            }
            stolen += s.len();
        }
        assert_eq!(stolen, n, "steals must drain both levels");
        let (private, shared) = d.tier_steals();
        assert_eq!(private + shared, stolen as u64);
        assert!(shared > 0, "spilled tasks come from the shared level");
        assert!(private > 0, "unspilled tasks come from the chaselev tier");
    }

    #[test]
    fn tiered_ring_is_private_until_spill() {
        let d = TieredListWorkDeque::with_capacity(0);
        // Below RING_CAP nothing is shared…
        for _ in 0..RING_CAP {
            assert!(d.push(noop()).is_ok());
        }
        assert!(matches!(d.steal(), StealOutcome::Empty));
        // …the next push spills exactly one batch of the oldest tasks…
        assert!(d.push(noop()).is_ok());
        let stolen = d.steal_half();
        assert!(!stolen.is_empty() && stolen.len() <= MAX_BATCH);
        // …and flush_local publishes the rest of the ring.
        let leftover = d.flush_local();
        assert!(leftover.is_empty(), "unbounded shared level never rejects");
        let mut total = stolen.len();
        loop {
            let s = d.steal_half();
            if s.is_empty() {
                break;
            }
            total += s.len();
        }
        assert_eq!(total, RING_CAP + 1);
        assert!(d.pop().is_none());
    }

    #[test]
    fn tiered_pop_refills_from_shared_in_lifo_order() {
        // Tasks are opaque closures, so order is observed through a
        // drop-guard each task captures: popping and dropping a task
        // appends its index to the log.
        use std::sync::{Arc, Mutex};
        struct Tag(usize, Arc<Mutex<Vec<usize>>>);
        impl Drop for Tag {
            fn drop(&mut self) {
                self.1.lock().unwrap().push(self.0);
            }
        }
        let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let tagged = |i: usize| -> Task {
            let guard = Tag(i, log.clone());
            Box::new(move |_| {
                let _ = &guard;
            })
        };
        let d = TieredListWorkDeque::with_capacity(0);
        const N: usize = RING_CAP + 2 * MAX_BATCH;
        for i in 0..N {
            assert!(d.push(tagged(i)).is_ok());
        }
        // Owner pops must return newest-first across the spill boundary:
        // the ring drains, then refills pull the spilled batches back.
        while let Some(t) = d.pop() {
            drop(t);
        }
        assert_eq!(*log.lock().unwrap(), (0..N).rev().collect::<Vec<_>>());
    }

    #[test]
    fn tiered_bounded_push_rejects_when_shared_full() {
        // Shared capacity 8 + ring RING_CAP: after both fill, pushes
        // must hand the task back instead of growing without bound.
        let d = TieredArrayWorkDeque::with_capacity(MAX_BATCH);
        let mut held = 0usize;
        let mut rejected = 0usize;
        for _ in 0..(RING_CAP + 3 * MAX_BATCH) {
            match d.push(noop()) {
                Ok(()) => held += 1,
                Err(t) => {
                    drop(t);
                    rejected += 1;
                }
            }
        }
        assert!(rejected > 0, "bounded tiered deque never rejected");
        let mut drained = 0usize;
        while d.pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, held, "tasks lost in bounded tiered deque");
    }

    #[test]
    fn push_batch_returns_overflow() {
        let d = ArrayWorkDeque::with_capacity(16);
        let rejected = d.push_batch((0..30).map(|_| noop()).collect());
        let mut held = 0;
        while d.pop().is_some() {
            held += 1;
        }
        assert_eq!(held + rejected.len(), 30, "tasks lost in push_batch");
        assert!(held <= 16);
        // Unbounded list deque never rejects.
        let d = ListWorkDeque::with_capacity(0);
        assert!(d.push_batch((0..30).map(|_| noop()).collect()).is_empty());
        let mut held = 0;
        while d.pop().is_some() {
            held += 1;
        }
        assert_eq!(held, 30);
    }

    #[test]
    fn steal_half_scales_with_size_hint() {
        let d = ListWorkDeque::with_capacity(0);
        // Two tasks: half is one.
        assert!(d.push(noop()).is_ok());
        assert!(d.push(noop()).is_ok());
        assert_eq!(d.steal_half().len(), 1);
        // A big pile: half clamps to MAX_BATCH.
        for _ in 0..100 {
            assert!(d.push(noop()).is_ok());
        }
        assert_eq!(d.steal_half().len(), MAX_BATCH);
    }
}
