//! The work-deque abstraction and its implementations.

use dcas::HarrisMcas;
use dcas_baselines::{AbpDeque, MutexDeque, Steal};
use dcas_deque::value::{Boxed, WordValue};
use dcas_deque::{ArrayDeque, ConcurrentDeque, ListDeque};

use crate::scheduler::Task;

/// Result of a steal attempt.
pub enum StealOutcome {
    /// The victim's deque was observed empty.
    Empty,
    /// Lost a race; try another victim.
    Retry,
    /// A task was stolen.
    Stolen(Task),
}

/// A per-worker deque of tasks. `push`/`pop` are called only by the
/// owning worker; `steal` by anyone.
pub trait WorkDeque: Send + Sync + 'static {
    /// Creates a deque able to hold at least `capacity` tasks (bounded
    /// implementations may refuse pushes beyond it).
    fn with_capacity(capacity: usize) -> Self;
    /// Owner: pushes a task; returns it back if the deque is full (the
    /// caller then runs it inline).
    fn push(&self, t: Task) -> Result<(), Task>;
    /// Owner: pops the most recently pushed task (LIFO, for locality).
    fn pop(&self) -> Option<Task>;
    /// Thief: takes the oldest task (FIFO, largest work first).
    fn steal(&self) -> StealOutcome;
    /// Implementation name for reporting.
    fn name() -> &'static str;
}

/// Work deque over the paper's unbounded linked-list deque.
pub struct ListWorkDeque(ListDeque<Task, HarrisMcas>);

impl WorkDeque for ListWorkDeque {
    fn with_capacity(_capacity: usize) -> Self {
        ListWorkDeque(ListDeque::new())
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        self.0.push_right(t).map_err(|e| e.into_inner())
    }

    fn pop(&self) -> Option<Task> {
        self.0.pop_right()
    }

    fn steal(&self) -> StealOutcome {
        match self.0.pop_left() {
            Some(t) => StealOutcome::Stolen(t),
            None => StealOutcome::Empty,
        }
    }

    fn name() -> &'static str {
        "list-dcas"
    }
}

/// Work deque over the paper's bounded array deque.
pub struct ArrayWorkDeque(ArrayDeque<Task, HarrisMcas>);

impl WorkDeque for ArrayWorkDeque {
    fn with_capacity(capacity: usize) -> Self {
        ArrayWorkDeque(ArrayDeque::new(capacity.max(1)))
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        self.0.push_right(t).map_err(|e| e.into_inner())
    }

    fn pop(&self) -> Option<Task> {
        self.0.pop_right()
    }

    fn steal(&self) -> StealOutcome {
        match self.0.pop_left() {
            Some(t) => StealOutcome::Stolen(t),
            None => StealOutcome::Empty,
        }
    }

    fn name() -> &'static str {
        "array-dcas"
    }
}

/// Work deque over the CAS-only ABP deque (the baseline built for this
/// exact access pattern).
pub struct AbpWorkDeque(AbpDeque);

impl WorkDeque for AbpWorkDeque {
    fn with_capacity(capacity: usize) -> Self {
        AbpWorkDeque(AbpDeque::new(capacity.max(1)))
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        let w = Boxed::new(t).encode();
        if self.0.push_bottom(w) {
            Ok(())
        } else {
            // SAFETY: `w` was just encoded and rejected; we reclaim it.
            Err(unsafe { Boxed::<Task>::decode(w) }.into_inner())
        }
    }

    fn pop(&self) -> Option<Task> {
        // SAFETY: words in the deque are exactly the `Boxed<Task>`
        // encodings pushed above, consumed once.
        self.0.pop_bottom().map(|w| unsafe { Boxed::<Task>::decode(w) }.into_inner())
    }

    fn steal(&self) -> StealOutcome {
        match self.0.steal() {
            // SAFETY: as above.
            Steal::Success(w) => {
                StealOutcome::Stolen(unsafe { Boxed::<Task>::decode(w) }.into_inner())
            }
            Steal::Empty => StealOutcome::Empty,
            Steal::Abort => StealOutcome::Retry,
        }
    }

    fn name() -> &'static str {
        "abp-cas"
    }
}

impl Drop for AbpWorkDeque {
    fn drop(&mut self) {
        // Reclaim any tasks left behind (scheduler aborts, panics).
        while let Some(w) = self.0.pop_bottom() {
            // SAFETY: as in `pop`.
            drop(unsafe { Boxed::<Task>::decode(w) });
        }
    }
}

/// Work deque over the lock-based baseline.
pub struct MutexWorkDeque(MutexDeque<Task>);

impl WorkDeque for MutexWorkDeque {
    fn with_capacity(_capacity: usize) -> Self {
        MutexWorkDeque(MutexDeque::new())
    }

    fn push(&self, t: Task) -> Result<(), Task> {
        ConcurrentDeque::push_right(&self.0, t).map_err(|e| e.into_inner())
    }

    fn pop(&self) -> Option<Task> {
        ConcurrentDeque::pop_right(&self.0)
    }

    fn steal(&self) -> StealOutcome {
        match ConcurrentDeque::pop_left(&self.0) {
            Some(t) => StealOutcome::Stolen(t),
            None => StealOutcome::Empty,
        }
    }

    fn name() -> &'static str {
        "mutex"
    }
}
