//! The fork-join scheduler.

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam_utils::CachePadded;

use crate::deques::WorkDeque;

/// A unit of work. Tasks receive a [`WorkerHandle`] through which they
/// spawn subtasks, [`join`](WorkerHandle::join) forked pairs, and
/// complete [`Continuation`]s.
pub type Task = Box<dyn for<'a> FnOnce(&WorkerHandle<'a, DynDeque>) + Send>;

/// A [`Task`] whose closure may still borrow from the spawning frame;
/// erased to `Task` only under `join`'s outlives proof.
type ScopedTask<'x> = Box<dyn for<'b> FnOnce(&WorkerHandle<'b, DynDeque>) + Send + 'x>;

/// Type-erasure point: the scheduler is generic over `D`, but tasks are
/// monomorphic over this alias so `Task` stays a simple boxed closure.
/// `DynDeque` is substituted per scheduler instantiation via transmute-free
/// indirection below.
pub struct DynDeque(());

// The public scheduler is generic over D; internally tasks close over a
// handle whose deque type is erased behind the `WorkerCtx` object: the
// handle exposes only operations that do not depend on D's type at the
// call site.

/// What a running task can ask of its worker, with the deque type
/// erased: queue a task, run other people's work while waiting, name
/// the worker.
trait WorkerCtx {
    /// The executing worker's index.
    fn worker_id(&self) -> usize;
    /// Queues `t` on this worker's deque; a bounded deque at capacity
    /// executes it inline instead (the standard overflow policy).
    fn spawn_task(&self, t: Task);
    /// Runs queued and stolen tasks until `done` reads `true` — the
    /// joiner's side of [`WorkerHandle::join`]: instead of blocking, the
    /// worker keeps the system busy (and may well execute the very task
    /// it is waiting for).
    fn help_until(&self, done: &AtomicBool);
}

/// Handle given to running tasks for spawning subtasks and inspecting the
/// worker.
pub struct WorkerHandle<'a, D: ?Sized> {
    ctx: &'a dyn WorkerCtx,
    _marker: std::marker::PhantomData<fn(&D)>,
}

impl<'a, D: ?Sized> WorkerHandle<'a, D> {
    fn new(ctx: &'a dyn WorkerCtx) -> WorkerHandle<'a, D> {
        WorkerHandle { ctx, _marker: std::marker::PhantomData }
    }

    /// The executing worker's index.
    pub fn worker_id(&self) -> usize {
        self.ctx.worker_id()
    }

    /// Schedules `f` for execution (on this worker's deque; other workers
    /// may steal it).
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'b> FnOnce(&WorkerHandle<'b, DynDeque>) + Send + 'static,
    {
        self.ctx.spawn_task(Box::new(f));
    }

    /// Runs `a` and `b`, potentially in parallel, and returns both
    /// results — the fork-join primitive. `b` is forked onto this
    /// worker's deque (so any worker may steal it) while `a` runs
    /// inline; the joiner then *helps* — executing queued and stolen
    /// tasks, very possibly `b` itself — until `b` has finished.
    ///
    /// Unlike [`spawn`](Self::spawn), the closures may borrow from the
    /// caller's stack (`join` does not return until both are done, so
    /// the borrows stay valid — the same contract as
    /// `std::thread::scope`), which is what lets quicksort fork
    /// `&mut` halves of a shared slice.
    ///
    /// If either closure panics, the panic propagates out of `join`
    /// after **both** have come to rest (`a`'s panic wins if both
    /// fail), so borrowed data is never touched by a task that outlives
    /// its frame.
    pub fn join<RA, RB, A, B>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce(&WorkerHandle<'_, DynDeque>) -> RA + Send,
        B: FnOnce(&WorkerHandle<'_, DynDeque>) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        struct JoinSlot<R> {
            done: AtomicBool,
            result: Mutex<Option<std::thread::Result<R>>>,
        }
        /// Captured by value into the forked task: sets `done` when the
        /// closure frame ends — or when the task is dropped unexecuted,
        /// so the joiner can never hang on a task that will never run.
        struct SignalOnDrop<'x>(&'x AtomicBool);
        impl Drop for SignalOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Release);
            }
        }

        let slot: JoinSlot<RB> =
            JoinSlot { done: AtomicBool::new(false), result: Mutex::new(None) };
        let slot_ref = &slot;
        let signal = SignalOnDrop(&slot.done);
        let task: ScopedTask<'_> = Box::new(move |w| {
                // `signal` is dropped last (reverse declaration order),
                // after the result is stored.
                let _signal = signal;
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b(w)));
                *slot_ref.result.lock().unwrap() = Some(r);
            });
        // SAFETY: the task borrows `b` and `slot` from this frame, and
        // `Task` demands 'static. The transmute only erases that
        // lifetime, which is sound because this frame provably outlives
        // the task: `help_until` below does not return until `done` is
        // set, and `done` is set exactly when the task's closure frame
        // ends (or the task is dropped unexecuted — `SignalOnDrop` is
        // captured by value), after its last access to the borrows.
        let task: Task = unsafe { std::mem::transmute::<ScopedTask<'_>, Task>(task) };
        self.ctx.spawn_task(task);

        // Run `a` inline; hold any panic until `b` is at rest, because
        // unwinding now would invalidate `b`'s borrows while it may
        // still be running on another worker.
        let inline = WorkerHandle::new(self.ctx);
        let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a(&inline)));
        self.ctx.help_until(&slot.done);
        let rb = slot.result.lock().unwrap().take();
        let ra = match ra {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        match rb {
            Some(Ok(v)) => (ra, v),
            Some(Err(payload)) => std::panic::resume_unwind(payload),
            None => panic!("join: forked task was dropped unexecuted"),
        }
    }

}

/// A countdown dependency: after `dependencies` calls to
/// [`finish`](Continuation::finish), the stored task is spawned. This is
/// the non-blocking way to express "run C once A and B are both done"
/// without a worker parked in [`join`](WorkerHandle::join):
///
/// ```
/// use dcas_workstealing::{Continuation, ListWorkDeque, Scheduler};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let total = Arc::new(AtomicU64::new(0));
/// let sched: Scheduler<ListWorkDeque> = Scheduler::new(2);
/// let t = total.clone();
/// sched.run(move |w| {
///     let t2 = t.clone();
///     let cont = Continuation::new(2, move |_w| {
///         t2.fetch_add(100, Ordering::Relaxed);
///     });
///     for _ in 0..2 {
///         let (t, cont) = (t.clone(), cont.clone());
///         w.spawn(move |w| {
///             t.fetch_add(1, Ordering::Relaxed);
///             cont.finish(w);
///         });
///     }
/// });
/// assert_eq!(total.load(Ordering::SeqCst), 102);
/// ```
pub struct Continuation {
    remaining: AtomicUsize,
    task: Mutex<Option<Task>>,
}

impl Continuation {
    /// A continuation that spawns `f` after `dependencies` completions.
    pub fn new<F>(dependencies: usize, f: F) -> Arc<Continuation>
    where
        F: for<'b> FnOnce(&WorkerHandle<'b, DynDeque>) + Send + 'static,
    {
        assert!(dependencies >= 1, "a continuation needs at least one dependency");
        Arc::new(Continuation {
            remaining: AtomicUsize::new(dependencies),
            task: Mutex::new(Some(Box::new(f))),
        })
    }

    /// Records one dependency completion; the final one spawns the
    /// stored task on `w`'s deque.
    pub fn finish<D: ?Sized>(self: &Arc<Self>, w: &WorkerHandle<'_, D>) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let task =
                self.task.lock().unwrap().take().expect("continuation finished too many times");
            w.ctx.spawn_task(task);
        }
    }
}

/// A fork-join work-stealing scheduler with one deque per worker.
pub struct Scheduler<D: WorkDeque> {
    workers: usize,
    capacity_per_worker: usize,
    _marker: std::marker::PhantomData<fn(&D)>,
}

/// Point-in-time scheduler telemetry, surfaced on [`RunReport::stats`].
///
/// The worker-loop counters (`tasks_executed` through
/// `overflow_inline`) are zero unless the crate's `stats` feature is
/// enabled — they compile to nothing otherwise, so release builds
/// without the feature pay no cost in the worker loop. The two steal
/// **provenance** counters are read from the deques themselves
/// ([`WorkDeque::tier_steals`]) after the run and are live whenever the
/// deque maintains them (the tiered deques always do; flat deques
/// report zero).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// Tasks executed to completion or panic (includes inline overflow
    /// execution).
    pub tasks_executed: u64,
    /// Successful steal attempts (at least one task taken).
    pub steals: u64,
    /// Total tasks transferred by successful steals (`steal_half`
    /// batches).
    pub stolen_tasks: u64,
    /// Steal attempts that found the victim's deque empty.
    pub steal_misses: u64,
    /// Tasks executed inline because the worker's bounded deque was full.
    pub overflow_inline: u64,
    /// Tasks thieves took directly from owners' private tiers (only a
    /// stealable tier — the Chase–Lev one — can be nonzero here).
    pub steals_private_tier: u64,
    /// Tasks thieves took from the shared linearizable level of tiered
    /// deques.
    pub steals_shared_tier: u64,
}

impl SchedStats {
    /// Name/value pairs for every counter, in declaration order — the
    /// stable iteration surface for exporters (e.g. `crates/obs`).
    pub fn fields(&self) -> [(&'static str, u64); 7] {
        [
            ("tasks_executed", self.tasks_executed),
            ("steals", self.steals),
            ("stolen_tasks", self.stolen_tasks),
            ("steal_misses", self.steal_misses),
            ("overflow_inline", self.overflow_inline),
            ("steals_private_tier", self.steals_private_tier),
            ("steals_shared_tier", self.steals_shared_tier),
        ]
    }
}

/// Number of cache-line-padded counter lines in a [`SchedCounters`]
/// block. Every worker's every task bumps `tasks_executed`, so a single
/// shared line would put one guaranteed-contended cache line into the
/// per-task hot path whenever stats are on; striping by thread keeps
/// each worker's increments on its own line (same layout treatment as
/// the DCAS strategy counters in `dcas::stats`).
#[cfg(feature = "stats")]
const SCHED_STRIPES: usize = 8;

/// One stripe's counters (all five fit one padded line).
#[cfg(feature = "stats")]
#[derive(Debug, Default)]
struct SchedCounterLine {
    tasks_executed: std::sync::atomic::AtomicU64,
    steals: std::sync::atomic::AtomicU64,
    stolen_tasks: std::sync::atomic::AtomicU64,
    steal_misses: std::sync::atomic::AtomicU64,
    overflow_inline: std::sync::atomic::AtomicU64,
}

/// The calling thread's stripe, assigned round-robin on first use.
#[cfg(feature = "stats")]
#[inline]
fn sched_stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    IDX.with(|i| *i) & (SCHED_STRIPES - 1)
}

/// Internal counter block; zero-sized and all-no-op without `stats`,
/// a striped array of padded per-thread lines with it.
#[derive(Debug, Default)]
struct SchedCounters {
    #[cfg(feature = "stats")]
    stripes: [CachePadded<SchedCounterLine>; SCHED_STRIPES],
}

macro_rules! sched_counter_add {
    ($($inc:ident => $field:ident;)*) => {$(
        #[inline]
        #[allow(unused_variables)]
        fn $inc(&self, n: u64) {
            #[cfg(feature = "stats")]
            self.stripes[sched_stripe_index()].$field.fetch_add(n, Ordering::Relaxed);
        }
    )*};
}

impl SchedCounters {
    sched_counter_add! {
        add_task_executed => tasks_executed;
        add_steal => steals;
        add_stolen_tasks => stolen_tasks;
        add_steal_miss => steal_misses;
        add_overflow_inline => overflow_inline;
    }

    fn snapshot(&self) -> SchedStats {
        #[cfg(feature = "stats")]
        {
            let mut s = SchedStats::default();
            for line in self.stripes.iter() {
                s.tasks_executed += line.tasks_executed.load(Ordering::Relaxed);
                s.steals += line.steals.load(Ordering::Relaxed);
                s.stolen_tasks += line.stolen_tasks.load(Ordering::Relaxed);
                s.steal_misses += line.steal_misses.load(Ordering::Relaxed);
                s.overflow_inline += line.overflow_inline.load(Ordering::Relaxed);
            }
            s
        }
        #[cfg(not(feature = "stats"))]
        SchedStats::default()
    }
}

struct Shared<D> {
    deques: Vec<CachePadded<D>>,
    /// Tasks spawned but not yet finished executing.
    pending: CachePadded<AtomicUsize>,
    /// Tasks that panicked during this run.
    panics: CachePadded<AtomicUsize>,
    /// First panic payload, rethrown by [`Scheduler::run`].
    first_panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Telemetry counters (`stats` feature; zero-sized otherwise).
    counters: SchedCounters,
}

impl<D> Shared<D> {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        self.panics.fetch_add(1, Ordering::AcqRel);
        let mut slot = self.first_panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// Outcome of a [`Scheduler::run_report`] call.
pub struct RunReport {
    /// Tasks that panicked. Each panic killed its worker thread; the
    /// survivors finished the run (stealing from the dead worker's
    /// deque as needed).
    pub panics: usize,
    /// Tasks dropped unexecuted because every worker had died. Always
    /// zero while at least one worker survives.
    pub dropped: usize,
    /// Scheduler telemetry for the run (all zero unless the `stats`
    /// feature is enabled).
    pub stats: SchedStats,
    first_panic: Option<Box<dyn Any + Send>>,
}

impl RunReport {
    /// The payload of the first panic, if any (consumes the report; use
    /// with [`std::panic::resume_unwind`] to rethrow).
    pub fn into_first_panic(self) -> Option<Box<dyn Any + Send>> {
        self.first_panic
    }
}

impl std::fmt::Debug for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunReport")
            .field("panics", &self.panics)
            .field("dropped", &self.dropped)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<D: WorkDeque> Scheduler<D> {
    /// Creates a scheduler with `workers` worker threads.
    pub fn new(workers: usize) -> Self {
        Self::with_capacity(workers, 1 << 16)
    }

    /// Creates a scheduler whose per-worker deques hold at least
    /// `capacity_per_worker` tasks (bounded deque implementations execute
    /// overflow inline).
    pub fn with_capacity(workers: usize, capacity_per_worker: usize) -> Self {
        assert!(workers >= 1);
        Scheduler {
            workers,
            capacity_per_worker,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs `root` (plus everything it transitively spawns) to
    /// completion, then returns. Tasks still queued when the run drains
    /// are guaranteed executed.
    ///
    /// If any task panics, the panic is rethrown here after the run
    /// finishes — the surviving workers first complete every remaining
    /// task (see [`run_report`](Self::run_report) to observe panics
    /// without unwinding).
    pub fn run<F>(&self, root: F)
    where
        F: for<'a> FnOnce(&WorkerHandle<'a, DynDeque>) + Send + 'static,
    {
        let report = self.run_report(root);
        if let Some(payload) = report.into_first_panic() {
            std::panic::resume_unwind(payload);
        }
    }

    /// Like [`run`](Self::run), but a panicking task kills only its own
    /// worker: the panic is caught and recorded, the worker thread exits,
    /// and the dead worker's deque remains stealable so survivors finish
    /// the remaining work. Returns a [`RunReport`] instead of unwinding.
    ///
    /// Only when *every* worker has died are leftover tasks dropped
    /// unexecuted (and counted in [`RunReport::dropped`]).
    pub fn run_report<F>(&self, root: F) -> RunReport
    where
        F: for<'a> FnOnce(&WorkerHandle<'a, DynDeque>) + Send + 'static,
    {
        let shared = Arc::new(Shared {
            deques: (0..self.workers)
                .map(|_| CachePadded::new(D::with_capacity(self.capacity_per_worker)))
                .collect(),
            pending: CachePadded::new(AtomicUsize::new(1)),
            panics: CachePadded::new(AtomicUsize::new(0)),
            first_panic: Mutex::new(None),
            counters: SchedCounters::default(),
        });
        // Seed worker 0.
        let root: Task = Box::new(root);
        shared.deques[0].push(root).unwrap_or_else(|t| {
            // A zero-capacity deque: degenerate but legal; run inline via
            // the worker loop by requeueing. In practice capacity >= 1.
            drop(t);
            panic!("work deque rejected the root task");
        });

        std::thread::scope(|s| {
            for id in 0..self.workers {
                let shared = shared.clone();
                s.spawn(move || worker_loop::<D>(id, shared));
            }
        });

        // If every worker died, tasks may be stranded in the deques.
        // Drop them (the closures' captures still run their destructors)
        // and account for them so `pending` balances.
        let mut dropped = 0usize;
        for d in &shared.deques {
            while let Some(task) = d.pop() {
                drop(task);
                dropped += 1;
                shared.pending.fetch_sub(1, Ordering::AcqRel);
            }
        }
        let panics = shared.panics.load(Ordering::SeqCst);
        debug_assert!(
            panics > 0
                || (dropped == 0 && shared.pending.load(Ordering::SeqCst) == 0),
            "pending-task accounting drifted without any panic"
        );
        let first_panic = shared.first_panic.lock().unwrap().take();
        let mut stats = shared.counters.snapshot();
        // Steal provenance lives on the deques (always on — it is not a
        // worker-loop hot-path counter), summed here across workers.
        for d in shared.deques.iter() {
            let (private, shared_level) = d.tier_steals();
            stats.steals_private_tier += private;
            stats.steals_shared_tier += shared_level;
        }
        RunReport { panics, dropped, stats, first_panic }
    }
}

/// The per-worker [`WorkerCtx`]: the deque type lives here, behind the
/// trait object the handles carry. One `Ctx` exists per worker thread
/// per `execute` frame; `poisoned` latches panics from tasks run
/// *inside* the frame (inline overflow, help-loop work) that cannot
/// unwind out through the `&dyn` boundary as a return value.
struct Ctx<'s, D: WorkDeque> {
    id: usize,
    shared: &'s Shared<D>,
    poisoned: &'s AtomicBool,
    /// xorshift state for help-loop victim selection.
    rng: Cell<u64>,
}

impl<D: WorkDeque> Ctx<'_, D> {
    fn run_one(&self, task: Task) {
        if !run_task(self.shared, task, &WorkerHandle::new(self)) {
            self.poisoned.store(true, Ordering::Release);
        }
    }
}

impl<D: WorkDeque> WorkerCtx for Ctx<'_, D> {
    fn worker_id(&self) -> usize {
        self.id
    }

    fn spawn_task(&self, t: Task) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        if let Err(t) = self.shared.deques[self.id].push(t) {
            // Bounded deque full: run inline (standard overflow policy).
            // The inline task spawns through this same ctx, so its own
            // children retry the deque first.
            self.shared.counters.add_overflow_inline(1);
            self.run_one(t);
        }
    }

    fn help_until(&self, done: &AtomicBool) {
        let n = self.shared.deques.len();
        while !done.load(Ordering::Acquire) {
            // Own deque first (LIFO) — the awaited task is most likely
            // still right here.
            if let Some(task) = self.shared.deques[self.id].pop() {
                self.run_one(task);
                continue;
            }
            // Otherwise steal, exactly like the worker loop's policy.
            let mut rng = self.rng.get();
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            self.rng.set(rng);
            let victim = (rng as usize) % n;
            if victim == self.id {
                std::hint::spin_loop();
                continue;
            }
            let mut stolen = self.shared.deques[victim].steal_half().into_iter();
            match stolen.next() {
                None => {
                    self.shared.counters.add_steal_miss(1);
                    std::hint::spin_loop();
                }
                Some(first) => {
                    let mut rest: Vec<Task> = stolen.collect();
                    self.shared.counters.add_steal(1);
                    self.shared.counters.add_stolen_tasks(1 + rest.len() as u64);
                    let mut overflow = Vec::new();
                    if !rest.is_empty() {
                        rest.reverse();
                        overflow = self.shared.deques[self.id].push_batch(rest);
                    }
                    self.run_one(first);
                    // Rejected surplus is in nobody's deque: run it now,
                    // reversed back to oldest-first, even if `done` flipped.
                    for task in overflow.into_iter().rev() {
                        self.run_one(task);
                    }
                }
            }
        }
    }
}

fn worker_loop<D: WorkDeque>(id: usize, shared: Arc<Shared<D>>) {
    let mut rng: u64 = 0x9E3779B97F4A7C15u64.wrapping_mul(id as u64 + 1) | 1;
    let n = shared.deques.len();
    loop {
        // Drain own deque first (LIFO). A panicking task poisons this
        // worker: it exits immediately, leaving its deque for thieves.
        while let Some(task) = shared.deques[id].pop() {
            if !execute::<D>(id, &shared, task) {
                abandon::<D>(id, &shared);
                return;
            }
        }
        // Steal from a random victim.
        if shared.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let victim = (rng as usize) % n;
        if victim != id {
            // Steal up to half the victim's tasks in one batch, run the
            // oldest, and queue the surplus locally so the next pops (and
            // rival thieves) find work without another steal.
            let mut stolen = shared.deques[victim].steal_half().into_iter();
            match stolen.next() {
                None => {
                    shared.counters.add_steal_miss(1);
                    std::hint::spin_loop();
                }
                Some(first) => {
                    let mut rest: Vec<Task> = stolen.collect();
                    shared.counters.add_steal(1);
                    shared.counters.add_stolen_tasks(1 + rest.len() as u64);
                    let mut overflow = Vec::new();
                    if !rest.is_empty() {
                        // Reversed, so the owner's LIFO pops run the
                        // re-queued tasks oldest-first (preserving the
                        // FIFO order they were stolen in).
                        rest.reverse();
                        overflow = shared.deques[id].push_batch(rest);
                    }
                    let mut alive = execute::<D>(id, &shared, first);
                    // Bounded deque full: run the rejected tail inline,
                    // after `first` and reversed back to oldest-first, so
                    // the stolen half still executes oldest-first. Even a
                    // poisoned worker finishes the batch it already popped
                    // — these tasks are in nobody's deque, so dying here
                    // would silently drop them.
                    for task in overflow.into_iter().rev() {
                        alive &= execute::<D>(id, &shared, task);
                    }
                    if !alive {
                        abandon::<D>(id, &shared);
                        return;
                    }
                }
            }
        }
    }
}

/// Publishes a dying worker's privately buffered tasks (two-level
/// deques' tiers, plus any mid-spill staged chunk) so survivors can
/// steal them — otherwise `pending` never reaches zero and the other
/// workers spin forever. Tasks the shared level rejects (bounded and
/// full) are in nobody's deque, so even a poisoned worker must run them
/// before exiting, mirroring the stolen-batch overflow policy above.
fn abandon<D: WorkDeque>(id: usize, shared: &Arc<Shared<D>>) {
    for task in shared.deques[id].flush_local() {
        shared.counters.add_overflow_inline(1);
        let _ = execute::<D>(id, shared, task);
    }
}

/// Runs one task, converting a panic into a recorded death. Returns
/// `false` if the task panicked. `pending` is decremented either way:
/// the task is *finished*, just not successfully.
fn run_task<D>(
    shared: &Shared<D>,
    task: Task,
    handle: &WorkerHandle<'_, DynDeque>,
) -> bool {
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(handle)));
    shared.pending.fetch_sub(1, Ordering::AcqRel);
    shared.counters.add_task_executed(1);
    match outcome {
        Ok(()) => true,
        Err(payload) => {
            shared.record_panic(payload);
            false
        }
    }
}

/// Executes `task` on worker `id`. Returns `false` if `task` — or any
/// subtask it forced inline through a full bounded deque, or ran while
/// helping a `join` — panicked, in which case the caller must treat the
/// worker as dead.
fn execute<D: WorkDeque>(id: usize, shared: &Arc<Shared<D>>, task: Task) -> bool {
    let poisoned = AtomicBool::new(false);
    let ctx = Ctx {
        id,
        shared,
        poisoned: &poisoned,
        rng: Cell::new(0x9E3779B97F4A7C15u64.wrapping_mul(id as u64 + 1) | 1),
    };
    let ok = run_task(shared, task, &WorkerHandle::new(&ctx));
    ok && !poisoned.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deques::{
        AbpWorkDeque, ArrayWorkDeque, ListWorkDeque, MutexWorkDeque, SundellWorkDeque,
        TieredArrayWorkDeque,
        TieredListWorkDeque,
    };
    use std::sync::atomic::AtomicU64;

    fn tree_count<D: WorkDeque>(workers: usize, depth: u32) -> u64 {
        let leaves = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<D> = Scheduler::new(workers);
        let l = leaves.clone();
        sched.run(move |w| spawn_tree(w, depth, l));
        leaves.load(Ordering::SeqCst)
    }

    fn spawn_tree(
        w: &WorkerHandle<'_, DynDeque>,
        depth: u32,
        leaves: Arc<AtomicU64>,
    ) {
        if depth == 0 {
            leaves.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let l = leaves.clone();
        w.spawn(move |w| spawn_tree(w, depth - 1, l));
        let r = leaves.clone();
        w.spawn(move |w| spawn_tree(w, depth - 1, r));
    }

    #[test]
    fn list_deque_tree() {
        assert_eq!(tree_count::<ListWorkDeque>(4, 12), 1 << 12);
    }

    #[test]
    fn array_deque_tree() {
        assert_eq!(tree_count::<ArrayWorkDeque>(4, 12), 1 << 12);
    }

    #[test]
    fn sundell_deque_tree() {
        assert_eq!(tree_count::<SundellWorkDeque>(4, 12), 1 << 12);
    }

    #[test]
    fn abp_deque_tree() {
        assert_eq!(tree_count::<AbpWorkDeque>(4, 12), 1 << 12);
    }

    #[test]
    fn mutex_deque_tree() {
        assert_eq!(tree_count::<MutexWorkDeque>(4, 12), 1 << 12);
    }

    #[test]
    fn tiered_list_deque_tree() {
        assert_eq!(tree_count::<TieredListWorkDeque>(4, 12), 1 << 12);
    }

    #[test]
    fn tiered_array_deque_tree() {
        assert_eq!(tree_count::<TieredArrayWorkDeque>(4, 12), 1 << 12);
    }

    #[test]
    fn single_worker_runs_everything() {
        assert_eq!(tree_count::<ListWorkDeque>(1, 10), 1 << 10);
    }

    #[test]
    fn tiered_single_worker_runs_everything() {
        assert_eq!(tree_count::<TieredListWorkDeque>(1, 10), 1 << 10);
    }

    #[test]
    fn tiered_tiny_bounded_shared_level_overflows_inline() {
        // A capacity-2 shared level forces both the spill-rejection path
        // in `TieredDeque::push` and the scheduler's inline-overflow
        // path; every leaf must still be counted exactly once.
        let leaves = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<TieredArrayWorkDeque> = Scheduler::with_capacity(3, 2);
        let l = leaves.clone();
        sched.run(move |w| spawn_tree(w, 10, l));
        assert_eq!(leaves.load(Ordering::SeqCst), 1 << 10);
    }

    #[test]
    fn tiered_worker_death_publishes_ring() {
        // Worker poisoning must not strand ring-buffered tasks: one task
        // panics after forking a deep tree; the run still terminates and
        // counts every remaining leaf. (Without the death-flush this
        // hangs: `pending` can never reach zero.)
        let leaves = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<TieredListWorkDeque> = Scheduler::new(3);
        let l = leaves.clone();
        let report = sched.run_report(move |w| {
            for _ in 0..4 {
                let l = l.clone();
                w.spawn(move |w| spawn_tree(w, 8, l));
            }
            w.spawn(|_| panic!("poison this worker"));
        });
        assert_eq!(report.panics, 1);
        assert_eq!(leaves.load(Ordering::SeqCst), 4 << 8);
    }

    #[test]
    fn tiny_bounded_deque_overflows_inline() {
        // Capacity 2 forces the inline-overflow path constantly.
        let leaves = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<ArrayWorkDeque> = Scheduler::with_capacity(3, 2);
        let l = leaves.clone();
        sched.run(move |w| spawn_tree(w, 10, l));
        assert_eq!(leaves.load(Ordering::SeqCst), 1 << 10);
    }

    #[test]
    fn sequential_dependencies_respected() {
        // A chain of tasks each appending to a shared log; the scheduler
        // guarantees all complete before `run` returns (order is free).
        let log = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(2);
        let l = log.clone();
        sched.run(move |w| {
            for _ in 0..100 {
                let l = l.clone();
                w.spawn(move |_| {
                    l.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(log.load(Ordering::SeqCst), 100);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::deques::{AbpWorkDeque, ListWorkDeque};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn worker_ids_are_in_range() {
        let seen = Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(3);
        let s2 = seen.clone();
        sched.run(move |w| {
            for _ in 0..200 {
                let s3 = s2.clone();
                w.spawn(move |w| {
                    s3[w.worker_id()].fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        let total: usize = seen.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn deeply_sequential_chain() {
        // A chain where each task spawns exactly one successor: no
        // parallelism to exploit, but the scheduler must still terminate
        // with the full count.
        let count = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<AbpWorkDeque> = Scheduler::new(4);
        let c = count.clone();
        fn link(w: &WorkerHandle<'_, DynDeque>, left: u64, c: Arc<AtomicU64>) {
            c.fetch_add(1, Ordering::Relaxed);
            if left > 0 {
                w.spawn(move |w| link(w, left - 1, c));
            }
        }
        sched.run(move |w| link(w, 5_000, c));
        assert_eq!(count.load(Ordering::SeqCst), 5_001);
    }

    #[test]
    fn wide_flat_fanout() {
        // One root spawning many leaves: exercises stealing from a single
        // victim.
        let count = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(4);
        let c = count.clone();
        sched.run(move |w| {
            for _ in 0..20_000 {
                let c = c.clone();
                w.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 20_000);
    }

    #[test]
    fn panicking_task_kills_only_its_worker() {
        // One task panics; the survivors must still finish all other
        // work, and run_report must count exactly one panic.
        let count = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(4);
        let c = count.clone();
        let report = sched.run_report(move |w| {
            for i in 0..2_000 {
                let c = c.clone();
                w.spawn(move |_| {
                    if i == 700 {
                        panic!("injected task panic");
                    }
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(report.panics, 1);
        assert_eq!(report.dropped, 0, "survivors must drain all work");
        assert_eq!(count.load(Ordering::SeqCst), 1_999);
        let payload = report.into_first_panic().expect("payload recorded");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "injected task panic");
    }

    #[test]
    fn run_rethrows_first_panic() {
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sched.run(|w| {
                w.spawn(|_| panic!("boom from task"));
            });
        }))
        .expect_err("run must rethrow the task panic");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom from task");
    }

    #[test]
    fn all_workers_dead_drops_remaining_tasks() {
        // A single worker that panics on its first task strands the
        // rest; run_report must count (and destruct) the strays rather
        // than hang or leak.
        let count = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(1);
        let c = count.clone();
        let report = sched.run_report(move |w| {
            for _ in 0..10 {
                let c = c.clone();
                w.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            panic!("root dies after spawning");
        });
        assert_eq!(report.panics, 1);
        // LIFO pops mean the 10 spawned tasks were still queued when the
        // root panicked and the lone worker died.
        assert_eq!(report.dropped, 10);
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn multiple_panics_all_counted() {
        let count = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<AbpWorkDeque> = Scheduler::new(4);
        let c = count.clone();
        let report = sched.run_report(move |w| {
            for i in 0..1_000 {
                let c = c.clone();
                w.spawn(move |_| {
                    if i % 400 == 7 {
                        panic!("recurring fault");
                    }
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // i = 7, 407, 807 panic; up to 3 workers may die, but the fourth
        // survives and completes everything else.
        assert_eq!(report.panics, 3);
        assert_eq!(report.dropped, 0);
        assert_eq!(count.load(Ordering::SeqCst), 997);
    }

    #[test]
    fn run_report_stats_count_tasks() {
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(4);
        let report = sched.run_report(|w| {
            for _ in 0..500 {
                w.spawn(|_| {});
            }
        });
        assert_eq!(report.panics, 0);
        #[cfg(feature = "stats")]
        {
            // Root + 500 spawned tasks, each executed exactly once.
            assert_eq!(report.stats.tasks_executed, 501);
            assert_eq!(
                report.stats.fields()[0],
                ("tasks_executed", report.stats.tasks_executed)
            );
        }
        #[cfg(not(feature = "stats"))]
        assert_eq!(report.stats, SchedStats::default());
    }

    #[test]
    fn run_twice_reuses_scheduler() {
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(2);
        for round in 0..3u64 {
            let count = Arc::new(AtomicU64::new(0));
            let c = count.clone();
            sched.run(move |w| {
                for _ in 0..100 {
                    let c = c.clone();
                    w.spawn(move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(count.load(Ordering::SeqCst), 100, "round {round}");
        }
    }
}

#[cfg(test)]
mod forkjoin_tests {
    use super::*;
    use crate::deques::{ListWorkDeque, TieredChaseLevWorkDeque};
    use std::sync::atomic::{AtomicU64, AtomicUsize};

    fn fib_seq(n: u64) -> u64 {
        if n < 2 { n } else { fib_seq(n - 1) + fib_seq(n - 2) }
    }

    fn fib(w: &WorkerHandle<'_, DynDeque>, n: u64) -> u64 {
        if n < 10 {
            return fib_seq(n);
        }
        let (a, b) = w.join(|w| fib(w, n - 1), |w| fib(w, n - 2));
        a + b
    }

    #[test]
    fn join_fib_on_list_deque() {
        let out = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(4);
        let o = out.clone();
        sched.run(move |w| {
            o.store(fib(w, 20), Ordering::SeqCst);
        });
        assert_eq!(out.load(Ordering::SeqCst), 6765);
    }

    #[test]
    fn join_fib_on_chaselev_tier() {
        let out = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<TieredChaseLevWorkDeque> = Scheduler::new(4);
        let o = out.clone();
        sched.run(move |w| {
            o.store(fib(w, 22), Ordering::SeqCst);
        });
        assert_eq!(out.load(Ordering::SeqCst), 17711);
    }

    #[test]
    fn chaselev_tier_tree() {
        // The classic spawn-tree also runs on the Chase-Lev tier.
        let leaves = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<TieredChaseLevWorkDeque> = Scheduler::new(4);
        let l = leaves.clone();
        fn tree(w: &WorkerHandle<'_, DynDeque>, depth: u32, l: Arc<AtomicU64>) {
            if depth == 0 {
                l.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let a = l.clone();
            w.spawn(move |w| tree(w, depth - 1, a));
            let b = l;
            w.spawn(move |w| tree(w, depth - 1, b));
        }
        sched.run(move |w| tree(w, 12, l));
        assert_eq!(leaves.load(Ordering::SeqCst), 1 << 12);
    }

    fn quicksort(w: &WorkerHandle<'_, DynDeque>, v: &mut [u64]) {
        if v.len() <= 16 {
            v.sort_unstable();
            return;
        }
        let pivot = v[v.len() / 2];
        // Lomuto partition: `[0, i)` < pivot, `[i, len)` >= pivot.
        let mut i = 0;
        for j in 0..v.len() {
            if v[j] < pivot {
                v.swap(i, j);
                i += 1;
            }
        }
        if i == 0 {
            // Pivot is the minimum: park every copy of it at the front
            // (already in final position) so the recursion shrinks.
            for j in 0..v.len() {
                if v[j] == pivot {
                    v.swap(i, j);
                    i += 1;
                }
            }
            quicksort(w, &mut v[i..]);
            return;
        }
        let (lo, hi) = v.split_at_mut(i);
        w.join(|w| quicksort(w, lo), |w| quicksort(w, hi));
    }

    #[test]
    fn join_quicksort_borrowed_slices() {
        // join's scoped closures let the two halves borrow disjoint
        // &mut sub-slices of one Vec — only the root task needs 'static,
        // so the Vec rides in behind an Arc<Mutex<..>> and every split
        // below it is a plain reborrow.
        let v: Vec<u64> =
            (0..4096u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 32).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        let data = Arc::new(std::sync::Mutex::new(v));
        let sched: Scheduler<TieredChaseLevWorkDeque> = Scheduler::new(4);
        let d = data.clone();
        sched.run(move |w| {
            let mut guard = d.lock().unwrap();
            quicksort(w, &mut guard[..]);
        });
        assert_eq!(*data.lock().unwrap(), expect);
    }

    #[test]
    fn join_runs_both_closures_once() {
        let a_runs = Arc::new(AtomicUsize::new(0));
        let b_runs = Arc::new(AtomicUsize::new(0));
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(2);
        let (ar, br) = (a_runs.clone(), b_runs.clone());
        sched.run(move |w| {
            let (ra, rb) = w.join(
                |_| {
                    ar.fetch_add(1, Ordering::Relaxed);
                    11u32
                },
                |_| {
                    br.fetch_add(1, Ordering::Relaxed);
                    22u32
                },
            );
            assert_eq!((ra, rb), (11, 22));
        });
        assert_eq!(a_runs.load(Ordering::SeqCst), 1);
        assert_eq!(b_runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn join_propagates_b_panic_to_joiner() {
        // A panic in the forked side must surface in the joiner's task,
        // not kill a random helper, and be counted exactly once.
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(3);
        let report = sched.run_report(|w| {
            let _ = w.join(|_| 1u32, |_| -> u32 { panic!("b dies") });
            unreachable!("join must rethrow b's panic");
        });
        assert_eq!(report.panics, 1);
    }

    #[test]
    fn join_prefers_a_panic_over_b() {
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(2);
        let report = sched.run_report(|w| {
            let _ = w.join(
                |_| -> u32 { panic!("a dies") },
                |_| -> u32 { panic!("b dies") },
            );
        });
        // Exactly one task records a panic: b's unwinds into the join
        // slot (never reaching the scheduler), and the joiner rethrows
        // a's payload after waiting for b to come to rest.
        assert_eq!(report.panics, 1);
        let payload = report.into_first_panic().expect("payload recorded");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "a dies", "joiner must rethrow a's panic first");
    }

    #[test]
    fn join_nested_under_dead_workers() {
        // Poison two of four workers, then run a join-heavy workload on
        // the survivors; it must still complete with the right answer.
        let out = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<TieredChaseLevWorkDeque> = Scheduler::new(4);
        let o = out.clone();
        let report = sched.run_report(move |w| {
            w.spawn(|_| panic!("die 1"));
            w.spawn(|_| panic!("die 2"));
            let r = fib(w, 18);
            o.store(r, Ordering::SeqCst);
        });
        assert_eq!(report.panics, 2);
        assert_eq!(out.load(Ordering::SeqCst), 2584);
    }

    #[test]
    fn continuation_diamond() {
        // Diamond dependency: two parallel arms, a continuation that runs
        // only after both finish.
        let sum = Arc::new(AtomicU64::new(0));
        let after = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(3);
        let (s, a) = (sum.clone(), after.clone());
        sched.run(move |w| {
            let s2 = s.clone();
            let a2 = a.clone();
            let cont = Continuation::new(2, move |_| {
                // Both arms are done: their sum is stable.
                a2.store(s2.load(Ordering::SeqCst), Ordering::SeqCst);
            });
            for add in [3u64, 39] {
                let s = s.clone();
                let cont = cont.clone();
                w.spawn(move |w| {
                    s.fetch_add(add, Ordering::SeqCst);
                    cont.finish(w);
                });
            }
        });
        assert_eq!(after.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn continuation_many_dependencies() {
        let fired = Arc::new(AtomicUsize::new(0));
        let sched: Scheduler<TieredChaseLevWorkDeque> = Scheduler::new(4);
        let f = fired.clone();
        sched.run(move |w| {
            let f2 = f.clone();
            let cont = Continuation::new(64, move |_| {
                f2.fetch_add(1, Ordering::SeqCst);
            });
            for _ in 0..64 {
                let cont = cont.clone();
                w.spawn(move |w| cont.finish(w));
            }
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }
}
