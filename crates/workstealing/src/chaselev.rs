//! A growable circular-array **Chase–Lev** work-stealing deque.
//!
//! This is the classic single-owner deque from Chase & Lev, *Dynamic
//! Circular Work-Stealing Deque* (SPAA 2005), with the C11 memory
//! orderings from Lê, Pop, Cohen & Zappa Nardelli, *Correct and
//! Efficient Work-Stealing for Weak Memory Models* (PPoPP 2013):
//!
//! * **Owner** operations (`push`, `pop`) touch only the *bottom* end.
//!   The push fast path is a plain slot write followed by a single
//!   `Release` fence and a relaxed bottom store — no CAS, no RMW.
//! * **Thieves** (`steal`) take from the *top* end with one `SeqCst`
//!   compare-and-swap; a lost race reports [`Steal::Retry`] rather than
//!   spinning internally, so callers choose their own back-off.
//! * The array is a power-of-two **circular buffer** that grows by
//!   doubling. Growth copies only the live window `[top, bottom)` —
//!   stale slots are never touched — and publishes the new buffer with
//!   a single `Release` store of the buffer pointer.
//!
//! # Memory reclamation without an epoch scheme
//!
//! A thief may hold a pointer to a buffer the owner has since replaced.
//! Rather than pulling in epoch-based reclamation, retired buffers are
//! parked on an owner-private list and freed only when the deque itself
//! drops (the oflux `CircularWorkStealingDeque` approach). A deque that
//! grew from 64 to 2²ᵏ slots wastes one extra array's worth of memory
//! (the geometric series of smaller retired buffers sums to less than
//! the final buffer), which is the documented Chase–Lev trade-off for
//! keeping steals wait-free.
//!
//! # Why a stale buffer read is still correct
//!
//! A thief reads `slots[t % cap]` from whatever buffer pointer it
//! loaded, *then* CASes `top: t -> t+1`. If the CAS succeeds, index `t`
//! was still ≥ `top` when the copy was made (growth copies `[top,
//! bottom)` and the owner never rewrites index `t` while `bottom - t <
//! cap - 1` holds), so the old and new buffers hold identical bytes for
//! index `t`. If the CAS fails, the speculatively copied bytes may be
//! torn garbage — which is why the read lands in a [`MaybeUninit`] that
//! is only `assume_init`-ed after the CAS succeeds (the crossbeam-deque
//! discipline for non-`Copy` payloads).

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::atomic::{fence, AtomicI64, AtomicPtr};

use crossbeam_utils::CachePadded;

/// Smallest buffer ever allocated; keeps the growth path off the fast
/// path for shallow recursions.
const MIN_CAP: usize = 64;

/// Outcome of a [`ChaseLev::steal`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner's last-element pop or another thief;
    /// the deque may or may not still hold work.
    Retry,
    /// Successfully claimed the oldest element.
    Stolen(T),
}

/// One circular buffer generation. `cap` is always a power of two so
/// the index wrap is a mask, as in the oflux circular deque.
struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> Box<Buffer<T>> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer { slots, mask: cap - 1 })
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    /// Raw pointer to the slot for global index `i`.
    ///
    /// # Safety
    /// `i` must be interpreted under this buffer's capacity; the caller
    /// is responsible for the owner/thief access protocol.
    unsafe fn slot(&self, i: i64) -> *mut MaybeUninit<T> {
        self.slots[(i as usize) & self.mask].get()
    }

    /// Speculatively copies the bytes at global index `i`. The result
    /// must only be `assume_init`-ed once the caller has *claimed* the
    /// index (owner protocol or a successful top CAS).
    unsafe fn read(&self, i: i64) -> MaybeUninit<T> {
        ptr::read(self.slot(i))
    }

    /// Writes `v` into the slot for global index `i` without dropping
    /// whatever stale bytes were there.
    unsafe fn write(&self, i: i64, v: T) {
        ptr::write(self.slot(i), MaybeUninit::new(v));
    }
}

/// The growable Chase–Lev deque. Single owner (`push`/`pop`), any
/// number of thieves (`steal`).
///
/// `top` and `bottom` are `i64` indices that only ever increase (except
/// for the owner's transient bottom decrement during `pop`), so ABA on
/// the top CAS is a non-issue for any realistic run length.
pub struct ChaseLev<T> {
    /// Owner's end. Written only by the owner; read by thieves.
    bottom: CachePadded<AtomicI64>,
    /// Thieves' end. CASed by thieves and by the owner's last-element
    /// pop.
    top: CachePadded<AtomicI64>,
    /// Current buffer generation. Replaced (Release) only by the owner.
    buf: AtomicPtr<Buffer<T>>,
    /// Retired generations, owner-private; freed on drop. Thieves may
    /// still be reading these, so they must stay allocated — and boxed,
    /// so each keeps a stable address when this list reallocates.
    #[allow(clippy::vec_box)]
    retired: UnsafeCell<Vec<Box<Buffer<T>>>>,
}

// SAFETY: the owner/thief protocol is what makes the raw slot accesses
// sound; the type itself only needs the payload to be sendable.
unsafe impl<T: Send> Send for ChaseLev<T> {}
unsafe impl<T: Send> Sync for ChaseLev<T> {}

impl<T> Default for ChaseLev<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ChaseLev<T> {
    /// Creates an empty deque with the default minimum capacity.
    pub fn new() -> Self {
        Self::with_min_capacity(MIN_CAP)
    }

    /// Creates an empty deque whose first buffer holds at least `cap`
    /// elements, rounded up to a power of two (floor 2, so tests can
    /// start tiny and force growth cheaply).
    pub fn with_min_capacity(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        let buf = Box::into_raw(Buffer::alloc(cap));
        ChaseLev {
            bottom: CachePadded::new(AtomicI64::new(0)),
            top: CachePadded::new(AtomicI64::new(0)),
            buf: AtomicPtr::new(buf),
            retired: UnsafeCell::new(Vec::new()),
        }
    }

    /// Approximate number of elements (exact when quiescent). May be
    /// momentarily stale under concurrent steals.
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Relaxed);
        let t = self.top.load(Relaxed);
        (b - t).max(0) as usize
    }

    /// `len() == 0` under the same staleness caveat.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner: pushes `v` at the bottom. Never fails — the buffer grows
    /// by doubling when full. Fast path: slot write, `Release` fence,
    /// relaxed bottom store.
    ///
    /// # Safety contract (enforced by the owning wrapper)
    /// Must only be called from the single owner thread.
    pub fn push(&self, v: T) {
        let b = self.bottom.load(Relaxed);
        let t = self.top.load(Acquire);
        let mut a = self.buf.load(Relaxed);
        // SAFETY: `a` is the current buffer; only the owner replaces it.
        if b - t >= unsafe { (*a).cap() } as i64 - 1 {
            a = self.grow(t, b);
        }
        unsafe { (*a).write(b, v) };
        // Publish the slot before the new bottom becomes visible to a
        // thief's `Acquire` bottom load (paired via this fence).
        fence(Release);
        self.bottom.store(b + 1, Relaxed);
    }

    /// Owner: pops from the bottom (LIFO). Competes with thieves only
    /// for the very last element, via a CAS on `top`.
    ///
    /// # Safety contract (enforced by the owning wrapper)
    /// Must only be called from the single owner thread.
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Relaxed) - 1;
        let a = self.buf.load(Relaxed);
        self.bottom.store(b, Relaxed);
        // Order the bottom decrement before the top read: a concurrent
        // thief must either see the reduced bottom or lose the top CAS.
        fence(SeqCst);
        let t = self.top.load(Relaxed);
        if t <= b {
            if t == b {
                // Last element: race thieves via the top CAS.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, SeqCst, Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Relaxed);
                if won {
                    // SAFETY: the CAS claimed index b for the owner.
                    return Some(unsafe { (*a).read(b).assume_init() });
                }
                None
            } else {
                // SAFETY: t < b, so index b cannot be claimed by any
                // thief (a thief would first have to CAS top past b,
                // which requires observing bottom > b after our fence).
                Some(unsafe { (*a).read(b).assume_init() })
            }
        } else {
            // Deque was empty; restore bottom.
            self.bottom.store(b + 1, Relaxed);
            None
        }
    }

    /// Thief: attempts to steal the oldest element (FIFO end). Also
    /// usable by the owner to drain itself oldest-first (spill paths).
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Acquire);
        // Order the top read before the bottom read (pairs with the
        // owner's pop fence).
        fence(SeqCst);
        let b = self.bottom.load(Acquire);
        if b - t <= 0 {
            return Steal::Empty;
        }
        // Load the buffer *after* establishing t < b; Acquire pairs with
        // the owner's Release publish of a grown buffer.
        let a = self.buf.load(Acquire);
        // SAFETY: speculative byte copy; only materialized below if the
        // CAS proves index t was still ours to claim (see module docs
        // for why a stale buffer still holds the correct bytes then).
        let v = unsafe { (*a).read(t) };
        if self.top.compare_exchange(t, t + 1, SeqCst, Relaxed).is_ok() {
            Steal::Stolen(unsafe { v.assume_init() })
        } else {
            // Lost the race: drop the MaybeUninit without materializing
            // the (possibly torn) payload.
            Steal::Retry
        }
    }

    /// Current buffer capacity in slots. Exact for the owner; a thief
    /// may observe the previous generation's capacity around a growth.
    pub fn capacity(&self) -> usize {
        // SAFETY: the pointer is always a live buffer — growth retires
        // old generations instead of freeing them (see module docs).
        unsafe { (*self.buf.load(Acquire)).cap() }
    }

    /// Owner: how many buffer generations growth has retired so far.
    /// Retired buffers stay allocated until the deque drops, so after
    /// `g` growths from initial capacity `c` the live buffer holds
    /// `c << g` slots — tests audit reclamation against exactly that.
    ///
    /// # Safety contract (enforced by the owning wrapper)
    /// Must only be called from the single owner thread (the retired
    /// list is owner-private, like `grow`).
    pub fn retired_buffers(&self) -> usize {
        // SAFETY: owner-only access to the owner-private list.
        unsafe { (*self.retired.get()).len() }
    }

    /// Owner: doubles the buffer, copying only the live window
    /// `[t, b)`. The old buffer is retired (kept allocated for thieves
    /// still reading it) and the new one published with `Release`.
    #[cold]
    fn grow(&self, t: i64, b: i64) -> *mut Buffer<T> {
        let old = self.buf.load(Relaxed);
        // SAFETY: owner-only path; `old` is the current buffer.
        let new = unsafe {
            let new = Buffer::alloc((*old).cap() * 2);
            for i in t..b {
                ptr::copy_nonoverlapping((*old).slot(i), new.slot(i), 1);
            }
            Box::into_raw(new)
        };
        self.buf.store(new, Release);
        // SAFETY: `retired` is owner-private (like the ring of the
        // VecDeque tier); reconstitute the old buffer's box so drop
        // frees it with the deque.
        unsafe { (*self.retired.get()).push(Box::from_raw(old)) };
        new
    }
}

impl<T> Drop for ChaseLev<T> {
    fn drop(&mut self) {
        // Exclusive access: drop the live window, then free buffers.
        let b = self.bottom.load(Relaxed);
        let t = self.top.load(Relaxed);
        let a = *self.buf.get_mut();
        unsafe {
            for i in t..b {
                ptr::drop_in_place((*a).slot(i).cast::<T>());
            }
            drop(Box::from_raw(a));
        }
        // `retired` (and its boxes) drop normally — their slots hold
        // only stale bytes, never live values.
    }
}

impl<T> fmt::Debug for ChaseLev<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaseLev")
            .field("bottom", &self.bottom.load(Relaxed))
            .field("top", &self.top.load(Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn lifo_for_owner() {
        let d = ChaseLev::new();
        for i in 0..10u64 {
            d.push(i);
        }
        for i in (0..10u64).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
        assert_eq!(d.pop(), None, "empty pop restores bottom");
    }

    #[test]
    fn fifo_for_thief() {
        let d = ChaseLev::new();
        for i in 0..10u64 {
            d.push(i);
        }
        for i in 0..10u64 {
            assert_eq!(d.steal(), Steal::Stolen(i));
        }
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn growth_preserves_live_window_and_order() {
        // Start at cap 2 and interleave pops so top is well past zero
        // when growth fires: checks the [t, b) copy uses global indices.
        let d = ChaseLev::with_min_capacity(2);
        let mut expect = std::collections::VecDeque::new();
        let mut next = 0u64;
        for round in 0..6 {
            for _ in 0..(1 << round) {
                d.push(next);
                expect.push_back(next);
                next += 1;
            }
            for _ in 0..(1 << round) / 2 {
                assert_eq!(d.pop(), expect.pop_back());
            }
            match d.steal() {
                Steal::Stolen(v) => assert_eq!(Some(v), expect.pop_front()),
                other => assert_eq!(expect.front(), None, "got {other:?}"),
            }
        }
        while let Some(v) = expect.pop_back() {
            assert_eq!(d.pop(), Some(v));
        }
        assert_eq!(d.pop(), None);
        assert!(!unsafe { &*d.retired.get() }.is_empty(), "growth never fired");
    }

    #[test]
    fn drop_releases_live_elements_exactly_once() {
        static LIVE: AtomicU64 = AtomicU64::new(0);
        #[derive(Debug)]
        struct Tag;
        impl Tag {
            fn new() -> Tag {
                LIVE.fetch_add(1, SeqCst);
                Tag
            }
        }
        impl Drop for Tag {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, SeqCst);
            }
        }
        let d = ChaseLev::with_min_capacity(2);
        for _ in 0..33 {
            d.push(Tag::new()); // forces several growths
        }
        drop(d.pop());
        match d.steal() {
            Steal::Stolen(t) => drop(t),
            other => panic!("expected steal, got {other:?}"),
        }
        drop(d);
        assert_eq!(LIVE.load(SeqCst), 0, "leaked or double-dropped payloads");
    }

    #[test]
    fn concurrent_owner_and_thieves_conserve_values() {
        const PER_ROUND: u64 = 2_000;
        const THIEVES: usize = 3;
        let d = ChaseLev::with_min_capacity(2); // force growth under fire
        let taken: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let done = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        match d.steal() {
                            Steal::Stolen(v) => got.push(v),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if done.load(SeqCst) == 1 {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    taken.lock().unwrap().extend(got);
                });
            }
            let mut kept = Vec::new();
            for i in 0..PER_ROUND {
                d.push(i);
                if i % 3 == 0 {
                    if let Some(v) = d.pop() {
                        kept.push(v);
                    }
                }
            }
            while let Some(v) = d.pop() {
                kept.push(v);
            }
            done.store(1, SeqCst);
            taken.lock().unwrap().extend(kept);
        });
        let mut all = taken.into_inner().unwrap();
        all.sort_unstable();
        let expect: Vec<u64> = (0..PER_ROUND).collect();
        assert_eq!(all, expect, "values lost or duplicated under contention");
    }
}
