//! A fork-join work-stealing scheduler, generic over the deque.
//!
//! The paper motivates deques as the structure "currently used in load
//! balancing algorithms \[4\]" (Arora–Blumofe–Plaxton). This crate builds
//! that application: each worker owns a deque of tasks, pushes and pops
//! spawned work at its *owner* end (LIFO, for locality), and steals from
//! other workers' *thief* ends (FIFO, taking the oldest — largest —
//! work first).
//!
//! The scheduler is generic over [`WorkDeque`], with implementations for:
//!
//! * the paper's [`ArrayDeque`](dcas_deque::ArrayDeque) and
//!   [`ListDeque`](dcas_deque::ListDeque) (fully general deques used in
//!   the restricted work-stealing pattern),
//! * the CAS-only [`AbpDeque`](dcas_baselines::AbpDeque) baseline
//!   (designed for exactly this pattern),
//! * the lock-based [`MutexDeque`](dcas_baselines::MutexDeque), and
//! * owner-biased two-level wrappers ([`TieredListWorkDeque`],
//!   [`TieredArrayWorkDeque`]) that keep the owner's push/pop on a
//!   private ring and move work to/from the paper's deques in
//!   chunk-atomic batches, so thieves still steal through the
//!   linearizable structure, and
//! * [`TieredChaseLevWorkDeque`], the same two-level shape with a
//!   growable [`ChaseLev`] deque as the private tier, so thieves can
//!   also steal the owner's top directly instead of waiting for a
//!   spill.
//!
//! The scheduler is a real fork-join executor: tasks may
//! [`spawn`](WorkerHandle::spawn) further tasks,
//! [`join`](WorkerHandle::join) two closures with the joiner helping
//! run other work while it waits, and chain dependencies with
//! [`Continuation`] countdown counters — so fib, quicksort and
//! tree-walk workloads run natively.
//!
//! Benches `e6_workstealing` and `e13_scaling` compare the deques on
//! fork-join workloads across thread counts.
//!
//! # Example
//!
//! ```
//! use dcas_workstealing::{Scheduler, ListWorkDeque, WorkerHandle};
//! use dcas_workstealing::Task;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! // Count the leaves of a binary tree of depth 10 by forking a task per
//! // node across 4 workers.
//! fn count(
//!     w: &WorkerHandle<'_, dcas_workstealing::DynDeque>,
//!     depth: u32,
//!     leaves: Arc<AtomicU64>,
//! ) {
//!     if depth == 0 {
//!         leaves.fetch_add(1, Ordering::Relaxed);
//!         return;
//!     }
//!     let l = leaves.clone();
//!     w.spawn(move |w| count(w, depth - 1, l));
//!     let r = leaves.clone();
//!     w.spawn(move |w| count(w, depth - 1, r));
//! }
//!
//! let leaves = Arc::new(AtomicU64::new(0));
//! let sched: Scheduler<ListWorkDeque> = Scheduler::new(4);
//! let root_leaves = leaves.clone();
//! sched.run(move |w| count(w, 10, root_leaves));
//! assert_eq!(leaves.load(Ordering::SeqCst), 1 << 10);
//! ```

#![warn(missing_docs)]

pub mod chaselev;
mod deques;
mod scheduler;

pub use chaselev::{ChaseLev, Steal as ChaseLevSteal};
pub use deques::{
    AbpWorkDeque, ArrayWorkDeque, ChaseLevTier, ListWorkDeque, MutexWorkDeque, PrivateTier,
    StealOutcome, SundellWorkDeque, TieredArrayWorkDeque, TieredChaseLevWorkDeque, TieredDeque,
    TieredListWorkDeque, VecRing, WorkDeque, RING_CAP,
};
pub use scheduler::{
    Continuation, DynDeque, RunReport, SchedStats, Scheduler, Task, WorkerHandle,
};
