//! A Wing & Gong linearizability checker with Lowe-style memoization.
//!
//! Given a complete history (every operation has returned), the checker
//! searches for a total order of the operations that (a) extends the
//! real-time partial order and (b) is a legal execution of the sequential
//! deque specification producing exactly the recorded responses. This is
//! the *definition* of linearizability from Herlihy & Wing, which the
//! paper adopts as its correctness condition.
//!
//! The search is exponential in the worst case but fast in practice for
//! the history sizes our stress driver produces; visited
//! (linearized-set, abstract-state) pairs are memoized so equivalent
//! search prefixes are explored once (P. G. Lowe, *Testing for
//! linearizability*, 2017).

use std::collections::HashSet;

use crate::history::Completed;
use crate::spec::SeqDeque;

/// Result of a failed check, for diagnostics.
#[derive(Debug)]
pub struct Violation {
    /// Index (into the completed-op list) of operations linearized on the
    /// deepest path the search reached before exhausting candidates.
    pub deepest_prefix: Vec<usize>,
}

/// Checks whether `ops` (a complete history) is linearizable with respect
/// to the sequential deque `initial`.
///
/// Returns `Ok(())` with a witness existing, or `Err(Violation)` if no
/// linearization exists.
pub fn check_linearizable(initial: SeqDeque, ops: &[Completed]) -> Result<(), Violation> {
    if ops.len() > 64 {
        // The memo key packs the linearized set into a u64 bitmask.
        // Check longer histories in windows at the driver level instead.
        panic!("checker supports at most 64 operations per history, got {}", ops.len());
    }
    let all_mask: u64 = if ops.len() == 64 { !0 } else { (1u64 << ops.len()) - 1 };

    let mut memo: HashSet<(u64, Vec<u64>)> = HashSet::new();
    let mut deepest: Vec<usize> = Vec::new();

    // Iterative DFS over (mask of linearized ops, abstract state).
    struct Frame {
        state: SeqDeque,
        mask: u64,
        next_candidate: usize,
        chosen: Option<usize>,
    }
    let mut stack = vec![Frame { state: initial, mask: 0, next_candidate: 0, chosen: None }];
    let mut path: Vec<usize> = Vec::new();

    while let Some(frame) = stack.last_mut() {
        if frame.mask == all_mask {
            return Ok(());
        }
        // An op may linearize first among the remaining ones iff its
        // invocation precedes every remaining op's response; equivalently
        // iff it is invoked before the minimal remaining response.
        let min_resp = ops
            .iter()
            .enumerate()
            .filter(|(i, _)| frame.mask & (1 << i) == 0)
            .map(|(_, c)| c.respond_ts)
            .min()
            .expect("non-full mask has remaining ops");

        let mut advanced = false;
        while frame.next_candidate < ops.len() {
            let i = frame.next_candidate;
            frame.next_candidate += 1;
            if frame.mask & (1 << i) != 0 {
                continue;
            }
            if ops[i].invoke_ts > min_resp {
                continue;
            }
            let (ret, next_state) = frame.state.peek_apply(ops[i].op);
            if ret != ops[i].ret {
                continue;
            }
            let next_mask = frame.mask | (1 << i);
            let key = (next_mask, next_state.items().collect::<Vec<_>>());
            if !memo.insert(key) {
                continue;
            }
            path.push(i);
            if path.len() > deepest.len() {
                deepest = path.clone();
            }
            stack.push(Frame {
                state: next_state,
                mask: next_mask,
                next_candidate: 0,
                chosen: Some(i),
            });
            advanced = true;
            break;
        }
        if !advanced && stack.pop().and_then(|f| f.chosen).is_some() {
            path.pop();
        }
    }
    Err(Violation { deepest_prefix: deepest })
}

/// Enumerates **every** abstract state the sequential specification can be
/// left in by a linearization of `ops`, starting from *any* of the
/// `initials` states.
///
/// This is the carry primitive of the windowed (online) checking mode:
/// when a long history is audited window by window, the state at a window
/// boundary is generally not unique — e.g. two concurrent `pushLeft`s
/// admit two witness orders with different final sequences — so the next
/// window must be checked from the full set of reachable states, not the
/// first witness found. Returns the deduplicated set (never empty) or the
/// same [`Violation`] diagnostics as [`check_linearizable`] if **no**
/// initial state admits a linearization.
///
/// Complexity: same memoized search as [`check_linearizable`], but
/// without the early exit on the first witness; the memo table bounds the
/// work by the number of distinct (linearized-set, state) pairs.
pub fn linearization_final_states(
    initials: &[SeqDeque],
    ops: &[Completed],
) -> Result<Vec<SeqDeque>, Violation> {
    assert!(!initials.is_empty(), "need at least one initial state");
    if ops.len() > 64 {
        panic!("checker supports at most 64 operations per history, got {}", ops.len());
    }
    if ops.is_empty() {
        let mut out: Vec<SeqDeque> = Vec::new();
        for s in initials {
            if !out.contains(s) {
                out.push(s.clone());
            }
        }
        return Ok(out);
    }
    let all_mask: u64 = if ops.len() == 64 { !0 } else { (1u64 << ops.len()) - 1 };

    // Shared across initial states: a (mask, state) pair reached from two
    // different initials has identical continuations.
    let mut memo: HashSet<(u64, Vec<u64>)> = HashSet::new();
    let mut finals: Vec<SeqDeque> = Vec::new();
    let mut deepest: Vec<usize> = Vec::new();

    struct Frame {
        state: SeqDeque,
        mask: u64,
        next_candidate: usize,
        chosen: Option<usize>,
    }

    for initial in initials {
        let mut stack =
            vec![Frame { state: initial.clone(), mask: 0, next_candidate: 0, chosen: None }];
        let mut path: Vec<usize> = Vec::new();
        while let Some(frame) = stack.last_mut() {
            if frame.mask == all_mask {
                if !finals.contains(&frame.state) {
                    finals.push(frame.state.clone());
                }
                // Keep searching for other witnesses' final states.
                if stack.pop().and_then(|f| f.chosen).is_some() {
                    path.pop();
                }
                continue;
            }
            let min_resp = ops
                .iter()
                .enumerate()
                .filter(|(i, _)| frame.mask & (1 << i) == 0)
                .map(|(_, c)| c.respond_ts)
                .min()
                .expect("non-full mask has remaining ops");

            let mut advanced = false;
            while frame.next_candidate < ops.len() {
                let i = frame.next_candidate;
                frame.next_candidate += 1;
                if frame.mask & (1 << i) != 0 {
                    continue;
                }
                if ops[i].invoke_ts > min_resp {
                    continue;
                }
                let (ret, next_state) = frame.state.peek_apply(ops[i].op);
                if ret != ops[i].ret {
                    continue;
                }
                let next_mask = frame.mask | (1 << i);
                let key = (next_mask, next_state.items().collect::<Vec<_>>());
                if !memo.insert(key) {
                    continue;
                }
                path.push(i);
                if path.len() > deepest.len() {
                    deepest = path.clone();
                }
                stack.push(Frame {
                    state: next_state,
                    mask: next_mask,
                    next_candidate: 0,
                    chosen: Some(i),
                });
                advanced = true;
                break;
            }
            if !advanced && stack.pop().and_then(|f| f.chosen).is_some() {
                path.pop();
            }
        }
    }
    if finals.is_empty() {
        Err(Violation { deepest_prefix: deepest })
    } else {
        Ok(finals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DequeOp, DequeRet};

    fn op(invoke_ts: u64, respond_ts: u64, op: DequeOp, ret: DequeRet) -> Completed {
        Completed { invoke_ts, respond_ts, op, ret }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_linearizable(SeqDeque::unbounded(), &[]).is_ok());
    }

    #[test]
    fn sequential_legal_history() {
        let ops = vec![
            op(0, 1, DequeOp::PushRight(5), DequeRet::Okay),
            op(2, 3, DequeOp::PopLeft, DequeRet::Value(5)),
            op(4, 5, DequeOp::PopLeft, DequeRet::Empty),
        ];
        assert!(check_linearizable(SeqDeque::unbounded(), &ops).is_ok());
    }

    #[test]
    fn sequential_illegal_history() {
        // Pop returns a value that was never pushed.
        let ops = vec![
            op(0, 1, DequeOp::PushRight(5), DequeRet::Okay),
            op(2, 3, DequeOp::PopLeft, DequeRet::Value(6)),
        ];
        assert!(check_linearizable(SeqDeque::unbounded(), &ops).is_err());
    }

    #[test]
    fn real_time_order_is_respected() {
        // Sequentially: pop (returns empty) strictly before push. A
        // checker ignoring real time would reorder them.
        let ops = vec![
            op(0, 1, DequeOp::PopLeft, DequeRet::Value(5)),
            op(2, 3, DequeOp::PushRight(5), DequeRet::Okay),
        ];
        assert!(check_linearizable(SeqDeque::unbounded(), &ops).is_err());
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // The same pair, but overlapping: pop(→5) concurrent with
        // push(5) is linearizable as push;pop.
        let ops = vec![
            op(0, 3, DequeOp::PopLeft, DequeRet::Value(5)),
            op(1, 2, DequeOp::PushRight(5), DequeRet::Okay),
        ];
        assert!(check_linearizable(SeqDeque::unbounded(), &ops).is_ok());
    }

    #[test]
    fn stolen_last_element_scenario() {
        // Figure 6 of the paper: popRight and popLeft race for the last
        // element; one gets it, the other reports empty.
        let ops = vec![
            op(0, 1, DequeOp::PushRight(7), DequeRet::Okay),
            op(2, 5, DequeOp::PopRight, DequeRet::Empty),
            op(3, 4, DequeOp::PopLeft, DequeRet::Value(7)),
        ];
        assert!(check_linearizable(SeqDeque::unbounded(), &ops).is_ok());
        // But both claiming the single element is a violation.
        let ops = vec![
            op(0, 1, DequeOp::PushRight(7), DequeRet::Okay),
            op(2, 5, DequeOp::PopRight, DequeRet::Value(7)),
            op(3, 4, DequeOp::PopLeft, DequeRet::Value(7)),
        ];
        assert!(check_linearizable(SeqDeque::unbounded(), &ops).is_err());
    }

    #[test]
    fn full_boundary_with_bounded_spec() {
        let ops = vec![
            op(0, 1, DequeOp::PushRight(1), DequeRet::Okay),
            op(2, 3, DequeOp::PushLeft(2), DequeRet::Full),
            op(4, 5, DequeOp::PopRight, DequeRet::Value(1)),
            op(6, 7, DequeOp::PushLeft(2), DequeRet::Okay),
        ];
        assert!(check_linearizable(SeqDeque::bounded(1), &ops).is_ok());
        // The same history against capacity 2 is a violation (the Full
        // response is impossible).
        assert!(check_linearizable(SeqDeque::bounded(2), &ops).is_err());
    }

    #[test]
    fn lost_element_detected() {
        // Two concurrent pushes, but only one value ever pops out and the
        // deque then claims empty forever: the second push was lost.
        let ops = vec![
            op(0, 3, DequeOp::PushRight(1), DequeRet::Okay),
            op(1, 2, DequeOp::PushRight(2), DequeRet::Okay),
            op(4, 5, DequeOp::PopLeft, DequeRet::Value(1)),
            op(6, 7, DequeOp::PopLeft, DequeRet::Empty),
            op(8, 9, DequeOp::PopRight, DequeRet::Empty),
        ];
        assert!(check_linearizable(SeqDeque::unbounded(), &ops).is_err());
    }

    #[test]
    fn duplicated_element_detected() {
        let ops = vec![
            op(0, 1, DequeOp::PushRight(9), DequeRet::Okay),
            op(2, 5, DequeOp::PopRight, DequeRet::Value(9)),
            op(3, 4, DequeOp::PopLeft, DequeRet::Value(9)),
        ];
        assert!(check_linearizable(SeqDeque::unbounded(), &ops).is_err());
    }

    #[test]
    fn final_states_enumerates_all_witness_orders() {
        // Two fully-concurrent pushLefts: both <1,2> and <2,1> are
        // reachable, and a checker that carried only one of them would
        // mis-judge a later window.
        let ops = vec![
            op(0, 10, DequeOp::PushLeft(1), DequeRet::Okay),
            op(1, 9, DequeOp::PushLeft(2), DequeRet::Okay),
        ];
        let finals =
            linearization_final_states(&[SeqDeque::unbounded()], &ops).unwrap();
        let mut seqs: Vec<Vec<u64>> =
            finals.iter().map(|s| s.items().collect()).collect();
        seqs.sort();
        assert_eq!(seqs, vec![vec![1, 2], vec![2, 1]]);
    }

    #[test]
    fn final_states_from_multiple_initials() {
        // popLeft -> 7 linearizes from the initial state <7> but not from
        // <8>; the union keeps only the reachable outcome.
        let mut with7 = SeqDeque::unbounded();
        with7.apply(DequeOp::PushRight(7));
        let mut with8 = SeqDeque::unbounded();
        with8.apply(DequeOp::PushRight(8));
        let ops = vec![op(0, 1, DequeOp::PopLeft, DequeRet::Value(7))];
        let finals = linearization_final_states(&[with7, with8.clone()], &ops).unwrap();
        assert_eq!(finals.len(), 1);
        assert!(finals[0].is_empty());
        // From <8> alone the history is a violation.
        assert!(linearization_final_states(&[with8], &ops).is_err());
    }

    #[test]
    fn final_states_empty_history_returns_initials() {
        let a = SeqDeque::unbounded();
        let finals = linearization_final_states(&[a.clone(), a], &[]).unwrap();
        assert_eq!(finals.len(), 1);
    }

    #[test]
    fn final_states_rejects_what_checker_rejects() {
        let ops = vec![
            op(0, 1, DequeOp::PushRight(5), DequeRet::Okay),
            op(2, 3, DequeOp::PopLeft, DequeRet::Value(6)),
        ];
        assert!(linearization_final_states(&[SeqDeque::unbounded()], &ops).is_err());
    }

    #[test]
    fn wide_concurrency_window_searches() {
        // Fully-overlapping ops stress the memoized search. (Kept small:
        // a non-linearizable fully-overlapping history forces the checker
        // to exhaust an intrinsically factorial space.)
        let mut ops = Vec::new();
        for i in 0..7u64 {
            ops.push(op(0, 100, DequeOp::PushRight(i), DequeRet::Okay));
        }
        for _ in 0..7 {
            ops.push(op(0, 100, DequeOp::PopLeft, DequeRet::Value(0)));
        }
        // Only value 0 pops — impossible since all seven distinct values
        // were pushed.
        assert!(check_linearizable(SeqDeque::unbounded(), &ops).is_err());

        let mut ops = Vec::new();
        for i in 0..10u64 {
            ops.push(op(0, 100, DequeOp::PushRight(i), DequeRet::Okay));
            ops.push(op(0, 100, DequeOp::PopLeft, DequeRet::Value(i)));
        }
        assert!(check_linearizable(SeqDeque::unbounded(), &ops).is_ok());
    }
}
