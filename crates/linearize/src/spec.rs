//! The sequential deque specification of the paper's Section 2.2.
//!
//! A deque state is a sequence `S = <v0, ..., vk>` with `0 <= |S| <=
//! length_S`; the four operations induce the transitions quoted below. The
//! paper axiomatizes the same object with `EmptyQ` / `singleton` / `concat`
//! constructors (Figure 35); the property tests at the bottom of this
//! module check that this executable model satisfies those axioms.

use std::collections::VecDeque;

use dcas_deque::MAX_BATCH;

/// A fixed-capacity value sequence carried by batched operations (inputs
/// of `pushRightN`/`pushLeftN`, outputs of `popRightN`/`popLeftN`).
/// Fixed-size so operations stay `Copy` for the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Batch {
    vals: [u64; MAX_BATCH],
    len: u8,
}

impl Batch {
    /// Builds a batch from up to [`MAX_BATCH`] values.
    pub fn new(vals: &[u64]) -> Self {
        assert!(vals.len() <= MAX_BATCH, "batch of {} exceeds MAX_BATCH", vals.len());
        let mut b = Batch { vals: [0; MAX_BATCH], len: vals.len() as u8 };
        b.vals[..vals.len()].copy_from_slice(vals);
        b
    }

    /// The values, in operation order.
    pub fn as_slice(&self) -> &[u64] {
        &self.vals[..self.len as usize]
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the batch carries no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An operation invocation on a deque, with its input if any.
///
/// The batched variants model one **chunk-atomic** transition of the
/// batched deque operations: at most [`MAX_BATCH`] elements entering or
/// leaving the sequence at a single linearization point. (The public
/// `push_right_n`-style APIs split larger requests into such chunks, each
/// an independent operation in the history.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DequeOp {
    /// `pushRight(v)`
    PushRight(u64),
    /// `pushLeft(v)`
    PushLeft(u64),
    /// `popRight()`
    PopRight,
    /// `popLeft()`
    PopLeft,
    /// `pushRightN(vals)` — appends all values at the right end in order,
    /// atomically; all-or-nothing against the capacity.
    PushRightN(Batch),
    /// `pushLeftN(vals)` — pushes all values at the left end in order
    /// (the last value ends up leftmost), atomically; all-or-nothing.
    PushLeftN(Batch),
    /// `popRightN(k)` — removes `min(k, |S|)` values from the right end,
    /// rightmost first, atomically.
    PopRightN(u8),
    /// `popLeftN(k)` — removes `min(k, |S|)` values from the left end,
    /// leftmost first, atomically.
    PopLeftN(u8),
}

/// An operation response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DequeRet {
    /// A push returned "okay".
    Okay,
    /// A push returned "full".
    Full,
    /// A pop returned a value.
    Value(u64),
    /// A pop returned "empty".
    Empty,
    /// A batched pop returned `min(k, |S|)` values (possibly zero).
    Values(Batch),
}

/// The sequential deque state machine. `capacity == None` models the
/// unbounded deque (pushes never return "full").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeqDeque {
    capacity: Option<usize>,
    items: VecDeque<u64>,
}

impl SeqDeque {
    /// `make_deque(length_S)` — the bounded deque, initially empty.
    pub fn bounded(length: usize) -> Self {
        assert!(length >= 1);
        SeqDeque { capacity: Some(length), items: VecDeque::new() }
    }

    /// `make_deque()` — the unbounded deque.
    pub fn unbounded() -> Self {
        SeqDeque { capacity: None, items: VecDeque::new() }
    }

    /// Current sequence length `|S|`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether `|S| == 0`.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the deque has reached the full state.
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|c| self.items.len() == c)
    }

    /// The current abstract sequence, left to right.
    pub fn items(&self) -> impl Iterator<Item = u64> + '_ {
        self.items.iter().copied()
    }

    /// Executes one operation, returning its response and transitioning
    /// the state per Section 2.2:
    ///
    /// * `pushRight(v)`: if not full, `S := <v0..vk, v>`, "okay"; else
    ///   "full", unchanged.
    /// * `pushLeft(v)`: if not full, `S := <v, v0..vk>`, "okay"; else
    ///   "full", unchanged.
    /// * `popRight()`: if not empty, `S := <v0..v(k-1)>`, returns `vk`;
    ///   else "empty", unchanged.
    /// * `popLeft()`: if not empty, `S := <v1..vk>`, returns `v0`; else
    ///   "empty", unchanged.
    pub fn apply(&mut self, op: DequeOp) -> DequeRet {
        match op {
            DequeOp::PushRight(v) => {
                if self.is_full() {
                    DequeRet::Full
                } else {
                    self.items.push_back(v);
                    DequeRet::Okay
                }
            }
            DequeOp::PushLeft(v) => {
                if self.is_full() {
                    DequeRet::Full
                } else {
                    self.items.push_front(v);
                    DequeRet::Okay
                }
            }
            DequeOp::PopRight => match self.items.pop_back() {
                Some(v) => DequeRet::Value(v),
                None => DequeRet::Empty,
            },
            DequeOp::PopLeft => match self.items.pop_front() {
                Some(v) => DequeRet::Value(v),
                None => DequeRet::Empty,
            },
            DequeOp::PushRightN(b) => {
                if self.capacity.is_some_and(|c| self.items.len() + b.len() > c) {
                    DequeRet::Full
                } else {
                    self.items.extend(b.as_slice());
                    DequeRet::Okay
                }
            }
            DequeOp::PushLeftN(b) => {
                if self.capacity.is_some_and(|c| self.items.len() + b.len() > c) {
                    DequeRet::Full
                } else {
                    for &v in b.as_slice() {
                        self.items.push_front(v);
                    }
                    DequeRet::Okay
                }
            }
            DequeOp::PopRightN(k) => {
                let popped: Vec<u64> =
                    (0..k).filter_map(|_| self.items.pop_back()).collect();
                DequeRet::Values(Batch::new(&popped))
            }
            DequeOp::PopLeftN(k) => {
                let popped: Vec<u64> =
                    (0..k).filter_map(|_| self.items.pop_front()).collect();
                DequeRet::Values(Batch::new(&popped))
            }
        }
    }

    /// Executes `op` on a copy, returning the response and the successor
    /// state (used by the checker's backtracking search).
    pub fn peek_apply(&self, op: DequeOp) -> (DequeRet, SeqDeque) {
        let mut next = self.clone();
        let ret = next.apply(op);
        (ret, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // Section 2.2: pushRight(1); pushLeft(2); pushRight(3);
        // popLeft()->2; popLeft()->1.
        let mut d = SeqDeque::bounded(10);
        assert_eq!(d.apply(DequeOp::PushRight(1)), DequeRet::Okay);
        assert_eq!(d.apply(DequeOp::PushLeft(2)), DequeRet::Okay);
        assert_eq!(d.apply(DequeOp::PushRight(3)), DequeRet::Okay);
        assert_eq!(d.items().collect::<Vec<_>>(), vec![2, 1, 3]);
        assert_eq!(d.apply(DequeOp::PopLeft), DequeRet::Value(2));
        assert_eq!(d.apply(DequeOp::PopLeft), DequeRet::Value(1));
        assert_eq!(d.items().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn boundary_responses() {
        let mut d = SeqDeque::bounded(1);
        assert_eq!(d.apply(DequeOp::PopLeft), DequeRet::Empty);
        assert_eq!(d.apply(DequeOp::PopRight), DequeRet::Empty);
        assert_eq!(d.apply(DequeOp::PushLeft(5)), DequeRet::Okay);
        assert_eq!(d.apply(DequeOp::PushLeft(6)), DequeRet::Full);
        assert_eq!(d.apply(DequeOp::PushRight(6)), DequeRet::Full);
        assert_eq!(d.apply(DequeOp::PopRight), DequeRet::Value(5));
        assert!(d.is_empty());
    }

    #[test]
    fn unbounded_never_full() {
        let mut d = SeqDeque::unbounded();
        for i in 0..10_000 {
            assert_eq!(d.apply(DequeOp::PushRight(i)), DequeRet::Okay);
        }
        assert!(!d.is_full());
        assert_eq!(d.len(), 10_000);
    }

    #[test]
    fn batch_ops_are_atomic_multi_element_transitions() {
        let mut d = SeqDeque::bounded(6);
        assert_eq!(d.apply(DequeOp::PushRightN(Batch::new(&[1, 2, 3]))), DequeRet::Okay);
        assert_eq!(d.apply(DequeOp::PushLeftN(Batch::new(&[4, 5]))), DequeRet::Okay);
        assert_eq!(d.items().collect::<Vec<_>>(), vec![5, 4, 1, 2, 3]);
        // All-or-nothing against the capacity: 5 + 2 > 6.
        assert_eq!(d.apply(DequeOp::PushRightN(Batch::new(&[6, 7]))), DequeRet::Full);
        assert_eq!(d.len(), 5);
        assert_eq!(
            d.apply(DequeOp::PopLeftN(2)),
            DequeRet::Values(Batch::new(&[5, 4]))
        );
        assert_eq!(
            d.apply(DequeOp::PopRightN(8)),
            DequeRet::Values(Batch::new(&[3, 2, 1]))
        );
        // Short batch pop on the now-empty deque yields zero values.
        assert_eq!(d.apply(DequeOp::PopLeftN(3)), DequeRet::Values(Batch::new(&[])));
        assert!(d.is_empty());
    }

    #[test]
    fn batch_ops_match_repeated_singles() {
        // A batched operation has exactly the cumulative effect of its
        // per-element expansion (executed with no interleaving).
        let mut batched = SeqDeque::unbounded();
        let mut singles = SeqDeque::unbounded();
        batched.apply(DequeOp::PushRightN(Batch::new(&[1, 2, 3, 4])));
        for v in [1, 2, 3, 4] {
            singles.apply(DequeOp::PushRight(v));
        }
        assert_eq!(batched, singles);
        batched.apply(DequeOp::PushLeftN(Batch::new(&[5, 6])));
        for v in [5, 6] {
            singles.apply(DequeOp::PushLeft(v));
        }
        assert_eq!(batched, singles);
        let DequeRet::Values(b) = batched.apply(DequeOp::PopLeftN(3)) else {
            panic!("batch pop must return Values");
        };
        let s: Vec<u64> = (0..3)
            .map(|_| match singles.apply(DequeOp::PopLeft) {
                DequeRet::Value(v) => v,
                r => panic!("unexpected {r:?}"),
            })
            .collect();
        assert_eq!(b.as_slice(), &s[..]);
        assert_eq!(batched, singles);
    }

    /// Figure 35 axioms, property-tested against the executable model. We
    /// represent an abstract deque term by the `Vec<u64>` it denotes;
    /// `concat` is concatenation, `singleton(v)` is `[v]`, `EmptyQ` is
    /// `[]`. The `pushL/pushR/popL/popR/peekL/peekR` functions of the
    /// axioms correspond to the model's transitions.
    mod figure35_axioms {
        use super::*;
        use proptest::prelude::*;

        fn deque_from(values: &[u64]) -> SeqDeque {
            let mut d = SeqDeque::unbounded();
            for &v in values {
                d.apply(DequeOp::PushRight(v));
            }
            d
        }

        proptest! {
            // (pushL q v) == (concat (singleton v) q)
            #[test]
            fn push_left_is_prepend(q in proptest::collection::vec(any::<u64>(), 0..20), v: u64) {
                let mut d = deque_from(&q);
                d.apply(DequeOp::PushLeft(v));
                let mut expect = vec![v];
                expect.extend(&q);
                prop_assert_eq!(d.items().collect::<Vec<_>>(), expect);
            }

            // (pushR q v) == (concat q (singleton v))
            #[test]
            fn push_right_is_append(q in proptest::collection::vec(any::<u64>(), 0..20), v: u64) {
                let mut d = deque_from(&q);
                d.apply(DequeOp::PushRight(v));
                let mut expect = q.clone();
                expect.push(v);
                prop_assert_eq!(d.items().collect::<Vec<_>>(), expect);
            }

            // peekR/popR on (concat q1 q2), q2 nonempty, act on q2; and on
            // singletons yield the value / EmptyQ.
            #[test]
            fn pop_right_acts_on_right_part(
                q1 in proptest::collection::vec(any::<u64>(), 0..10),
                q2 in proptest::collection::vec(any::<u64>(), 1..10),
            ) {
                let mut joined = q1.clone();
                joined.extend(&q2);
                let mut d = deque_from(&joined);
                let ret = d.apply(DequeOp::PopRight);
                prop_assert_eq!(ret, DequeRet::Value(*q2.last().unwrap()));
                let mut expect = q1.clone();
                expect.extend(&q2[..q2.len() - 1]);
                prop_assert_eq!(d.items().collect::<Vec<_>>(), expect);
            }

            // popL mirrors popR.
            #[test]
            fn pop_left_acts_on_left_part(
                q1 in proptest::collection::vec(any::<u64>(), 1..10),
                q2 in proptest::collection::vec(any::<u64>(), 0..10),
            ) {
                let mut joined = q1.clone();
                joined.extend(&q2);
                let mut d = deque_from(&joined);
                let ret = d.apply(DequeOp::PopLeft);
                prop_assert_eq!(ret, DequeRet::Value(q1[0]));
                let mut expect = q1[1..].to_vec();
                expect.extend(&q2);
                prop_assert_eq!(d.items().collect::<Vec<_>>(), expect);
            }

            // (len (concat q1 q2)) == (+ (len q1) (len q2)); len EmptyQ == 0;
            // len (singleton v) == 1.
            #[test]
            fn len_is_additive(
                q1 in proptest::collection::vec(any::<u64>(), 0..10),
                q2 in proptest::collection::vec(any::<u64>(), 0..10),
            ) {
                let mut joined = q1.clone();
                joined.extend(&q2);
                prop_assert_eq!(deque_from(&joined).len(), q1.len() + q2.len());
            }

            // concat is associative with EmptyQ as identity (implicit in
            // the Vec representation; checked for the model's observable
            // behaviour).
            #[test]
            fn empty_is_concat_identity(q in proptest::collection::vec(any::<u64>(), 0..20)) {
                prop_assert_eq!(deque_from(&q).items().collect::<Vec<_>>(), q);
            }
        }

        #[test]
        fn singleton_pop_yields_empty() {
            // (popR (singleton v)) == EmptyQ, (popL (singleton v)) == EmptyQ
            let mut d = deque_from(&[42]);
            assert_eq!(d.apply(DequeOp::PopRight), DequeRet::Value(42));
            assert!(d.is_empty());
            let mut d = deque_from(&[42]);
            assert_eq!(d.apply(DequeOp::PopLeft), DequeRet::Value(42));
            assert!(d.is_empty());
        }
    }
}
