//! Concurrent history recording (the "histories" of the paper's
//! Section 2).
//!
//! A history is a sequence of invocations and responses; it induces the
//! real-time partial order under which operation A precedes B iff A's
//! response occurs before B's invocation. The recorder issues timestamps
//! from one global atomic counter, taking the invocation stamp *before*
//! calling into the implementation and the response stamp *after* it
//! returns. This is conservative: the recorded interval contains the
//! operation's true duration, so any linearization of the recorded history
//! respects the true real-time order.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::spec::{DequeOp, DequeRet};

/// What happened at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An operation was invoked.
    Invoke(DequeOp),
    /// The matching operation returned.
    Respond(DequeRet),
}

/// One timestamped event in a history.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Global timestamp (unique, totally ordered).
    pub ts: u64,
    /// Recording thread.
    pub thread: usize,
    /// Invocation or response.
    pub kind: EventKind,
}

/// A completed operation extracted from a history: its real-time interval
/// and its observable behaviour.
#[derive(Debug, Clone, Copy)]
pub struct Completed {
    /// Timestamp taken immediately before invocation.
    pub invoke_ts: u64,
    /// Timestamp taken immediately after response.
    pub respond_ts: u64,
    /// The operation.
    pub op: DequeOp,
    /// Its response.
    pub ret: DequeRet,
}

/// A recorded history: per-thread event logs merged on demand.
#[derive(Debug, Default)]
pub struct History {
    per_thread: Vec<Vec<Event>>,
}

impl History {
    /// Builds a history from externally captured per-thread event logs
    /// (the ingestion point for `crates/obs`' ring-buffer traces). Each
    /// inner vector must hold one thread's events in program order:
    /// alternating `Invoke`/`Respond` pairs, as produced by a
    /// [`ThreadRecorder`] or any equivalent capture mechanism.
    pub fn from_thread_events(per_thread: Vec<Vec<Event>>) -> Self {
        History { per_thread }
    }

    /// Extracts the completed operations. Every invocation must have a
    /// matching response in program order on its thread (threads joined
    /// before extraction guarantee this).
    ///
    /// # Panics
    ///
    /// Panics on a malformed log (unmatched invocation/response).
    pub fn completed(&self) -> Vec<Completed> {
        let mut out = Vec::new();
        for events in &self.per_thread {
            let mut chunks = events.chunks_exact(2);
            for pair in &mut chunks {
                match (pair[0].kind, pair[1].kind) {
                    (EventKind::Invoke(op), EventKind::Respond(ret)) => out.push(Completed {
                        invoke_ts: pair[0].ts,
                        respond_ts: pair[1].ts,
                        op,
                        ret,
                    }),
                    other => panic!("malformed history pair: {other:?}"),
                }
            }
            assert!(
                chunks.remainder().is_empty(),
                "history has a pending operation; join threads before checking"
            );
        }
        out.sort_by_key(|c| c.invoke_ts);
        out
    }

    /// Total number of recorded events.
    pub fn event_count(&self) -> usize {
        self.per_thread.iter().map(Vec::len).sum()
    }
}

/// Issues globally-ordered timestamps and collects per-thread logs.
///
/// Usage: create one `Recorder`, hand one [`ThreadRecorder`] to each
/// worker via [`Recorder::thread`], and call [`Recorder::finish`] after
/// joining the workers.
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
}

impl Recorder {
    /// Creates a recorder with its clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the log handle for one worker thread.
    pub fn thread(&self, thread: usize) -> ThreadRecorder<'_> {
        ThreadRecorder { clock: &self.clock, thread, events: Vec::new() }
    }

    /// Merges the finished per-thread logs into a [`History`].
    pub fn finish(&self, logs: Vec<ThreadRecorder<'_>>) -> History {
        History { per_thread: logs.into_iter().map(|l| l.events).collect() }
    }
}

/// Per-thread event log; cheap to record into (one atomic increment and a
/// `Vec::push` per event).
#[derive(Debug)]
pub struct ThreadRecorder<'a> {
    clock: &'a AtomicU64,
    thread: usize,
    events: Vec<Event>,
}

impl ThreadRecorder<'_> {
    #[inline]
    fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Records an invocation; call immediately **before** invoking the
    /// operation on the implementation.
    #[inline]
    pub fn invoke(&mut self, op: DequeOp) {
        let ts = self.stamp();
        self.events.push(Event { ts, thread: self.thread, kind: EventKind::Invoke(op) });
    }

    /// Records a response; call immediately **after** the operation
    /// returns.
    #[inline]
    pub fn respond(&mut self, ret: DequeRet) {
        let ts = self.stamp();
        self.events.push(Event { ts, thread: self.thread, kind: EventKind::Respond(ret) });
    }

    /// Convenience: records `invoke`, runs `f`, records its response.
    #[inline]
    pub fn record<F: FnOnce() -> DequeRet>(&mut self, op: DequeOp, f: F) -> DequeRet {
        self.invoke(op);
        let ret = f();
        self.respond(ret);
        ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_extract() {
        let rec = Recorder::new();
        let mut t0 = rec.thread(0);
        let mut t1 = rec.thread(1);
        t0.record(DequeOp::PushRight(1), || DequeRet::Okay);
        t1.record(DequeOp::PopLeft, || DequeRet::Value(1));
        t0.record(DequeOp::PopLeft, || DequeRet::Empty);
        let h = rec.finish(vec![t0, t1]);
        assert_eq!(h.event_count(), 6);
        let ops = h.completed();
        assert_eq!(ops.len(), 3);
        for c in &ops {
            assert!(c.invoke_ts < c.respond_ts);
        }
        // Sequentially recorded, so intervals are disjoint and ordered.
        assert!(ops[0].respond_ts < ops[1].invoke_ts);
        assert!(ops[1].respond_ts < ops[2].invoke_ts);
    }

    #[test]
    fn concurrent_stamps_are_unique() {
        use std::sync::Arc;
        let rec = Arc::new(Recorder::new());
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..4 {
                let rec = &rec;
                handles.push(s.spawn(move || {
                    let mut log = rec.thread(t);
                    for i in 0..1000 {
                        log.record(DequeOp::PushRight(i), || DequeRet::Okay);
                    }
                    log.events.iter().map(|e| e.ts).collect::<Vec<_>>()
                }));
            }
            let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
            let n = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), n);
        });
    }

    #[test]
    #[should_panic(expected = "pending operation")]
    fn pending_operation_detected() {
        let rec = Recorder::new();
        let mut t0 = rec.thread(0);
        t0.invoke(DequeOp::PopLeft);
        let h = rec.finish(vec![t0]);
        let _ = h.completed();
    }
}
