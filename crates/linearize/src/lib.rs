//! Linearizability machinery for the DCAS deques reproduction.
//!
//! The paper's correctness condition (Section 2) is **linearizability**
//! against the sequential deque specification of Section 2.2. The paper
//! discharges it with a mechanical theorem prover; this crate provides the
//! complementary *testing* oracle:
//!
//! * [`spec`] — the sequential bounded/unbounded deque state machine,
//!   exactly as specified in Section 2.2 (and consistent with the deque
//!   axioms of the paper's Figure 35, which are property-tested against
//!   it).
//! * [`history`] — low-overhead recording of concurrent invocation /
//!   response histories, with conservatively-ordered timestamps.
//! * [`checker`] — a Wing & Gong linearizability checker with Lowe-style
//!   memoization: decides whether a recorded history has *some*
//!   linearization consistent with its real-time order.
//! * [`window`] — windowed checking for histories longer than the
//!   monolithic checker's 64-op cap: splits at quiescent cuts and carries
//!   the full set of reachable abstract states between windows, enabling
//!   bounded *online* auditing of live runs.
//! * [`driver`] — a stress driver that runs randomized mixed workloads
//!   over any [`ConcurrentDeque`](dcas_deque::ConcurrentDeque), records
//!   the history, and checks it.

#![warn(missing_docs)]

pub mod checker;
pub mod driver;
pub mod history;
pub mod spec;
pub mod window;

pub use checker::{check_linearizable, linearization_final_states};
pub use driver::{
    stress_and_check, stress_owner_steal, OwnerStealDeque, StressConfig, StressReport,
};
pub use history::{Completed, Event, EventKind, History, Recorder};
pub use spec::{Batch, DequeOp, DequeRet, SeqDeque};
pub use window::{check_windowed, WindowReport, WindowedChecker, WindowError};
