//! Windowed (bounded, online-capable) linearizability checking.
//!
//! The Wing & Gong search of [`checker`](crate::checker) is exponential,
//! so it caps histories at 64 operations. Long recorded runs — and *live*
//! runs, audited while the deque is still being hammered — are instead
//! checked window by window:
//!
//! 1. completed operations are buffered in invocation order;
//! 2. the buffer is split at **quiescent cuts** — timestamps that no
//!    operation's interval spans. Because every thread runs its
//!    operations sequentially, at most `threads` operations are open at
//!    any instant and such cuts occur constantly in practice;
//! 3. each window of at most `max_window` operations is checked by
//!    [`linearization_final_states`], carrying the **full set** of
//!    abstract states reachable at the cut into the next window (a
//!    single witness would make the split unsound: concurrent operations
//!    inside a window can leave the deque in several distinct states).
//!
//! Splitting at quiescent cuts with full state-set carry is exact: the
//! windowed check accepts a history **iff** the monolithic check does.
//! The online caveat is operations still in flight — a cut is only taken
//! below `safe_ts`, the caller's bound on the earliest timestamp a
//! not-yet-buffered invocation might carry.

use crate::checker::{linearization_final_states, Violation};
use crate::history::Completed;
use crate::spec::SeqDeque;

/// Why a windowed check failed or could not proceed.
#[derive(Debug)]
pub enum WindowError {
    /// A window admitted no linearization from any carried state.
    Violation {
        /// Zero-based index of the offending window.
        window: usize,
        /// The operations of the offending window.
        ops: Vec<Completed>,
        /// Diagnostics from the underlying checker.
        violation: Violation,
    },
    /// More than `max_window` buffered operations accumulated without a
    /// quiescent cut (pathological overlap chain); raise `max_window` or
    /// lower the contention of the recorded run.
    Overflow {
        /// Operations buffered when the limit was hit.
        buffered: usize,
        /// The configured window limit.
        max_window: usize,
    },
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::Violation { window, ops, violation } => write!(
                f,
                "window {window} of {} ops is NOT linearizable (deepest prefix \
                 {:?});\nops: {:#?}",
                ops.len(),
                violation.deepest_prefix,
                ops
            ),
            WindowError::Overflow { buffered, max_window } => write!(
                f,
                "no quiescent cut within {buffered} buffered ops \
                 (max_window {max_window})"
            ),
        }
    }
}

/// Summary of a completed windowed check.
#[derive(Debug)]
pub struct WindowReport {
    /// Windows checked.
    pub windows: usize,
    /// Total operations checked across all windows.
    pub ops_checked: usize,
    /// Abstract states reachable after the final window.
    pub final_states: Vec<SeqDeque>,
}

/// Incremental windowed checker. Feed completed operations as they are
/// observed; call [`advance`](WindowedChecker::advance) to check every
/// window already closed by a quiescent cut, and
/// [`finish`](WindowedChecker::finish) once the run is over.
#[derive(Debug)]
pub struct WindowedChecker {
    states: Vec<SeqDeque>,
    buf: Vec<Completed>,
    max_window: usize,
    windows: usize,
    ops_checked: usize,
}

impl WindowedChecker {
    /// Creates a checker starting from `initial` that checks windows of
    /// at most `max_window` operations (capped at the underlying
    /// checker's limit of 64).
    pub fn new(initial: SeqDeque, max_window: usize) -> Self {
        let max_window = max_window.clamp(1, 64);
        WindowedChecker {
            states: vec![initial],
            buf: Vec::new(),
            max_window,
            windows: 0,
            ops_checked: 0,
        }
    }

    /// Buffers completed operations (any order; they are sorted by
    /// invocation timestamp internally).
    pub fn feed<I: IntoIterator<Item = Completed>>(&mut self, ops: I) {
        self.buf.extend(ops);
        self.buf.sort_by_key(|c| c.invoke_ts);
    }

    /// Operations buffered but not yet absorbed into a checked window.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Windows checked so far.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Operations checked so far.
    pub fn ops_checked(&self) -> usize {
        self.ops_checked
    }

    /// Checks every buffered window closed by a quiescent cut whose cut
    /// timestamp lies strictly below `safe_ts`.
    ///
    /// `safe_ts` is the caller's guarantee that every operation *not yet
    /// fed* (in flight, or completed but unread) has an invocation
    /// timestamp `>= safe_ts`; pass the minimum invocation timestamp of
    /// the currently pending operations, or `u64::MAX` after the run has
    /// quiesced. Returns the number of windows checked by this call.
    pub fn advance(&mut self, safe_ts: u64) -> Result<usize, WindowError> {
        let mut checked = 0;
        loop {
            match self.find_cut(safe_ts)? {
                None => return Ok(checked),
                Some(end) => {
                    self.check_window(end)?;
                    checked += 1;
                }
            }
        }
    }

    /// Consumes the checker after the run has quiesced (every operation
    /// fed), checking all remaining buffered operations.
    pub fn finish(mut self) -> Result<WindowReport, WindowError> {
        loop {
            match self.find_cut(u64::MAX)? {
                None => break,
                Some(end) => self.check_window(end)?,
            }
        }
        Ok(WindowReport {
            windows: self.windows,
            ops_checked: self.ops_checked,
            final_states: self.states,
        })
    }

    /// Finds the smallest prefix `buf[..end]` closed by a quiescent cut:
    /// every prefix operation responded before both (a) the next buffered
    /// operation's invocation and (b) `safe_ts`. The `safe_ts` bound
    /// alone closes the tail of the buffer — no yet-unseen operation can
    /// overlap it.
    ///
    /// `Overflow` is only raised when a **certified** cutless stretch
    /// exceeds the window: more than `max_window` operations all
    /// responded below `safe_ts` with no cut among them. Buffered
    /// operations at or beyond `safe_ts` never count toward overflow —
    /// a still-unseen invocation may yet land between them and produce
    /// a cut once `safe_ts` advances, so a live poll mid-burst merely
    /// keeps buffering instead of failing spuriously.
    fn find_cut(&self, safe_ts: u64) -> Result<Option<usize>, WindowError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        let mut max_respond = 0u64;
        let scan = self.buf.len().min(self.max_window + 1);
        let mut stable = 0usize;
        for i in 0..scan {
            max_respond = max_respond.max(self.buf[i].respond_ts);
            if max_respond >= safe_ts {
                break;
            }
            stable = i + 1;
            let cut = self.buf.get(i + 1).is_none_or(|c| max_respond < c.invoke_ts);
            if cut && i < self.max_window {
                return Ok(Some(i + 1));
            }
        }
        if stable > self.max_window {
            return Err(WindowError::Overflow {
                buffered: self.buf.len(),
                max_window: self.max_window,
            });
        }
        Ok(None)
    }

    fn check_window(&mut self, end: usize) -> Result<(), WindowError> {
        let window: Vec<Completed> = self.buf.drain(..end).collect();
        match linearization_final_states(&self.states, &window) {
            Ok(states) => {
                self.states = states;
                self.windows += 1;
                self.ops_checked += window.len();
                Ok(())
            }
            Err(violation) => Err(WindowError::Violation {
                window: self.windows,
                ops: window,
                violation,
            }),
        }
    }
}

/// One-shot convenience: windowed check of a complete history.
pub fn check_windowed(
    initial: SeqDeque,
    ops: &[Completed],
    max_window: usize,
) -> Result<WindowReport, WindowError> {
    let mut w = WindowedChecker::new(initial, max_window);
    w.feed(ops.iter().copied());
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DequeOp, DequeRet};

    fn op(invoke_ts: u64, respond_ts: u64, op: DequeOp, ret: DequeRet) -> Completed {
        Completed { invoke_ts, respond_ts, op, ret }
    }

    #[test]
    fn long_sequential_history_checks_in_many_windows() {
        // 300 ops — far beyond the monolithic checker's 64-op cap.
        let mut ops = Vec::new();
        let mut ts = 0;
        for i in 0..150u64 {
            ops.push(op(ts, ts + 1, DequeOp::PushRight(i), DequeRet::Okay));
            ts += 2;
        }
        for i in 0..150u64 {
            ops.push(op(ts, ts + 1, DequeOp::PopLeft, DequeRet::Value(i)));
            ts += 2;
        }
        let report = check_windowed(SeqDeque::unbounded(), &ops, 8).unwrap();
        assert_eq!(report.ops_checked, 300);
        assert!(report.windows >= 300 / 8);
        assert_eq!(report.final_states.len(), 1);
        assert!(report.final_states[0].is_empty());
    }

    #[test]
    fn ambiguous_cut_state_is_carried_exactly() {
        // Window 1: two concurrent pushLefts (final state <1,2> or
        // <2,1>). Window 2 resolves the ambiguity to <2,1>: a checker
        // carrying a single witness state would flag a false violation
        // roughly half the time.
        let ops = vec![
            op(0, 10, DequeOp::PushLeft(1), DequeRet::Okay),
            op(1, 9, DequeOp::PushLeft(2), DequeRet::Okay),
            op(20, 21, DequeOp::PopLeft, DequeRet::Value(2)),
            op(22, 23, DequeOp::PopLeft, DequeRet::Value(1)),
            op(24, 25, DequeOp::PopLeft, DequeRet::Empty),
        ];
        // max_window 2 forces the cut between the push pair and the pops.
        let report = check_windowed(SeqDeque::unbounded(), &ops, 2).unwrap();
        assert!(report.windows >= 2);
        assert_eq!(report.final_states.len(), 1);
        assert!(report.final_states[0].is_empty());
    }

    #[test]
    fn violation_in_a_late_window_is_reported() {
        let mut ops = Vec::new();
        let mut ts = 0;
        for i in 0..40u64 {
            ops.push(op(ts, ts + 1, DequeOp::PushRight(i), DequeRet::Okay));
            ts += 2;
        }
        // Pop a value that was never pushed.
        ops.push(op(ts, ts + 1, DequeOp::PopLeft, DequeRet::Value(999)));
        let err = check_windowed(SeqDeque::unbounded(), &ops, 8).unwrap_err();
        match err {
            WindowError::Violation { window, .. } => assert!(window >= 4),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn overflow_without_quiescent_cut() {
        // Five pairwise-overlapping ops with max_window 4: no cut exists.
        let ops: Vec<Completed> = (0..5u64)
            .map(|i| op(i, 100 + i, DequeOp::PushRight(i), DequeRet::Okay))
            .collect();
        let err = check_windowed(SeqDeque::unbounded(), &ops, 4).unwrap_err();
        assert!(matches!(err, WindowError::Overflow { buffered: 5, max_window: 4 }));
    }

    #[test]
    fn advance_respects_safe_ts() {
        let mut w = WindowedChecker::new(SeqDeque::unbounded(), 8);
        w.feed([op(0, 1, DequeOp::PushRight(1), DequeRet::Okay)]);
        // An unread op may still carry invoke_ts >= 1: no cut usable.
        assert_eq!(w.advance(1).unwrap(), 0);
        assert_eq!(w.buffered(), 1);
        // Once the caller vouches for ts < 10, the window closes.
        assert_eq!(w.advance(10).unwrap(), 1);
        assert_eq!(w.buffered(), 0);
        let report = w.finish().unwrap();
        assert_eq!(report.ops_checked, 1);
    }

    #[test]
    fn windowed_agrees_with_monolithic_on_small_histories() {
        use crate::checker::check_linearizable;
        // The stolen-last-element shapes from the checker tests.
        let good = vec![
            op(0, 1, DequeOp::PushRight(7), DequeRet::Okay),
            op(2, 5, DequeOp::PopRight, DequeRet::Empty),
            op(3, 4, DequeOp::PopLeft, DequeRet::Value(7)),
        ];
        assert!(check_linearizable(SeqDeque::unbounded(), &good).is_ok());
        assert!(check_windowed(SeqDeque::unbounded(), &good, 64).is_ok());
        let bad = vec![
            op(0, 1, DequeOp::PushRight(7), DequeRet::Okay),
            op(2, 5, DequeOp::PopRight, DequeRet::Value(7)),
            op(3, 4, DequeOp::PopLeft, DequeRet::Value(7)),
        ];
        assert!(check_linearizable(SeqDeque::unbounded(), &bad).is_err());
        assert!(check_windowed(SeqDeque::unbounded(), &bad, 64).is_err());
    }
}
