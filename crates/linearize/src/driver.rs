//! Randomized concurrent stress driver with linearizability checking.
//!
//! Runs many short *rounds*. In each round, `threads` workers hammer the
//! deque with a randomized mix of operations while recording a history;
//! after the workers join, the driver drains the deque sequentially
//! (appending the drain operations to the history) and asks the
//! [checker](crate::checker) whether the complete round history is
//! linearizable from the empty deque. Keeping rounds small keeps the
//! checker fast while still exercising heavily contended interleavings —
//! especially the empty/full boundary cases that are the paper's whole
//! point.

use std::sync::Barrier;

use dcas_deque::ConcurrentDeque;

use crate::checker::check_linearizable;
use crate::history::Recorder;
use crate::spec::{DequeOp, DequeRet, SeqDeque};

/// Stress-run parameters.
#[derive(Debug, Clone, Copy)]
pub struct StressConfig {
    /// Worker threads per round.
    pub threads: usize,
    /// Operations per worker per round.
    pub ops_per_thread: usize,
    /// Number of rounds.
    pub rounds: usize,
    /// Capacity of the sequential spec (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Percentage (0–100) of operations that are pushes.
    pub push_bias: u32,
    /// Maximum size for batched operations (`pushRightN` & friends).
    /// `0` disables batching (every operation is a single); otherwise a
    /// quarter of the operations become batched with a random size in
    /// `2..=max_batch` and are checked as one atomic multi-element
    /// transition each. Capped at [`dcas_deque::MAX_BATCH`] so each
    /// recorded operation maps to exactly one chunk of the
    /// implementation.
    pub max_batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            threads: 4,
            ops_per_thread: 6,
            rounds: 200,
            capacity: None,
            push_bias: 50,
            max_batch: 0,
            seed: 0x5EED,
        }
    }
}

/// Outcome of a stress run.
#[derive(Debug)]
pub struct StressReport {
    /// Rounds executed (== rounds configured on success).
    pub rounds: usize,
    /// Total operations checked across all rounds.
    pub total_ops: usize,
}

#[inline]
fn next_rand(x: &mut u64) -> u64 {
    // SplitMix64: deterministic, seedable, dependency-free.
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Issues one batched operation (size `k`, chunk-atomic on the paper
/// deques) and records it as a single history operation.
fn batched_op<D: ConcurrentDeque<u64>>(
    deque: &D,
    log: &mut crate::history::ThreadRecorder<'_>,
    value_base: u64,
    k: usize,
    is_push: bool,
    is_right: bool,
) {
    use crate::spec::Batch;
    if is_push {
        let vals: Vec<u64> = (0..k as u64).map(|o| value_base + o).collect();
        let batch = Batch::new(&vals);
        let op = if is_right {
            DequeOp::PushRightN(batch)
        } else {
            DequeOp::PushLeftN(batch)
        };
        log.invoke(op);
        let res = if is_right {
            deque.push_right_n(vals)
        } else {
            deque.push_left_n(vals)
        };
        log.respond(match res {
            Ok(()) => DequeRet::Okay,
            Err(_) => DequeRet::Full,
        });
    } else {
        let op = if is_right {
            DequeOp::PopRightN(k as u8)
        } else {
            DequeOp::PopLeftN(k as u8)
        };
        log.invoke(op);
        let vals =
            if is_right { deque.pop_right_n(k) } else { deque.pop_left_n(k) };
        log.respond(DequeRet::Values(Batch::new(&vals)));
    }
}

/// Runs the stress workload against `deque` and checks every round's
/// history for linearizability.
///
/// Values pushed are unique across the whole run, which makes violations
/// (lost, duplicated, or reordered elements) maximally visible to the
/// checker.
///
/// # Errors
///
/// Returns a description of the first non-linearizable round found.
pub fn stress_and_check<D: ConcurrentDeque<u64>>(
    deque: &D,
    config: StressConfig,
) -> Result<StressReport, String> {
    let mut total_ops = 0usize;
    for round in 0..config.rounds {
        let recorder = Recorder::new();
        let barrier = Barrier::new(config.threads);
        let logs = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..config.threads {
                let recorder = &recorder;
                let barrier = &barrier;
                handles.push(s.spawn(move || {
                    let mut log = recorder.thread(t);
                    let mut rng = config
                        .seed
                        .wrapping_add(round as u64)
                        .wrapping_mul(0x100000001B3)
                        .wrapping_add(t as u64);
                    let max_batch = config.max_batch.min(dcas_deque::MAX_BATCH);
                    barrier.wait();
                    for i in 0..config.ops_per_thread {
                        // Each operation slot owns MAX_BATCH value IDs so
                        // batched pushes stay globally unique.
                        let value = ((round * config.threads * config.ops_per_thread
                            + t * config.ops_per_thread
                            + i)
                            * dcas_deque::MAX_BATCH) as u64;
                        let r = next_rand(&mut rng);
                        let is_push = (r % 100) < config.push_bias as u64;
                        let is_right = (r >> 32).is_multiple_of(2);
                        let batch_k = if max_batch >= 2 && (r >> 16).is_multiple_of(4) {
                            Some(2 + ((r >> 40) as usize % (max_batch - 1)))
                        } else {
                            None
                        };
                        if let Some(k) = batch_k {
                            batched_op(deque, &mut log, value, k, is_push, is_right);
                            continue;
                        }
                        match (is_push, is_right) {
                            (true, true) => {
                                log.invoke(DequeOp::PushRight(value));
                                let ret = match deque.push_right(value) {
                                    Ok(()) => DequeRet::Okay,
                                    Err(_) => DequeRet::Full,
                                };
                                log.respond(ret);
                            }
                            (true, false) => {
                                log.invoke(DequeOp::PushLeft(value));
                                let ret = match deque.push_left(value) {
                                    Ok(()) => DequeRet::Okay,
                                    Err(_) => DequeRet::Full,
                                };
                                log.respond(ret);
                            }
                            (false, true) => {
                                log.invoke(DequeOp::PopRight);
                                let ret = match deque.pop_right() {
                                    Some(v) => DequeRet::Value(v),
                                    None => DequeRet::Empty,
                                };
                                log.respond(ret);
                            }
                            (false, false) => {
                                log.invoke(DequeOp::PopLeft);
                                let ret = match deque.pop_left() {
                                    Some(v) => DequeRet::Value(v),
                                    None => DequeRet::Empty,
                                };
                                log.respond(ret);
                            }
                        }
                    }
                    log
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });

        // Drain sequentially so the round history pins down the final
        // abstract state; recorded like any other operations. Batched
        // workloads drain in chunks, both to exercise the batch-pop spec
        // arm and to keep the drain within the checker's history cap
        // (batched pushes can leave several elements per recorded op).
        let mut drain_log = recorder.thread(config.threads);
        if config.max_batch >= 2 {
            let k = config.max_batch.min(dcas_deque::MAX_BATCH);
            loop {
                drain_log.invoke(DequeOp::PopLeftN(k as u8));
                let got = deque.pop_left_n(k);
                let done = got.len() < k;
                drain_log.respond(DequeRet::Values(crate::spec::Batch::new(&got)));
                if done {
                    break;
                }
            }
        } else {
            loop {
                drain_log.invoke(DequeOp::PopLeft);
                match deque.pop_left() {
                    Some(v) => drain_log.respond(DequeRet::Value(v)),
                    None => {
                        drain_log.respond(DequeRet::Empty);
                        break;
                    }
                }
            }
        }

        let mut all_logs = logs;
        all_logs.push(drain_log);
        let history = recorder.finish(all_logs);
        let ops = history.completed();
        total_ops += ops.len();

        let initial = match config.capacity {
            Some(c) => SeqDeque::bounded(c),
            None => SeqDeque::unbounded(),
        };
        if let Err(v) = check_linearizable(initial, &ops) {
            return Err(format!(
                "round {round}: history of {} ops on `{}` is NOT linearizable \
                 (deepest prefix {:?});\nops: {:#?}",
                ops.len(),
                deque.impl_name(),
                v.deepest_prefix,
                ops
            ));
        }
    }
    Ok(StressReport { rounds: config.rounds, total_ops })
}

/// A deque with the work-stealing access discipline: one owner thread
/// pushes and pops the bottom, any number of thieves take from the top.
///
/// This is the Chase–Lev shape (and the restricted pattern ABP is
/// designed for): unlike [`ConcurrentDeque`], the bottom-end operations
/// are *not* thread-safe against each other — the driver guarantees a
/// single owner calls them. `steal_top` must resolve internal aborts
/// itself (retry until a value is obtained or empty is observed), so
/// its return maps cleanly onto `PopLeft`.
pub trait OwnerStealDeque: Sync {
    /// Owner-only: push at the bottom (records as `PushRight`).
    fn push_bottom(&self, v: u64);
    /// Owner-only: pop from the bottom (records as `PopRight`).
    fn pop_bottom(&self) -> Option<u64>;
    /// Any thread: steal from the top (records as `PopLeft`).
    fn steal_top(&self) -> Option<u64>;
    /// Implementation name for error messages.
    fn impl_name(&self) -> &'static str;
}

/// Runs the owner/thief stress workload against `deque` and checks
/// every round's history for linearizability against the sequential
/// deque spec (owner = right end, thieves = left end).
///
/// Thread 0 is the owner: a randomized mix of `push_bottom` and
/// `pop_bottom` (biased by `push_bias`). Threads `1..threads` are
/// thieves issuing `steal_top`. After the workers join, the *owner*
/// drains the deque (recorded as `PopRight`s) so the round history pins
/// down the final abstract state.
///
/// # Errors
///
/// Returns a description of the first non-linearizable round found.
pub fn stress_owner_steal<D: OwnerStealDeque>(
    deque: &D,
    config: StressConfig,
) -> Result<StressReport, String> {
    assert!(config.threads >= 2, "need an owner and at least one thief");
    let mut total_ops = 0usize;
    for round in 0..config.rounds {
        let recorder = Recorder::new();
        let barrier = Barrier::new(config.threads);
        let logs = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..config.threads {
                let recorder = &recorder;
                let barrier = &barrier;
                handles.push(s.spawn(move || {
                    let mut log = recorder.thread(t);
                    let mut rng = config
                        .seed
                        .wrapping_add(round as u64)
                        .wrapping_mul(0x100000001B3)
                        .wrapping_add(t as u64);
                    barrier.wait();
                    for i in 0..config.ops_per_thread {
                        if t == 0 {
                            let value = (round * config.ops_per_thread + i) as u64;
                            let r = next_rand(&mut rng);
                            if (r % 100) < config.push_bias as u64 {
                                log.invoke(DequeOp::PushRight(value));
                                deque.push_bottom(value);
                                log.respond(DequeRet::Okay);
                            } else {
                                log.invoke(DequeOp::PopRight);
                                let ret = match deque.pop_bottom() {
                                    Some(v) => DequeRet::Value(v),
                                    None => DequeRet::Empty,
                                };
                                log.respond(ret);
                            }
                        } else {
                            log.invoke(DequeOp::PopLeft);
                            let ret = match deque.steal_top() {
                                Some(v) => DequeRet::Value(v),
                                None => DequeRet::Empty,
                            };
                            log.respond(ret);
                        }
                    }
                    log
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });

        // Owner drains what the thieves left behind.
        let mut drain_log = recorder.thread(config.threads);
        loop {
            drain_log.invoke(DequeOp::PopRight);
            match deque.pop_bottom() {
                Some(v) => drain_log.respond(DequeRet::Value(v)),
                None => {
                    drain_log.respond(DequeRet::Empty);
                    break;
                }
            }
        }

        let mut all_logs = logs;
        all_logs.push(drain_log);
        let history = recorder.finish(all_logs);
        let ops = history.completed();
        total_ops += ops.len();

        if let Err(v) = check_linearizable(SeqDeque::unbounded(), &ops) {
            return Err(format!(
                "round {round}: owner/steal history of {} ops on `{}` is NOT \
                 linearizable (deepest prefix {:?});\nops: {:#?}",
                ops.len(),
                deque.impl_name(),
                v.deepest_prefix,
                ops
            ));
        }
    }
    Ok(StressReport { rounds: config.rounds, total_ops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcas_deque::Full;
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A trivially correct deque: VecDeque under a mutex.
    struct Locked {
        cap: Option<usize>,
        inner: Mutex<VecDeque<u64>>,
    }

    impl ConcurrentDeque<u64> for Locked {
        fn push_right(&self, v: u64) -> Result<(), Full<u64>> {
            let mut g = self.inner.lock().unwrap();
            if self.cap.is_some_and(|c| g.len() == c) {
                return Err(Full(v));
            }
            g.push_back(v);
            Ok(())
        }
        fn push_left(&self, v: u64) -> Result<(), Full<u64>> {
            let mut g = self.inner.lock().unwrap();
            if self.cap.is_some_and(|c| g.len() == c) {
                return Err(Full(v));
            }
            g.push_front(v);
            Ok(())
        }
        fn pop_right(&self) -> Option<u64> {
            self.inner.lock().unwrap().pop_back()
        }
        fn pop_left(&self) -> Option<u64> {
            self.inner.lock().unwrap().pop_front()
        }
        fn impl_name(&self) -> &'static str {
            "locked-reference"
        }
        // Atomic batch overrides (the trait defaults are per-element
        // loops, which would be mis-recorded as one atomic op).
        fn push_right_n(&self, vals: Vec<u64>) -> Result<(), Full<Vec<u64>>> {
            let mut g = self.inner.lock().unwrap();
            if self.cap.is_some_and(|c| g.len() + vals.len() > c) {
                return Err(Full(vals));
            }
            g.extend(&vals);
            Ok(())
        }
        fn push_left_n(&self, vals: Vec<u64>) -> Result<(), Full<Vec<u64>>> {
            let mut g = self.inner.lock().unwrap();
            if self.cap.is_some_and(|c| g.len() + vals.len() > c) {
                return Err(Full(vals));
            }
            for v in vals {
                g.push_front(v);
            }
            Ok(())
        }
        fn pop_right_n(&self, n: usize) -> Vec<u64> {
            let mut g = self.inner.lock().unwrap();
            (0..n).filter_map(|_| g.pop_back()).collect()
        }
        fn pop_left_n(&self, n: usize) -> Vec<u64> {
            let mut g = self.inner.lock().unwrap();
            (0..n).filter_map(|_| g.pop_front()).collect()
        }
    }

    /// A deliberately broken deque: pop_right occasionally returns a
    /// stale duplicate.
    struct Broken {
        inner: Locked,
        last: Mutex<Option<u64>>,
        hits: Mutex<u32>,
    }

    impl ConcurrentDeque<u64> for Broken {
        fn push_right(&self, v: u64) -> Result<(), Full<u64>> {
            self.inner.push_right(v)
        }
        fn push_left(&self, v: u64) -> Result<(), Full<u64>> {
            self.inner.push_left(v)
        }
        fn pop_right(&self) -> Option<u64> {
            let mut hits = self.hits.lock().unwrap();
            *hits += 1;
            if hits.is_multiple_of(5) {
                if let Some(stale) = *self.last.lock().unwrap() {
                    return Some(stale); // duplicate!
                }
            }
            let v = self.inner.pop_right();
            if let Some(v) = v {
                *self.last.lock().unwrap() = Some(v);
            }
            v
        }
        fn pop_left(&self) -> Option<u64> {
            self.inner.pop_left()
        }
        fn impl_name(&self) -> &'static str {
            "broken-duplicating"
        }
    }

    #[test]
    fn locked_reference_passes() {
        let d = Locked { cap: None, inner: Mutex::new(VecDeque::new()) };
        let report = stress_and_check(
            &d,
            StressConfig { rounds: 50, ..StressConfig::default() },
        )
        .expect("reference deque must be linearizable");
        assert_eq!(report.rounds, 50);
        assert!(report.total_ops > 0);
    }

    #[test]
    fn locked_reference_bounded_passes() {
        let d = Locked { cap: Some(3), inner: Mutex::new(VecDeque::new()) };
        stress_and_check(
            &d,
            StressConfig {
                rounds: 50,
                capacity: Some(3),
                push_bias: 70,
                ..StressConfig::default()
            },
        )
        .expect("bounded reference deque must be linearizable");
    }

    #[test]
    fn locked_reference_batched_passes() {
        let d = Locked { cap: None, inner: Mutex::new(VecDeque::new()) };
        stress_and_check(
            &d,
            StressConfig { rounds: 50, max_batch: 4, ..StressConfig::default() },
        )
        .expect("atomic batched reference must be linearizable");
        let d = Locked { cap: Some(8), inner: Mutex::new(VecDeque::new()) };
        stress_and_check(
            &d,
            StressConfig {
                rounds: 50,
                capacity: Some(8),
                push_bias: 70,
                max_batch: 8,
                ..StressConfig::default()
            },
        )
        .expect("bounded atomic batched reference must be linearizable");
    }

    /// A deque whose batched pops return the right values in the wrong
    /// order — the batch spec arms must reject it.
    struct BrokenBatchOrder(Locked);

    impl ConcurrentDeque<u64> for BrokenBatchOrder {
        fn push_right(&self, v: u64) -> Result<(), Full<u64>> {
            self.0.push_right(v)
        }
        fn push_left(&self, v: u64) -> Result<(), Full<u64>> {
            self.0.push_left(v)
        }
        fn pop_right(&self) -> Option<u64> {
            self.0.pop_right()
        }
        fn pop_left(&self) -> Option<u64> {
            self.0.pop_left()
        }
        fn push_right_n(&self, vals: Vec<u64>) -> Result<(), Full<Vec<u64>>> {
            self.0.push_right_n(vals)
        }
        fn push_left_n(&self, vals: Vec<u64>) -> Result<(), Full<Vec<u64>>> {
            self.0.push_left_n(vals)
        }
        fn pop_right_n(&self, n: usize) -> Vec<u64> {
            let mut v = self.0.pop_right_n(n);
            v.reverse(); // wrong order!
            v
        }
        fn pop_left_n(&self, n: usize) -> Vec<u64> {
            let mut v = self.0.pop_left_n(n);
            v.reverse(); // wrong order!
            v
        }
        fn impl_name(&self) -> &'static str {
            "broken-batch-order"
        }
    }

    #[test]
    fn misordered_batch_pop_is_caught() {
        let d = BrokenBatchOrder(Locked { cap: None, inner: Mutex::new(VecDeque::new()) });
        let res = stress_and_check(
            &d,
            StressConfig {
                rounds: 100,
                push_bias: 60,
                max_batch: 4,
                ..StressConfig::default()
            },
        );
        assert!(res.is_err(), "misordered batch pops must fail the checker");
    }

    #[test]
    fn broken_deque_is_caught() {
        let d = Broken {
            inner: Locked { cap: None, inner: Mutex::new(VecDeque::new()) },
            last: Mutex::new(None),
            hits: Mutex::new(0),
        };
        let res = stress_and_check(
            &d,
            StressConfig { rounds: 100, push_bias: 60, ..StressConfig::default() },
        );
        assert!(res.is_err(), "duplicating deque must fail the checker");
    }

    /// Owner/steal view of the locked reference deque.
    struct LockedOwner(Locked);

    impl OwnerStealDeque for LockedOwner {
        fn push_bottom(&self, v: u64) {
            self.0.push_right(v).unwrap();
        }
        fn pop_bottom(&self) -> Option<u64> {
            self.0.pop_right()
        }
        fn steal_top(&self) -> Option<u64> {
            self.0.pop_left()
        }
        fn impl_name(&self) -> &'static str {
            "locked-owner-steal"
        }
    }

    #[test]
    fn owner_steal_reference_passes() {
        let d = LockedOwner(Locked { cap: None, inner: Mutex::new(VecDeque::new()) });
        let report = stress_owner_steal(
            &d,
            StressConfig { rounds: 50, push_bias: 60, ..StressConfig::default() },
        )
        .expect("reference owner/steal deque must be linearizable");
        assert_eq!(report.rounds, 50);
        assert!(report.total_ops > 0);
    }

    /// Broken owner/steal deque: a steal occasionally re-delivers the
    /// previously stolen value instead of removing a fresh one.
    struct BrokenSteal {
        inner: Locked,
        last: Mutex<Option<u64>>,
        hits: Mutex<u32>,
    }

    impl OwnerStealDeque for BrokenSteal {
        fn push_bottom(&self, v: u64) {
            self.inner.push_right(v).unwrap();
        }
        fn pop_bottom(&self) -> Option<u64> {
            self.inner.pop_right()
        }
        fn steal_top(&self) -> Option<u64> {
            let mut hits = self.hits.lock().unwrap();
            *hits += 1;
            if hits.is_multiple_of(4) {
                if let Some(stale) = *self.last.lock().unwrap() {
                    return Some(stale); // duplicate steal!
                }
            }
            let v = self.inner.pop_left();
            if let Some(v) = v {
                *self.last.lock().unwrap() = Some(v);
            }
            v
        }
        fn impl_name(&self) -> &'static str {
            "broken-duplicating-steal"
        }
    }

    #[test]
    fn duplicate_steal_is_caught() {
        let d = BrokenSteal {
            inner: Locked { cap: None, inner: Mutex::new(VecDeque::new()) },
            last: Mutex::new(None),
            hits: Mutex::new(0),
        };
        let res = stress_owner_steal(
            &d,
            StressConfig { rounds: 100, push_bias: 60, ..StressConfig::default() },
        );
        assert!(res.is_err(), "duplicating steal must fail the checker");
    }
}
