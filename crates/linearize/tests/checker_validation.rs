//! Cross-validation of the Wing & Gong checker against a brute-force
//! reference.
//!
//! The checker is itself load-bearing for this reproduction (it is the
//! runtime half of the Theorem 3.1/4.1 validation), so we verify it
//! against an independent implementation: enumerate *all* permutations of
//! a small history, filter those consistent with the real-time order, and
//! replay each against the sequential specification.

use dcas_linearize::history::Completed;
use dcas_linearize::{check_linearizable, DequeOp, DequeRet, SeqDeque};
use proptest::prelude::*;

/// Brute force: does any real-time-respecting permutation replay legally?
fn brute_force(initial: &SeqDeque, ops: &[Completed]) -> bool {
    fn recurse(state: &SeqDeque, remaining: &mut Vec<usize>, ops: &[Completed]) -> bool {
        if remaining.is_empty() {
            return true;
        }
        let min_resp = remaining.iter().map(|&i| ops[i].respond_ts).min().unwrap();
        for k in 0..remaining.len() {
            let i = remaining[k];
            if ops[i].invoke_ts > min_resp {
                continue;
            }
            let (ret, next) = state.peek_apply(ops[i].op);
            if ret != ops[i].ret {
                continue;
            }
            remaining.swap_remove(k);
            if recurse(&next, remaining, ops) {
                return true;
            }
            remaining.push(i);
            let last = remaining.len() - 1;
            remaining.swap(k, last);
        }
        false
    }
    let mut idx: Vec<usize> = (0..ops.len()).collect();
    recurse(initial, &mut idx, ops)
}

fn arb_history(max_ops: usize) -> impl Strategy<Value = Vec<Completed>> {
    // Random ops with random (possibly overlapping) intervals and random
    // claimed return values — most are non-linearizable, some are.
    let op = prop_oneof![
        (0u64..4).prop_map(DequeOp::PushRight),
        (0u64..4).prop_map(DequeOp::PushLeft),
        Just(DequeOp::PopRight),
        Just(DequeOp::PopLeft),
    ];
    let ret = prop_oneof![
        Just(DequeRet::Okay),
        Just(DequeRet::Full),
        Just(DequeRet::Empty),
        (0u64..4).prop_map(DequeRet::Value),
    ];
    proptest::collection::vec((op, ret, 0u64..12, 1u64..6), 0..max_ops).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (op, ret, start, dur))| Completed {
                // Unique, ordered timestamps per op with overlap allowed.
                invoke_ts: start * 100 + i as u64,
                respond_ts: (start + dur) * 100 + i as u64 + 50,
                op,
                ret,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn checker_agrees_with_brute_force_unbounded(ops in arb_history(6)) {
        let expect = brute_force(&SeqDeque::unbounded(), &ops);
        let got = check_linearizable(SeqDeque::unbounded(), &ops).is_ok();
        prop_assert_eq!(got, expect, "checker disagrees on {:?}", ops);
    }

    #[test]
    fn checker_agrees_with_brute_force_bounded(ops in arb_history(6), cap in 1usize..3) {
        let expect = brute_force(&SeqDeque::bounded(cap), &ops);
        let got = check_linearizable(SeqDeque::bounded(cap), &ops).is_ok();
        prop_assert_eq!(got, expect, "checker disagrees (cap {}) on {:?}", cap, ops);
    }
}

#[test]
fn sanity_brute_force_examples() {
    let ops = vec![
        Completed { invoke_ts: 0, respond_ts: 1, op: DequeOp::PushRight(1), ret: DequeRet::Okay },
        Completed { invoke_ts: 2, respond_ts: 3, op: DequeOp::PopLeft, ret: DequeRet::Value(1) },
    ];
    assert!(brute_force(&SeqDeque::unbounded(), &ops));
    let ops = vec![
        Completed { invoke_ts: 0, respond_ts: 1, op: DequeOp::PopLeft, ret: DequeRet::Value(1) },
        Completed { invoke_ts: 2, respond_ts: 3, op: DequeOp::PushRight(1), ret: DequeRet::Okay },
    ];
    assert!(!brute_force(&SeqDeque::unbounded(), &ops));
}
