//! Sharded broker quickstart: one produce/consume API fanned across N
//! deque shards, with batching, keyed routing, backpressure, and shard
//! death all visible from the outside.
//!
//! Mirrored by `tests/broker_quickstart.rs` so the snippet can never
//! drift from the real API. Run with
//! `cargo run --release --example broker`.

use std::sync::atomic::{AtomicU64, Ordering};

use dcas_deques::prelude::*;

fn main() {
    // A broker over 4 unbounded list-deque shards. Values spread by
    // per-producer round-robin in batches of MAX_BATCH (8).
    let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(4);

    let produced = AtomicU64::new(0);
    let consumed = AtomicU64::new(0);
    const TOTAL: u64 = 40_000;

    std::thread::scope(|s| {
        // Two producers: one round-robin, one keyed (all of a key's
        // values land on one shard, so per-key order is the shard's
        // FIFO order).
        s.spawn(|| {
            let mut p = broker.producer();
            for v in 0..TOTAL / 2 {
                p.send(v).expect("unbounded shards never backpressure");
                produced.fetch_add(1, Ordering::Relaxed);
            }
            // Dropping the producer flushes its partial batches.
        });
        s.spawn(|| {
            let mut p = broker.producer();
            for v in TOTAL / 2..TOTAL {
                p.send_keyed(v % 17, v).expect("unbounded");
                produced.fetch_add(1, Ordering::Relaxed);
            }
        });

        // Two consumers: each prefers one home shard, rebalancing onto
        // the others (steal_half provenance) when home runs dry.
        for _ in 0..2 {
            s.spawn(|| {
                let mut c = broker.consumer();
                loop {
                    match c.recv() {
                        Some(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if produced.load(Ordering::Acquire) == TOTAL
                                && consumed.load(Ordering::Acquire) == TOTAL
                            {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });
    assert_eq!(consumed.load(Ordering::SeqCst), TOTAL);
    let stats = broker.stats();
    println!("flat broker: {TOTAL} values through 4 shards");
    for (name, v) in stats.fields() {
        println!("  {name:>22}: {v}");
    }

    // Bounded shards surface backpressure as a typed error carrying the
    // rejected values — nothing is silently dropped.
    let bounded: ShardedBroker<u64, _> = ShardedBroker::bounded_array(2, 8);
    let mut p = bounded.producer();
    let mut rejected = Vec::new();
    for v in 0..200 {
        if let Err(bp) = p.send(v) {
            rejected.extend(bp.into_inner());
        }
    }
    if let Err(bp) = p.flush() {
        rejected.extend(bp.into_inner());
    }
    drop(p);
    let accepted = bounded.drain_remaining().len();
    assert_eq!(accepted + rejected.len(), 200, "backpressure conserved every value");
    println!(
        "\nbounded broker (2 shards x 8 cap): accepted {accepted}, \
         backpressured {} — all 200 accounted for",
        rejected.len()
    );

    // Shard death: kill a shard and the broker rescues its contents
    // onto survivors and keeps serving.
    let frail: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(4);
    let mut p = frail.producer();
    for v in 0..64 {
        p.send(v).unwrap();
    }
    drop(p);
    let rescued = frail.kill_shard(1);
    let mut c = frail.consumer();
    let mut served = 0;
    while c.recv().is_some() {
        served += 1;
    }
    drop(c);
    assert_eq!(served, 64, "shard death lost values");
    println!(
        "\nkilled shard 1 (rescued {rescued} values): all 64 served by the \
         {} survivors",
        frail.alive_shards()
    );
}
