//! The GC-free deque: Section 4's algorithm under the Lock-Free
//! Reference Counting (LFRC) transformation the authors describe in
//! Section 1.1 — no garbage collector, no epochs, every node recycled
//! through a type-stable pool the moment its count drops to zero.
//!
//! Run with `cargo run --release --example gc_free`.

use std::sync::Arc;

use dcas::GlobalSeqLock;
use dcas_deques::deque::list_lfrc::RawLfrcListDeque;
use dcas_deques::deque::LfrcListDeque;

fn main() {
    recycling_demo();
    concurrent_demo();
    cycle_demo();
}

fn recycling_demo() {
    println!("=== Node recycling through the type-stable pool ===");
    let d = RawLfrcListDeque::<u32, GlobalSeqLock>::new();
    for round in 0..5 {
        for i in 0..1000 {
            d.push_right(i).unwrap();
        }
        for _ in 0..1000 {
            d.pop_left().unwrap();
        }
        // Quiesce: flush logically-deleted stragglers.
        assert_eq!(d.pop_left(), None);
        assert_eq!(d.pop_right(), None);
        let s = d.stats();
        println!(
            "round {round}: 1000 pushes served; pool total {} nodes, {} free (all recycled: {})",
            s.pool_total,
            s.pool_free,
            s.pool_free == s.pool_total
        );
    }
    let s = d.stats();
    assert_eq!(s.pool_free, s.pool_total, "leak detected");
    println!("5000 pushes were served by only {} ever-allocated nodes\n", s.pool_total);
}

fn concurrent_demo() {
    println!("=== Concurrent use, then a full census ===");
    let d: Arc<LfrcListDeque<u64>> = Arc::new(LfrcListDeque::new());
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let d = Arc::clone(&d);
            s.spawn(move || {
                for i in 0..10_000u64 {
                    let v = t * 10_000 + i;
                    if v % 2 == 0 {
                        d.push_right(v).unwrap();
                    } else {
                        d.push_left(v).unwrap();
                    }
                    if i % 2 == 1 {
                        let _ = d.pop_left();
                        let _ = d.pop_right();
                    }
                }
            });
        }
    });
    let mut drained = 0;
    while d.pop_left().is_some() {
        drained += 1;
    }
    let _ = d.pop_right();
    let _ = d.pop_left();
    let s = d.stats();
    println!(
        "drained {drained} leftovers; pool: {}/{} free — counts balanced: {}\n",
        s.pool_free,
        s.pool_total,
        s.pool_free == s.pool_total
    );
    assert_eq!(s.pool_free, s.pool_total);
}

fn cycle_demo() {
    println!("=== The two-null dead cycle, broken and reclaimed ===");
    // Popping one element from each side of a 2-element deque leaves two
    // logically-deleted nodes that reference each other. Pure reference
    // counting could never reclaim that cycle; the double-splice winner
    // breaks it explicitly (see list_lfrc::break_cycle).
    let d = RawLfrcListDeque::<u32, GlobalSeqLock>::new();
    for round in 0..10_000 {
        d.push_left(1).unwrap();
        d.push_right(2).unwrap();
        assert_eq!(d.pop_right(), Some(2));
        assert_eq!(d.pop_left(), Some(1));
        assert_eq!(d.pop_right(), None); // triggers the double splice
        let _ = round;
    }
    let s = d.stats();
    println!(
        "10000 two-null rounds: pool grew to only {} nodes, {} free — no cycle leak",
        s.pool_total, s.pool_free
    );
    assert_eq!(s.pool_free, s.pool_total);
}
