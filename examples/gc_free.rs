//! The GC-free deque: Section 4's algorithm under the Lock-Free
//! Reference Counting (LFRC) transformation the authors describe in
//! Section 1.1 — reclamation *decisions* made by reference counts the
//! moment a node's count drops to zero (no epochs involved in the
//! decision), with the freed memory routed through the strategy's
//! pluggable `Reclaimer` backend.
//!
//! Run with `cargo run --release --example gc_free`.

use std::sync::Arc;

use dcas::{DcasStrategy, GlobalSeqLock, HarrisMcas, Reclaimer};
use dcas_deques::deque::list_lfrc::RawLfrcListDeque;
use dcas_deques::deque::LfrcListDeque;

fn main() {
    recycling_demo();
    concurrent_demo();
    cycle_demo();
    census_demo();
}

/// The allocator's own view of everything the demos above churned: the
/// LFRC counts decide *when* a node dies, but the memory itself cycles
/// through the per-family page pools, and their gauges must agree with
/// the deque-level audits — every page still resident, zero slots
/// outstanding at quiescence.
fn census_demo() {
    println!("\n=== Node-pool census ===");
    for (name, pages, outstanding, remote_frees) in dcas::alloc::census() {
        println!(
            "pool {name:<12} pages {pages:>5} ({:>6} KiB resident)  \
             outstanding {outstanding:>6}  remote frees {remote_frees:>8}",
            pages * 4
        );
    }
    assert_eq!(
        dcas::alloc::nodes_outstanding(),
        0,
        "pool census disagrees with the deque audits"
    );
}

/// Flushes the reclamation backend until every dead node has actually
/// been freed, then returns the outstanding count (must be zero at
/// quiescence with the deque drained).
fn drain_backend<S: DcasStrategy>(d: &RawLfrcListDeque<u32, S>) -> u64 {
    for _ in 0..1_000 {
        if d.stats().outstanding == 0 {
            break;
        }
        S::Reclaimer::flush();
        // Recently-exited threads may still be migrating their retirement
        // queues to the collector (scope() returns before TLS teardown
        // finishes); yielding lets them get there.
        std::thread::yield_now();
    }
    d.stats().outstanding
}

fn recycling_demo() {
    println!("=== Immediate death, deferred free: the allocation audit ===");
    let d = RawLfrcListDeque::<u32, GlobalSeqLock>::new();
    for round in 0..5 {
        for i in 0..1000 {
            d.push_right(i).unwrap();
        }
        for _ in 0..1000 {
            d.pop_left().unwrap();
        }
        // Quiesce: flush logically-deleted stragglers.
        assert_eq!(d.pop_left(), None);
        assert_eq!(d.pop_right(), None);
        let outstanding = drain_backend(&d);
        let s = d.stats();
        println!(
            "round {round}: {} nodes allocated so far, {outstanding} still unfreed \
             (audit balanced: {})",
            s.allocated,
            outstanding == 0
        );
    }
    assert_eq!(drain_backend(&d), 0, "leak detected");
    println!(
        "every one of the {} allocated nodes was freed\n",
        d.stats().allocated
    );
}

fn concurrent_demo() {
    println!("=== Concurrent use, then a full census ===");
    let d: Arc<LfrcListDeque<u64>> = Arc::new(LfrcListDeque::new());
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let d = Arc::clone(&d);
            s.spawn(move || {
                for i in 0..10_000u64 {
                    let v = t * 10_000 + i;
                    if v.is_multiple_of(2) {
                        d.push_right(v).unwrap();
                    } else {
                        d.push_left(v).unwrap();
                    }
                    if i % 2 == 1 {
                        let _ = d.pop_left();
                        let _ = d.pop_right();
                    }
                }
            });
        }
    });
    let mut drained = 0;
    while d.pop_left().is_some() {
        drained += 1;
    }
    let _ = d.pop_right();
    let _ = d.pop_left();
    let mut s = d.stats();
    for _ in 0..1_000 {
        if s.outstanding == 0 {
            break;
        }
        <HarrisMcas as DcasStrategy>::Reclaimer::flush();
        // See drain_backend: give exiting worker threads a chance to
        // hand their retirement queues to the collector.
        std::thread::yield_now();
        s = d.stats();
    }
    println!(
        "drained {drained} leftovers; {} allocated, {} outstanding — audit balanced: {}\n",
        s.allocated,
        s.outstanding,
        s.outstanding == 0
    );
    assert_eq!(s.outstanding, 0);
}

fn cycle_demo() {
    println!("=== The two-null dead cycle, broken and reclaimed ===");
    // Popping one element from each side of a 2-element deque leaves two
    // logically-deleted nodes that reference each other. Pure reference
    // counting could never reclaim that cycle; the double-splice winner
    // breaks it explicitly (see list_lfrc::break_cycle).
    let d = RawLfrcListDeque::<u32, GlobalSeqLock>::new();
    for round in 0..10_000 {
        d.push_left(1).unwrap();
        d.push_right(2).unwrap();
        assert_eq!(d.pop_right(), Some(2));
        assert_eq!(d.pop_left(), Some(1));
        assert_eq!(d.pop_right(), None); // triggers the double splice
        let _ = round;
    }
    let outstanding = drain_backend(&d);
    let s = d.stats();
    println!(
        "10000 two-null rounds: {} nodes allocated, {outstanding} unfreed — no cycle leak",
        s.allocated
    );
    assert_eq!(outstanding, 0);
}
