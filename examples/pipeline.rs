//! A two-stage pipeline with requeueing — a workload that needs a real
//! deque, not just a queue — now run through the sharded broker.
//!
//! Producers feed jobs through the broker's batched round-robin path; a
//! worker that finds a job not yet finished **requeues it at the front**
//! of the shard it came from ([`Consumer::requeue`] rides the deque's
//! left end), so an in-progress job retains its priority instead of
//! going to the back of the line — the double-ended access the paper's
//! algorithms provide without locking either end, fanned across shards.
//!
//! Run with `cargo run --release --example pipeline`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use dcas_deques::prelude::*;

#[derive(Debug)]
struct Job {
    id: u64,
    /// Remaining processing passes before the job completes.
    passes_left: u32,
}

fn main() {
    const PRODUCERS: usize = 2;
    const WORKERS: usize = 4;
    const SHARDS: usize = 4;
    const JOBS_PER_PRODUCER: u64 = 5_000;
    const TOTAL: u64 = PRODUCERS as u64 * JOBS_PER_PRODUCER;

    let broker: ShardedBroker<Job, _> = ShardedBroker::unbounded_list(SHARDS);
    let produced = AtomicUsize::new(0);
    let completed = AtomicU64::new(0);
    let checksum = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Producers feed the broker in chunk-atomic batches of
        // MAX_BATCH, spread round-robin across the shards.
        for p in 0..PRODUCERS {
            let (broker, produced) = (&broker, &produced);
            s.spawn(move || {
                let mut prod = broker.producer();
                for i in 0..JOBS_PER_PRODUCER {
                    let id = p as u64 * JOBS_PER_PRODUCER + i;
                    let passes_left = 1 + (id % 3) as u32;
                    prod.send(Job { id, passes_left })
                        .expect("unbounded shards never backpressure");
                    produced.fetch_add(1, Ordering::Release);
                }
                // Drop flushes the final partial batch.
            });
        }

        // Workers drain the broker (home shard first, then rebalance),
        // requeueing unfinished jobs at the *front* of the shard they
        // were pulled from so they keep their place in line.
        for _ in 0..WORKERS {
            let (broker, produced, completed, checksum) =
                (&broker, &produced, &completed, &checksum);
            s.spawn(move || {
                let mut cons = broker.consumer();
                loop {
                    match cons.recv() {
                        Some(mut job) => {
                            // One processing pass.
                            job.passes_left -= 1;
                            if job.passes_left == 0 {
                                checksum.fetch_add(job.id, Ordering::Relaxed);
                                completed.fetch_add(1, Ordering::Release);
                            } else {
                                cons.requeue(job);
                            }
                        }
                        None => {
                            let all_produced = produced.load(Ordering::Acquire)
                                == PRODUCERS * JOBS_PER_PRODUCER as usize;
                            let all_done =
                                completed.load(Ordering::Acquire) == TOTAL;
                            if all_produced && all_done {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
            });
        }
    });

    let expect: u64 = (0..TOTAL).sum();
    let stats = broker.stats();
    println!("jobs completed: {}", completed.load(Ordering::SeqCst));
    println!("checksum: {} (expected {expect})", checksum.load(Ordering::SeqCst));
    println!(
        "broker: {} sent, {} served from home shard, {} rebalanced, {} requeued",
        stats.sent, stats.recv_home, stats.recv_rebalanced, stats.requeued
    );
    assert_eq!(completed.load(Ordering::SeqCst), TOTAL);
    assert_eq!(checksum.load(Ordering::SeqCst), expect);
    println!("pipeline drained: every job processed exactly once");
}
