//! A two-stage pipeline with requeueing — a workload that needs a real
//! deque, not just a queue.
//!
//! Producers push raw jobs at the left end; workers pop from the right.
//! A job that isn't ready yet is pushed **back on the right** (retaining
//! priority) instead of being sent to the back of the line — the
//! double-ended access the paper's algorithms provide without locking
//! either end.
//!
//! Run with `cargo run --release --example pipeline`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use dcas_deques::prelude::*;

#[derive(Debug)]
struct Job {
    id: u64,
    /// Remaining processing passes before the job completes.
    passes_left: u32,
}

fn main() {
    const PRODUCERS: usize = 2;
    const WORKERS: usize = 4;
    const JOBS_PER_PRODUCER: u64 = 5_000;

    let deque: Arc<ListDeque<Job>> = Arc::new(ListDeque::new());
    let produced = Arc::new(AtomicUsize::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Producers feed the left end.
        for p in 0..PRODUCERS {
            let deque = Arc::clone(&deque);
            let produced = Arc::clone(&produced);
            s.spawn(move || {
                for i in 0..JOBS_PER_PRODUCER {
                    let id = p as u64 * JOBS_PER_PRODUCER + i;
                    let passes_left = 1 + (id % 3) as u32;
                    deque.push_left(Job { id, passes_left }).unwrap();
                    produced.fetch_add(1, Ordering::Release);
                }
            });
        }

        // Workers drain the right end, requeueing unfinished jobs at the
        // right (front of service order).
        for _ in 0..WORKERS {
            let deque = Arc::clone(&deque);
            let produced = Arc::clone(&produced);
            let completed = Arc::clone(&completed);
            let checksum = Arc::clone(&checksum);
            s.spawn(move || loop {
                match deque.pop_right() {
                    Some(mut job) => {
                        // One processing pass.
                        job.passes_left -= 1;
                        if job.passes_left == 0 {
                            checksum.fetch_add(job.id, Ordering::Relaxed);
                            completed.fetch_add(1, Ordering::Release);
                        } else {
                            deque.push_right(job).unwrap();
                        }
                    }
                    None => {
                        let all_produced =
                            produced.load(Ordering::Acquire) == PRODUCERS * JOBS_PER_PRODUCER as usize;
                        let all_done = completed.load(Ordering::Acquire)
                            == (PRODUCERS as u64) * JOBS_PER_PRODUCER;
                        if all_produced && all_done {
                            return;
                        }
                        std::hint::spin_loop();
                    }
                }
            });
        }
    });

    let total = PRODUCERS as u64 * JOBS_PER_PRODUCER;
    let expect: u64 = (0..total).sum();
    println!("jobs completed: {}", completed.load(Ordering::SeqCst));
    println!("checksum: {} (expected {expect})", checksum.load(Ordering::SeqCst));
    assert_eq!(completed.load(Ordering::SeqCst), total);
    assert_eq!(checksum.load(Ordering::SeqCst), expect);
    println!("pipeline drained: every job processed exactly once");
}
