//! The boundary cases that make this paper's algorithms interesting:
//! empty and full detection under contention, plus DCAS cost accounting.
//!
//! Run with `cargo run --release --example boundary_cases`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dcas::{Counting, GlobalSeqLock};
use dcas_deques::deque::array::RawArrayDeque;
use dcas_deques::deque::list::RawListDeque;

fn main() {
    dcas_cost_accounting();
    empty_full_oscillation();
    steal_contest();
}

/// Validate the paper's cost claims by counting DCASes, not cycles.
fn dcas_cost_accounting() {
    println!("=== DCAS cost per operation (uncontended) ===");

    let array = RawArrayDeque::<u32, Counting<GlobalSeqLock>>::new(128);
    for i in 0..100 {
        array.push_right(i).unwrap();
    }
    for _ in 0..100 {
        array.pop_left().unwrap();
    }
    let s = array.strategy().stats();
    println!(
        "array deque: {} ops, {} DCAS attempts ({} successful) -> {:.2} DCAS/op",
        200,
        s.dcas_attempts,
        s.dcas_successes,
        s.dcas_attempts as f64 / 200.0
    );

    let list = RawListDeque::<u32, Counting<GlobalSeqLock>>::new();
    for i in 0..100 {
        list.push_right(i).unwrap();
    }
    for _ in 0..100 {
        list.pop_left().unwrap();
    }
    let s = list.strategy().stats();
    println!(
        "list deque:  {} ops, {} DCAS attempts ({} successful) -> {:.2} DCAS/op",
        200,
        s.dcas_attempts,
        s.dcas_successes,
        s.dcas_attempts as f64 / 200.0
    );
    println!(
        "             (the paper, Section 1.2: \"The cost of this splitting \
         technique is an extra DCAS per pop operation.\")\n"
    );
}

/// Hammer an almost-always-empty and almost-always-full deque: every
/// operation exercises the boundary detection.
fn empty_full_oscillation() {
    println!("=== Empty/full oscillation under 4 threads ===");
    let d = Arc::new(RawArrayDeque::<u32, GlobalSeqLock>::new(2));
    let pushed = Arc::new(AtomicU64::new(0));
    let popped = Arc::new(AtomicU64::new(0));
    let fulls = Arc::new(AtomicU64::new(0));
    let empties = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..4u32 {
            let (d, pushed, popped, fulls, empties) = (
                Arc::clone(&d),
                Arc::clone(&pushed),
                Arc::clone(&popped),
                Arc::clone(&fulls),
                Arc::clone(&empties),
            );
            s.spawn(move || {
                for i in 0..50_000u32 {
                    if (t + i) % 2 == 0 {
                        match if t % 2 == 0 { d.push_right(i) } else { d.push_left(i) } {
                            Ok(()) => pushed.fetch_add(1, Ordering::Relaxed),
                            Err(_) => fulls.fetch_add(1, Ordering::Relaxed),
                        };
                    } else {
                        match if t % 2 == 0 { d.pop_left() } else { d.pop_right() } {
                            Some(_) => popped.fetch_add(1, Ordering::Relaxed),
                            None => empties.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                }
            });
        }
    });

    let mut remaining = 0;
    while d.pop_left().is_some() {
        remaining += 1;
    }
    let (p, q) = (pushed.load(Ordering::SeqCst), popped.load(Ordering::SeqCst));
    println!("pushes ok: {p}, pops ok: {q}, full: {}, empty: {}", fulls.load(Ordering::SeqCst), empties.load(Ordering::SeqCst));
    println!("conservation: pushed - popped = {} == remaining {}", p - q, remaining);
    assert_eq!(p - q, remaining);
    println!();
}

/// Figure 6 live: two threads race to pop the single element, thousands
/// of times; exactly one must win each round.
fn steal_contest() {
    println!("=== Figure 6 live: racing pops for the last element ===");
    let d = Arc::new(RawListDeque::<u32, GlobalSeqLock>::new());
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let mut right_wins = 0u32;
    let mut left_wins = 0u32;

    for round in 0..10_000 {
        d.push_right(round).unwrap();
        let d2 = Arc::clone(&d);
        let b2 = Arc::clone(&barrier);
        let right = std::thread::spawn(move || {
            b2.wait();
            d2.pop_right()
        });
        barrier.wait();
        let left = d.pop_left();
        let right = right.join().unwrap();
        match (left, right) {
            (Some(v), None) | (None, Some(v)) => {
                assert_eq!(v, round);
                if left.is_some() {
                    left_wins += 1;
                } else {
                    right_wins += 1;
                }
            }
            other => panic!("both or neither won round {round}: {other:?}"),
        }
    }
    println!("10000 rounds: popLeft won {left_wins}, popRight won {right_wins}");
    println!("every round had exactly one winner and one 'empty'");
}
