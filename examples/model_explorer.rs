//! Drive the bounded model checker interactively: explore the paper's
//! contention scenarios and print the state-space statistics.
//!
//! Run with `cargo run --release --example model_explorer`.

use dcas_deques::linearize::DequeOp;
use dcas_deques::modelcheck::machines::{AbpMachine, ArrayMachine, LfrcMachine, ListMachine};
use dcas_deques::modelcheck::{check_lockfree, ExploreConfig, Explorer};

fn main() {
    println!("Exhaustive interleaving exploration of the paper's algorithms.");
    println!("Every transition is checked against the Section 5 proof obligations:");
    println!("R preserved, A unchanged on internal steps, proper linearizations.\n");

    fig6();
    fig16();
    array_sweep();
    list_sweep();
    lfrc_audit();
    abp_histories();
    negative_demo();
}

fn lfrc_audit() {
    println!("--- LFRC (GC-free) variant: exact reference-count audit ---");
    let m = LfrcMachine::with_initial(
        vec![
            vec![DequeOp::PopRight, DequeOp::PopRight],
            vec![DequeOp::PopLeft, DequeOp::PopLeft],
        ],
        vec![5, 6],
    );
    let report = Explorer::default().explore(&m, |_| {}).expect("audit verified");
    println!(
        "  {} states, {} transitions: rc == slot-refs + local-refs held everywhere",
        report.states, report.transitions
    );
    println!();
}

fn abp_histories() {
    println!("--- ABP baseline: per-path history checking ---");
    let m = AbpMachine::new(4, vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]])
        .with_initial(vec![7]);
    let report = Explorer::default().explore_histories(&m, 1_000_000).expect("linearizable");
    println!(
        "  {} complete execution paths, {} operations — every history linearizable",
        report.paths, report.operations
    );
    println!();
}

fn fig6() {
    println!("--- Figure 6: popRight races popLeft for the last element (array) ---");
    let m = ArrayMachine::new(3, vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]])
        .with_initial(vec![7]);
    let mut outcomes = Vec::new();
    let report = Explorer::default()
        .explore_full(&m, |_| {}, |tid, op, ret| {
            let entry = (tid, format!("{op:?} -> {ret:?}"));
            if !outcomes.contains(&entry) {
                outcomes.push(entry);
            }
        })
        .expect("verified");
    println!(
        "states: {}, transitions: {}, linearizations checked: {}",
        report.states, report.transitions, report.linearizations
    );
    for (tid, o) in &outcomes {
        println!("  thread {tid}: {o}");
    }
    println!();
}

fn fig16() {
    println!("--- Figure 16: contending deleteLeft / deleteRight (linked list) ---");
    let m = ListMachine::with_initial(
        vec![
            vec![DequeOp::PopRight, DequeOp::PopRight],
            vec![DequeOp::PopLeft, DequeOp::PopLeft],
        ],
        vec![5, 6],
    );
    let mut two_null = 0usize;
    let mut left_wins = 0usize;
    let report = Explorer::default()
        .explore(&m, |sh| {
            let chain = sh.chain().unwrap();
            let nulls = chain.iter().filter(|&&id| sh.nodes[id].value == 0).count();
            if chain.len() == 2 && nulls == 2 && sh.left_deleted() && sh.right_deleted() {
                two_null += 1;
            }
            if chain.len() == 1 && nulls == 1 && sh.right_deleted() && !sh.left_deleted() {
                left_wins += 1;
            }
        })
        .expect("verified");
    println!(
        "states: {}, transitions: {}, linearizations checked: {}",
        report.states, report.transitions, report.linearizations
    );
    println!("  Figure 16 pre-state (two marked nulls) reached in {two_null} state(s)");
    println!("  'left wins' intermediate state reached in {left_wins} state(s)");
    println!();
}

fn array_sweep() {
    println!("--- Array deque: configuration sweep with lock-freedom check ---");
    for cap in 1..=3usize {
        let m = ArrayMachine::new(
            cap,
            vec![
                vec![DequeOp::PushRight(10), DequeOp::PopLeft],
                vec![DequeOp::PopRight, DequeOp::PushLeft(20)],
            ],
        );
        let report = Explorer::new(ExploreConfig { track_graph: true, ..Default::default() })
            .explore(&m, |_| {})
            .expect("verified");
        let lf = check_lockfree(&report.graph).is_ok();
        println!(
            "  capacity {cap}: {} states, {} transitions, lock-free: {lf}",
            report.states, report.transitions
        );
        assert!(lf);
    }
    println!();
}

fn list_sweep() {
    println!("--- Linked-list deque: configuration sweep with lock-freedom check ---");
    for initial in 0..=2u64 {
        let m = ListMachine::with_initial(
            vec![
                vec![DequeOp::PushRight(10), DequeOp::PopLeft],
                vec![DequeOp::PopRight, DequeOp::PushLeft(20)],
            ],
            (0..initial).map(|k| 5 + k).collect(),
        );
        let report = Explorer::new(ExploreConfig { track_graph: true, ..Default::default() })
            .explore(&m, |_| {})
            .expect("verified");
        let lf = check_lockfree(&report.graph).is_ok();
        println!(
            "  {initial} initial item(s): {} states, {} transitions, lock-free: {lf}",
            report.states, report.transitions
        );
        assert!(lf);
    }
    println!();
}

fn negative_demo() {
    println!("--- Negative control: remove the boundary-confirming DCAS ---");
    let mut m = ArrayMachine::new(
        3,
        vec![
            vec![DequeOp::PopRight],
            vec![DequeOp::PushLeft(9), DequeOp::PopRight],
        ],
    )
    .with_initial(vec![7]);
    m.naive_empty_check = true;
    match Explorer::default().explore(&m, |_| {}) {
        Err(e) => {
            let first = e.lines().next().unwrap_or("");
            println!("refuted, as the paper predicts:\n  {first}");
        }
        Ok(_) => panic!("the unsound variant should have been refuted"),
    }
}
