//! Work-stealing load balancing — the application that motivates deques
//! in the paper's introduction (via Arora–Blumofe–Plaxton).
//!
//! Builds an irregular task tree with the executor's fork-join API:
//! each node forks its children through [`WorkerHandle::join`], which
//! runs one side inline and publishes the other for theft, then *joins*
//! the results — no shared accumulator, no `Arc`; values flow back up
//! the tree like plain function returns. Runs the same tree on each
//! deque implementation and prints wall-clock comparisons.
//!
//! Run with `cargo run --release --example work_stealing`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dcas_deques::workstealing::{
    AbpWorkDeque, ArrayWorkDeque, DynDeque, ListWorkDeque, MutexWorkDeque, Scheduler, WorkDeque,
    WorkerHandle,
};

/// An irregular tree: each node does a little leaf work and forks a
/// skewed number of children (1..=3), so load balancing actually
/// matters. Returns the subtree checksum through `join` — the forked
/// half's result comes back over the join slot, stolen or not.
fn irregular_tree(w: &WorkerHandle<'_, DynDeque>, depth: u32, width_seed: u64) -> u64 {
    // Simulated leaf work: a short checksum loop.
    let mut x = width_seed | 1;
    for _ in 0..200 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    }
    let leaf = x & 0xFF;

    if depth == 0 {
        return leaf;
    }
    // Skewed fan-out, joined as a fork tree: two children fork as a
    // pair; a third nests inside the right branch.
    let children = 1 + (x % 3);
    let below = match children {
        1 => irregular_tree(w, depth - 1, x.wrapping_add(0)),
        2 => {
            let (a, b) = w.join(
                |w| irregular_tree(w, depth - 1, x.wrapping_add(0)),
                |w| irregular_tree(w, depth - 1, x.wrapping_add(1)),
            );
            a + b
        }
        _ => {
            let (a, (b, c)) = w.join(
                |w| irregular_tree(w, depth - 1, x.wrapping_add(0)),
                |w| {
                    w.join(
                        |w| irregular_tree(w, depth - 1, x.wrapping_add(1)),
                        |w| irregular_tree(w, depth - 1, x.wrapping_add(2)),
                    )
                },
            );
            a + b + c
        }
    };
    leaf + below
}

fn run_one<D: WorkDeque>(workers: usize, depth: u32) -> (u64, std::time::Duration) {
    let out = Arc::new(AtomicU64::new(0));
    let sched: Scheduler<D> = Scheduler::with_capacity(workers, 1 << 14);
    let root_out = Arc::clone(&out);
    let start = Instant::now();
    sched.run(move |w| {
        let sum = irregular_tree(w, depth, 42);
        root_out.store(sum, Ordering::SeqCst);
    });
    (out.load(Ordering::SeqCst), start.elapsed())
}

fn main() {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    let depth = 13;
    println!("fork-join irregular tree, depth {depth}, {workers} workers\n");
    println!("{:<12} {:>12} {:>14}", "deque", "checksum", "wall time");

    let (c1, t1) = run_one::<ListWorkDeque>(workers, depth);
    println!("{:<12} {:>12} {:>14?}", ListWorkDeque::name(), c1, t1);

    let (c2, t2) = run_one::<ArrayWorkDeque>(workers, depth);
    println!("{:<12} {:>12} {:>14?}", ArrayWorkDeque::name(), c2, t2);

    let (c3, t3) = run_one::<AbpWorkDeque>(workers, depth);
    println!("{:<12} {:>12} {:>14?}", AbpWorkDeque::name(), c3, t3);

    let (c4, t4) = run_one::<MutexWorkDeque>(workers, depth);
    println!("{:<12} {:>12} {:>14?}", MutexWorkDeque::name(), c4, t4);

    // The checksum is deterministic: every scheduler must agree.
    assert_eq!(c1, c2);
    assert_eq!(c1, c3);
    assert_eq!(c1, c4);
    println!("\nall schedulers computed the same checksum — work conserved");
}
