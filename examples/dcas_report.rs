//! Observability tour: record a real multi-threaded deque run, audit it
//! for linearizability, and export a metrics report.
//!
//! Run with `cargo run --release --example dcas_report`, or with
//! `--features obs-stats` to populate the DCAS-strategy and scheduler
//! counter sections with live numbers instead of zeros.
//!
//! The report has four parts:
//!
//! 1. per-op-kind counters and latency histograms from a [`Recorded`]
//!    array deque driven by four threads,
//! 2. the post-hoc linearizability audit of that same trace,
//! 3. DCAS strategy counters ([`dcas::StrategyStats`]),
//! 4. the hardware pair-DCAS fast path: a `DcasPair` workload plus one
//!    deliberately non-adjacent DCAS, surfacing `pair_hit_rate`,
//! 5. work-stealing scheduler counters from small fork-join runs on the
//!    flat and the two-level tiered deque,
//! 6. reclamation gauges: live/high-water garbage per backend (epoch vs
//!    hazard pointers), the hazard backend's static garbage bound, and
//!    the epoch shim's stalled-collection diagnostic. These are
//!    snapshot-time gauges, reported with or without `obs-stats`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dcas_deques::deque::{ArrayDeque, ConcurrentDeque};
use dcas_deques::linearize::SeqDeque;
use dcas_deques::obs::{audit, Json, MetricsRegistry, Recorded};
use dcas_deques::workstealing::{
    ArrayWorkDeque, Scheduler, TieredArrayWorkDeque, TieredChaseLevWorkDeque,
};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 5_000;
const CAPACITY: usize = 256;
/// Ops between barrier pulses. Windowed linearizability auditing can
/// only close a window at a *quiescent cut* — a real-time point with no
/// operation in flight. A run that saturates the deque from all threads
/// for its whole lifetime has no such points, so the checker would have
/// to buffer the entire trace (it reports `Overflow` instead). Pulsing
/// the workload guarantees a cut at every round boundary, bounding both
/// checker memory and violation-detection latency; this mirrors how the
/// online auditor is meant to be deployed on phased workloads.
const ROUND: usize = 8;

fn main() {
    let mut reg = MetricsRegistry::new();

    let deque = recorded_workload(&mut reg);
    audit_section(&deque, &mut reg);
    strategy_section(&deque, &mut reg);
    pair_section(&mut reg);
    scheduler_section(&mut reg);
    overhead_section(&mut reg);
    reclaim_section(&mut reg);
    alloc_section(&mut reg);

    println!("{}", reg.pretty());
    println!("--- JSON export ---");
    println!("{}", reg.to_json());
}

/// Measures what the recording layer costs: single-threaded push/pop
/// pairs on a plain array deque vs. the same deque behind [`Recorded`]
/// (ring write + timestamp + latency histogram per op).
fn overhead_section(reg: &mut MetricsRegistry) {
    const PAIRS: u64 = 200_000;
    let ns_per_op = |f: &dyn Fn()| -> f64 {
        let start = std::time::Instant::now();
        f();
        start.elapsed().as_nanos() as f64 / (2 * PAIRS) as f64
    };

    let plain = ArrayDeque::<u64>::new(CAPACITY);
    let plain_ns = ns_per_op(&|| {
        for i in 0..PAIRS {
            let _ = plain.push_right(i);
            let _ = plain.pop_left();
        }
    });
    let recorded = Recorded::with_atomic_batches(ArrayDeque::<u64>::new(CAPACITY), 1, 1024);
    let recorded_ns = ns_per_op(&|| {
        for i in 0..PAIRS {
            let _ = recorded.push_right(i);
            let _ = recorded.pop_left();
        }
    });

    reg.section(
        "recording_overhead",
        Json::Obj(vec![
            ("plain_ns_per_op".into(), Json::F64(plain_ns)),
            ("recorded_ns_per_op".into(), Json::F64(recorded_ns)),
            (
                "overhead_ns_per_op".into(),
                Json::F64(recorded_ns - plain_ns),
            ),
        ]),
    );
}

/// Drives a recorded array deque with a seeded mixed workload (singles
/// and chunk-atomic batches from both ends) and registers its op
/// counters and latency histograms.
fn recorded_workload(reg: &mut MetricsRegistry) -> Recorded<ArrayDeque<u64>> {
    let deque = Recorded::with_atomic_batches(
        ArrayDeque::<u64>::new(CAPACITY),
        THREADS,
        2 * OPS_PER_THREAD,
    );

    // Unique values: thread t contributes t * 1e6 + i. (Uniqueness is
    // not required by the checker, but makes violations crisp.)
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let deque = &deque;
            let barrier = &barrier;
            s.spawn(move || {
                let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1);
                let mut next = t * 1_000_000;
                for i in 0..OPS_PER_THREAD {
                    if i % ROUND == 0 {
                        barrier.wait();
                    }
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    match rng % 6 {
                        0 => {
                            let _ = deque.push_right(next);
                            next += 1;
                        }
                        1 => {
                            let _ = deque.push_left(next);
                            next += 1;
                        }
                        2 => {
                            let _ = deque.pop_right();
                        }
                        3 => {
                            let _ = deque.pop_left();
                        }
                        4 => {
                            let n = 1 + (rng >> 32) % 6;
                            let vals: Vec<u64> = (next..next + n).collect();
                            next += n;
                            let _ = deque.push_right_n(vals);
                        }
                        _ => {
                            let _ = deque.pop_left_n(1 + (rng >> 32) as usize % 5);
                        }
                    }
                }
            });
        }
    });

    deque.metrics().register_into(reg);
    deque
}

/// Converts the captured trace into a linearize history and checks it.
fn audit_section(deque: &Recorded<ArrayDeque<u64>>, reg: &mut MetricsRegistry) {
    let report = audit(deque.recorder(), SeqDeque::bounded(CAPACITY), 32)
        .expect("recorded array-deque trace must linearize");
    reg.section(
        "linearizability_audit",
        Json::Obj(vec![
            (
                "ops_checked".into(),
                Json::U64(report.window.ops_checked as u64),
            ),
            ("windows".into(), Json::U64(report.window.windows as u64)),
            (
                "in_flight_excluded".into(),
                Json::U64(report.trace.in_flight_excluded as u64),
            ),
            ("verdict".into(), Json::Str("linearizable".into())),
        ]),
    );
}

/// DCAS strategy counters from the deque the recorded run used. All
/// zeros unless built with `--features obs-stats` (which turns on the
/// `dcas/stats` counters).
fn strategy_section(deque: &Recorded<ArrayDeque<u64>>, reg: &mut MetricsRegistry) {
    reg.strategy_stats("dcas_strategy", &deque.inner().strategy().stats());
}

/// The hardware pair-DCAS fast path, exercised directly: transfers
/// between the halves of a 16-byte [`DcasPair`] take the single
/// `cmpxchg16b` path (pair hits), while a DCAS on two deliberately
/// separate words falls back to the descriptor protocol (pair
/// fallback). With `--features obs-stats` the section shows the
/// resulting `pair_hits`/`pair_fallbacks` counters and the derived
/// `pair_hit_rate`; on hardware without a 16-byte CAS the same
/// workload runs on the portable seqlock fallback with identical
/// semantics.
fn pair_section(reg: &mut MetricsRegistry) {
    use dcas_deques::dcas::{DcasPair, DcasStrategy, DcasWord, HarrisMcas};

    let mcas = HarrisMcas::new();
    let pair = DcasPair::new(4_000, 0);
    let (mut lo, mut hi) = (4_000u64, 0u64);
    for _ in 0..1_000 {
        assert!(mcas.dcas(pair.lo(), pair.hi(), lo, hi, lo - 4, hi + 4));
        lo -= 4;
        hi += 4;
    }
    // One non-adjacent DCAS: words 16 bytes apart can never share a
    // pair slot, so this is a guaranteed descriptor-path fallback.
    let words = [DcasWord::new(8), DcasWord::new(0), DcasWord::new(12)];
    assert!(mcas.dcas(&words[0], &words[2], 8, 12, 16, 20));
    reg.strategy_stats("pair_dcas", &mcas.stats());
}

/// Reclamation gauges per backend. A short list-deque churn on the
/// hazard-backed strategy gives the hazard gauges real traffic (the
/// epoch gauges already saw every other section's work); the hazard
/// backend's `strategy_stats` row also lands in the registry, where the
/// `live_descriptors` / `retired_pending` / `garbage_high_water` /
/// `stalled_collections` gauge fields report regardless of features.
fn reclaim_section(reg: &mut MetricsRegistry) {
    use dcas_deques::dcas::{EpochReclaimer, HazardReclaimer, Reclaimer};
    use dcas_deques::deque::ListDeque;

    let deque: ListDeque<u64, dcas_deques::dcas::HarrisMcasHazard> = ListDeque::new();
    for i in 0..2_000u64 {
        deque.push_right(i).unwrap();
        deque.pop_left();
    }
    reg.strategy_stats("dcas_strategy_hazard", &deque.strategy().stats());

    reg.section(
        "reclamation",
        Json::Obj(vec![
            (
                "epoch_live_garbage".into(),
                Json::U64(EpochReclaimer::live_garbage()),
            ),
            (
                "epoch_garbage_high_water".into(),
                Json::U64(EpochReclaimer::garbage_high_water()),
            ),
            (
                "epoch_stalled_collections".into(),
                Json::U64(EpochReclaimer::stalled_collections()),
            ),
            (
                "hazard_live_garbage".into(),
                Json::U64(HazardReclaimer::live_garbage()),
            ),
            (
                "hazard_garbage_high_water".into(),
                Json::U64(HazardReclaimer::garbage_high_water()),
            ),
            (
                "hazard_static_garbage_bound".into(),
                Json::U64(dcas_deques::dcas::reclaim::hazard::static_garbage_bound()),
            ),
            (
                "live_descriptors".into(),
                Json::U64(dcas_deques::dcas::live_descriptors()),
            ),
        ]),
    );
}

/// Node-allocator census: the aggregate page-pool gauges plus one row
/// per registered pool (every linked deque family the report touched).
/// Pages are immortal, so `pages_allocated` is simultaneously the
/// resident-memory figure and its high-water mark; `nodes_outstanding`
/// is the alloc/free balance the reclamation section's gauges feed.
fn alloc_section(reg: &mut MetricsRegistry) {
    use dcas_deques::dcas::alloc;

    let pools = alloc::census()
        .into_iter()
        .map(|(name, pages, outstanding, remote_frees)| {
            Json::Obj(vec![
                ("pool".into(), Json::Str(name.into())),
                ("pages".into(), Json::U64(pages)),
                ("resident_kib".into(), Json::U64(pages * 4)),
                ("nodes_outstanding".into(), Json::U64(outstanding)),
                ("remote_frees".into(), Json::U64(remote_frees)),
            ])
        })
        .collect();
    reg.section(
        "node_alloc",
        Json::Obj(vec![
            (
                "pages_allocated".into(),
                Json::U64(alloc::pages_allocated()),
            ),
            (
                "nodes_outstanding".into(),
                Json::U64(alloc::nodes_outstanding()),
            ),
            ("remote_frees".into(), Json::U64(alloc::remote_frees())),
            ("pools".into(), Json::Arr(pools)),
        ]),
    );
}

/// A recursive fork-join sum on the work-stealing scheduler — the
/// divide step leaves half the range stealable at every level, so the
/// steal counters see real traffic. Live numbers need
/// `--features obs-stats`, which enables `dcas-workstealing/stats`.
fn scheduler_section(reg: &mut MetricsRegistry) {
    fn sum_range(
        h: &dcas_deques::workstealing::WorkerHandle<'_, dcas_deques::workstealing::DynDeque>,
        lo: u64,
        hi: u64,
        total: Arc<AtomicU64>,
    ) {
        if hi - lo <= 64 {
            // Leaf work heavy enough (~microseconds) that the run
            // outlives worker wake-up, so steals actually occur.
            let mut acc = 0u64;
            for v in lo..hi {
                for i in 0..200 {
                    acc = std::hint::black_box(acc ^ v.rotate_left(i as u32 % 63));
                }
            }
            std::hint::black_box(acc);
            total.fetch_add((lo..hi).sum(), Ordering::Relaxed);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let right = Arc::clone(&total);
        h.spawn(move |h| sum_range(h, mid, hi, right));
        sum_range(h, lo, mid, total);
    }

    const N: u64 = 100_000;
    let total = Arc::new(AtomicU64::new(0));
    let scheduler = Scheduler::<ArrayWorkDeque>::new(THREADS);
    let t2 = Arc::clone(&total);
    let report = scheduler.run_report(move |h| sum_range(h, 0, N, t2));
    assert_eq!(total.load(Ordering::SeqCst), N * (N - 1) / 2);
    reg.sched_stats("scheduler", &report.stats);

    // The same run on the two-level tiered deque: owner traffic stays on
    // the private ring, so `tasks_executed` matches but steals move only
    // the batches that actually spilled to the shared level.
    let total = Arc::new(AtomicU64::new(0));
    let scheduler = Scheduler::<TieredArrayWorkDeque>::new(THREADS);
    let t2 = Arc::clone(&total);
    let report = scheduler.run_report(move |h| sum_range(h, 0, N, t2));
    assert_eq!(total.load(Ordering::SeqCst), N * (N - 1) / 2);
    reg.sched_stats("scheduler_tiered", &report.stats);

    // And on the Chase-Lev private tier: thieves can take from the
    // owner's tier directly, so the steal-provenance split
    // (`steals_private_tier` vs `steals_shared_tier`) inverts relative
    // to the spill-only ring above — the ring reports private-tier
    // steals of zero, while here most steals land on the private tier
    // because demand-driven spilling keeps the shared level near-empty.
    let total = Arc::new(AtomicU64::new(0));
    let scheduler = Scheduler::<TieredChaseLevWorkDeque>::new(THREADS);
    let t2 = Arc::clone(&total);
    let report = scheduler.run_report(move |h| sum_range(h, 0, N, t2));
    assert_eq!(total.load(Ordering::SeqCst), N * (N - 1) / 2);
    reg.sched_stats("scheduler_chaselev", &report.stats);
}
