//! Quickstart: both deques of the paper, sequentially and shared across
//! threads.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;

use dcas_deques::prelude::*;

fn main() {
    banner("Sequential walkthrough (the paper's Section 2.2 example)");
    sequential();

    banner("Bounded array deque: empty/full boundaries");
    boundaries();

    banner("Concurrent access to both ends (8 threads)");
    concurrent();

    banner("Choosing the DCAS emulation");
    strategies();
}

fn banner(s: &str) {
    println!("\n=== {s} ===");
}

fn sequential() {
    // The unbounded linked-list deque (Section 4 of the paper).
    let d: ListDeque<i64> = ListDeque::new();
    d.push_right(1).unwrap();
    d.push_left(2).unwrap();
    d.push_right(3).unwrap();
    println!("after pushRight(1), pushLeft(2), pushRight(3): <2, 1, 3>");
    println!("popLeft  -> {:?} (expected 2)", d.pop_left());
    println!("popLeft  -> {:?} (expected 1)", d.pop_left());
    println!("popRight -> {:?} (expected 3)", d.pop_right());
    println!("popLeft  -> {:?} (empty)", d.pop_left());
}

fn boundaries() {
    // The bounded array deque (Section 3): capacity is fixed up front and
    // push reports Full, with the rejected value handed back.
    let d: ArrayDeque<String> = ArrayDeque::new(2);
    d.push_right("a".into()).unwrap();
    d.push_left("b".into()).unwrap();
    match d.push_right("c".into()) {
        Err(Full(v)) => println!("deque full; '{v}' returned to caller"),
        Ok(()) => unreachable!(),
    }
    println!("popRight -> {:?}", d.pop_right());
    println!("popRight -> {:?}", d.pop_right());
    println!("popRight -> {:?} (empty)", d.pop_right());
}

fn concurrent() {
    let d: Arc<ListDeque<u64>> = Arc::new(ListDeque::new());
    let per_thread = 10_000u64;
    let threads = 8;

    std::thread::scope(|s| {
        for t in 0..threads {
            let d = Arc::clone(&d);
            s.spawn(move || {
                for i in 0..per_thread {
                    let v = t * per_thread + i;
                    if v.is_multiple_of(2) {
                        d.push_right(v).unwrap();
                    } else {
                        d.push_left(v).unwrap();
                    }
                    if i % 3 == 0 {
                        // Mix pops from both ends while pushes continue.
                        let _ = if v.is_multiple_of(4) { d.pop_left() } else { d.pop_right() };
                    }
                }
            });
        }
    });

    let mut drained = 0u64;
    while d.pop_left().is_some() {
        drained += 1;
    }
    println!(
        "{} threads x {} ops ran; {} values remained and drained cleanly",
        threads, per_thread, drained
    );
}

fn strategies() {
    // Every deque is generic over the DCAS emulation. HarrisMcas (the
    // default) is lock-free; the others are blocking emulations.
    let lock_free: ListDeque<u32, HarrisMcas> = ListDeque::new();
    let seqlock: ListDeque<u32, GlobalSeqLock> = ListDeque::new();
    let coarse: ListDeque<u32, GlobalLock> = ListDeque::new();
    let striped: ListDeque<u32, StripedLock> = ListDeque::new();

    for (name, d) in [
        (<HarrisMcas>::NAME, &lock_free as &dyn ConcurrentDeque<u32>),
        (GlobalSeqLock::NAME, &seqlock),
        (GlobalLock::NAME, &coarse),
        (StripedLock::NAME, &striped),
    ] {
        d.push_right(7).unwrap();
        println!("{name:>16}: pushRight(7), popLeft -> {:?}", d.pop_left());
    }
}
