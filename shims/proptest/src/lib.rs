//! Offline vendored shim of `proptest` supporting the API subset this
//! workspace's tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, `pat in
//!   strategy` and `pat: Type` argument forms),
//! * strategies: integer ranges, tuples, [`Just`], [`any`],
//!   [`collection::vec`], [`prop_oneof!`], and
//!   [`Strategy::prop_map`],
//! * assertions: [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! The build container has no access to crates.io, so the workspace
//! patches `proptest` to this path crate. Semantics differ from real
//! proptest in one way that matters: **there is no shrinking** — a
//! failing case panics with the generated inputs Debug-printed by the
//! assertion itself. Generation is deterministic per test (the RNG is
//! seeded from the test's module path), so failures reproduce.

#![allow(clippy::type_complexity)] // shim keeps signatures close to upstream

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

/// Deterministic split-mix RNG used for all generation.
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG seeded from a test identifier (deterministic
    /// across runs).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. The real proptest `Strategy` is a shrink tree;
/// this shim only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over every value of `T` (see [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice among heterogeneously-typed strategies with a common
/// value type; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<Arc<dyn Fn(&mut TestRng) -> T>>,
}

impl<T> Union<T> {
    /// Builds a union from erased arms (used by the macro).
    pub fn new(arms: Vec<Arc<dyn Fn(&mut TestRng) -> T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Erases one strategy into an arm (used by the macro).
    pub fn arm<S>(s: S) -> Arc<dyn Fn(&mut TestRng) -> T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Arc::new(move |rng| s.generate(rng))
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec`s with length drawn from `size` and elements
    /// from `elem`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: length in `size`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::arm($arm)),+])
    };
}

/// Asserts a condition inside a property (plain `assert!` here: the
/// shim reports failures by panicking, without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Defines property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(400))]  // optional
///     #[test]
///     fn my_prop(x in 0u64..10, v: u64) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $crate::__proptest_bind!(__rng, $($args)*);
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one argument list.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:ident in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $pat:ident in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $pat:ident : $ty:ty, $($rest:tt)*) => {
        let $pat = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $pat:ident : $ty:ty) => {
        let $pat = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_are_in_bounds_and_deterministic() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        let s = 3u64..17;
        for _ in 0..1000 {
            let x = s.generate(&mut a);
            assert!((3..17).contains(&x));
            assert_eq!(x, s.generate(&mut b));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|v| v)];
        let mut rng = crate::TestRng::for_test("arms");
        let mut seen = [false; 3];
        for _ in 0..200 {
            match s.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                10..=19 => seen[2] = true,
                other => panic!("impossible value {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_binds_both_arg_forms(
            v in crate::collection::vec(any::<u64>(), 0..10),
            pair in (0u8..4, 4u8..8),
            x: u64,
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(pair.0 < pair.1);
            let _ = x;
        }
    }
}
