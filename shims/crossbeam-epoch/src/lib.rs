//! Offline vendored shim of `crossbeam-epoch`: epoch-based memory
//! reclamation supporting the API subset this workspace uses —
//! [`pin`] returning a [`Guard`], and [`Guard::defer_unchecked`].
//!
//! The build container has no access to crates.io, so the workspace
//! patches `crossbeam-epoch` to this path crate. The implementation is a
//! textbook three-epoch collector, not a port of upstream internals:
//!
//! * A global epoch counter advances only when **every pinned thread**
//!   has observed the current epoch.
//! * [`pin`] records `(epoch, active)` in a per-thread record registered
//!   in a global list; pins nest (only the outermost publishes).
//! * [`Guard::defer_unchecked`] queues a closure tagged with the global
//!   epoch at defer time; a deferred closure runs only after the global
//!   epoch has advanced **twice** past its tag.
//!
//! The two-advance rule gives the grace-period guarantee callers rely
//! on: any thread that could have observed a pointer retired at epoch
//! `e` was pinned at some epoch `≤ e`, and such a pin blocks the global
//! epoch from reaching `e + 2`; therefore when garbage tagged `e` is
//! freed, no such pin can still exist. This matches the contract the
//! callers (descriptor retirement in `dcas`, node retirement in the
//! list deques) were written against.
//!
//! Threads that exit with pending garbage migrate it to a global orphan
//! list drained by other threads' collections; their records are
//! removed from the registry so a dead thread never blocks the epoch.

#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Collect (attempt an epoch advance and run ripe deferred closures)
/// after this many new defers since the last collection, and also every
/// `PINS_BETWEEN_COLLECT` outermost pins. The counter-based trigger
/// matters: thresholding on the *length* of the garbage queue would run
/// a full collection on every defer once the steady-state queue exceeds
/// the threshold (two in-flight epochs of garbage easily do), putting
/// two mutex acquisitions and a registry scan on the caller's hot path.
const COLLECT_EVERY_DEFERS: u64 = 64;
const PINS_BETWEEN_COLLECT: u64 = 128;

/// Collections that found the scheme *stuck*: the global epoch could not
/// advance (some thread is pinned at a stale epoch) while the collecting
/// thread's own deferred queue was already over the
/// [`COLLECT_EVERY_DEFERS`] threshold. A monotonically growing value here
/// is the signature of a frozen/stalled pinned thread holding the whole
/// process's garbage hostage — the unbounded-memory failure mode the
/// hazard-pointer backend in `dcas::reclaim` exists to avoid.
static STALLED: AtomicU64 = AtomicU64::new(0);

/// Number of collection attempts so far that were *stalled*: the epoch
/// did not move even though the collecting thread had a full defer
/// queue. Process-global, monotonic; exported through
/// `dcas::StrategyStats::stalled_collections` for observability.
pub fn stalled_collections() -> u64 {
    STALLED.load(Ordering::Relaxed)
}

/// Inline closure words of a [`Deferred`]. Mirrors upstream: deferring a
/// small closure (a pointer and a couple of words of context — every
/// closure this workspace queues) must not itself allocate, since
/// `defer_unchecked` sits on hot paths whose whole point is avoiding the
/// allocator.
const DEFERRED_WORDS: usize = 3;

/// A deferred closure, stored inline when it fits in `DEFERRED_WORDS`
/// words and boxed otherwise. Stored closures may be executed by a
/// different thread than the one that queued them (only after the grace
/// period, and for exiting threads' leftovers) — that cross-thread move
/// is part of the `defer_unchecked` safety contract, so the `Send` here
/// is the caller's promise, not ours.
///
/// Like upstream, dropping a `Deferred` without calling it leaks the
/// closure; the collector always either runs or keeps queued closures.
struct Deferred {
    call: unsafe fn(*mut u8),
    data: MaybeUninit<[usize; DEFERRED_WORDS]>,
}

unsafe impl Send for Deferred {}

impl Deferred {
    fn new<F: FnOnce()>(f: F) -> Self {
        let mut data = MaybeUninit::<[usize; DEFERRED_WORDS]>::uninit();
        if std::mem::size_of::<F>() <= std::mem::size_of::<[usize; DEFERRED_WORDS]>()
            && std::mem::align_of::<F>() <= std::mem::align_of::<[usize; DEFERRED_WORDS]>()
        {
            unsafe fn call_inline<F: FnOnce()>(raw: *mut u8) {
                // SAFETY: `raw` is the `data` of a Deferred built in the
                // inline branch for this exact `F`, consumed exactly once.
                let f: F = unsafe { raw.cast::<F>().read() };
                f();
            }
            // SAFETY: size/align checked above; `data` is exclusively ours.
            unsafe { data.as_mut_ptr().cast::<F>().write(f) };
            Deferred { call: call_inline::<F>, data }
        } else {
            unsafe fn call_boxed<F: FnOnce()>(raw: *mut u8) {
                // SAFETY: `raw` holds a `*mut F` from `Box::into_raw`,
                // written by the boxed branch, consumed exactly once.
                let b: Box<F> = unsafe { Box::from_raw(raw.cast::<*mut F>().read()) };
                (*b)();
            }
            // SAFETY: a pointer always fits the inline words.
            unsafe { data.as_mut_ptr().cast::<*mut F>().write(Box::into_raw(Box::new(f))) };
            Deferred { call: call_boxed::<F>, data }
        }
    }

    fn call(mut self) {
        // SAFETY: `data` was initialized by `new` for this `call` and is
        // consumed exactly once (by-value receiver, no Drop impl).
        unsafe { (self.call)(self.data.as_mut_ptr().cast()) }
    }
}

/// Per-thread participant record.
struct Local {
    /// `(epoch << 1) | active`, written only by the owner, read by any
    /// thread attempting an epoch advance.
    state: AtomicU64,
    /// Pin nesting depth (owner-only).
    depth: Cell<usize>,
    /// Outermost-pin counter used to throttle collection (owner-only).
    pins: Cell<u64>,
    /// Defers since the last collection (owner-only; see
    /// `COLLECT_EVERY_DEFERS`).
    defers: Cell<u64>,
    /// Garbage queued by this thread: `(epoch_at_defer, closure)`
    /// (owner-only; moved wholesale to the orphan list on thread exit).
    garbage: RefCell<Vec<(u64, Deferred)>>,
}

// SAFETY: `state` is atomic; every other field is accessed only by the
// owning thread (the TLS destructor also runs on the owning thread).
unsafe impl Send for Local {}
unsafe impl Sync for Local {}

struct Global {
    epoch: AtomicU64,
    registry: Mutex<Vec<Arc<Local>>>,
    /// Garbage left behind by exited threads.
    orphans: Mutex<Vec<(u64, Deferred)>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicU64::new(2),
        registry: Mutex::new(Vec::new()),
        orphans: Mutex::new(Vec::new()),
    })
}

impl Global {
    /// Advances the global epoch if every active participant has
    /// observed the current one. Returns the (possibly new) epoch.
    fn try_advance(&self) -> u64 {
        let epoch = self.epoch.load(Ordering::SeqCst);
        {
            let registry = self.registry.lock().unwrap();
            for local in registry.iter() {
                let s = local.state.load(Ordering::SeqCst);
                if s & 1 == 1 && s >> 1 != epoch {
                    return epoch;
                }
            }
        }
        // Multiple threads may race here; compare_exchange keeps the
        // epoch from skipping (a skip would shorten the grace period).
        let _ = self.epoch.compare_exchange(
            epoch,
            epoch + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        self.epoch.load(Ordering::SeqCst)
    }

    /// Runs every orphaned closure whose tag is two epochs stale.
    fn collect_orphans(&self, epoch: u64) {
        let ripe = {
            let mut orphans = self.orphans.lock().unwrap();
            drain_ripe(&mut orphans, epoch)
        };
        // Run outside the lock: closures may take unrelated locks.
        for d in ripe {
            d.call();
        }
    }
}

thread_local! {
    static LOCAL: LocalHandle = LocalHandle::register();
}

/// Owner-side handle; the TLS destructor deregisters and orphans any
/// garbage that has not yet ripened.
struct LocalHandle {
    local: Arc<Local>,
}

impl LocalHandle {
    fn register() -> Self {
        let local = Arc::new(Local {
            state: AtomicU64::new(0),
            depth: Cell::new(0),
            pins: Cell::new(0),
            defers: Cell::new(0),
            garbage: RefCell::new(Vec::new()),
        });
        global().registry.lock().unwrap().push(local.clone());
        LocalHandle { local }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        let g = global();
        let leftovers: Vec<(u64, Deferred)> =
            self.local.garbage.borrow_mut().drain(..).collect();
        if !leftovers.is_empty() {
            g.orphans.lock().unwrap().extend(leftovers);
        }
        let mut registry = g.registry.lock().unwrap();
        registry.retain(|l| !Arc::ptr_eq(l, &self.local));
    }
}

/// A pinned-epoch guard. While any `Guard` exists on a thread, memory
/// retired by other threads after this thread's pin cannot be freed.
pub struct Guard {
    /// Raw pointer back to the thread's record; `Guard` is `!Send` as a
    /// consequence, matching upstream.
    local: *const Local,
}

/// Pins the current thread, returning a guard.
///
/// Pins nest: only the outermost pin publishes an epoch, inner pins are
/// a counter increment.
pub fn pin() -> Guard {
    LOCAL.with(|h| {
        let local = &h.local;
        let depth = local.depth.get();
        local.depth.set(depth + 1);
        if depth == 0 {
            let g = global();
            // Publish (epoch, active) and re-check: if the epoch moved
            // between the read and the store, a concurrent try_advance
            // may have ignored the stale record, so re-publish until the
            // value we advertise is the current epoch.
            loop {
                let e = g.epoch.load(Ordering::SeqCst);
                local.state.store(e << 1 | 1, Ordering::SeqCst);
                if g.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
            let pins = local.pins.get().wrapping_add(1);
            local.pins.set(pins);
            if pins % PINS_BETWEEN_COLLECT == 0 {
                collect(local);
            }
        }
        Guard { local: Arc::as_ptr(&h.local) }
    })
}

/// Returns `true` if the current thread is pinned.
pub fn is_pinned() -> bool {
    LOCAL.with(|h| h.local.depth.get() > 0)
}

/// Extracts the closures whose tag is two epochs stale (order within the
/// queue is not preserved; ripeness only depends on the tag).
fn drain_ripe(queue: &mut Vec<(u64, Deferred)>, epoch: u64) -> Vec<Deferred> {
    let mut ripe = Vec::new();
    let mut i = 0;
    while i < queue.len() {
        if queue[i].0 + 2 <= epoch {
            ripe.push(queue.swap_remove(i).1);
        } else {
            i += 1;
        }
    }
    ripe
}

/// Attempts an epoch advance, then runs this thread's and orphaned
/// closures that are two epochs stale.
fn collect(local: &Local) {
    let g = global();
    let before = g.epoch.load(Ordering::SeqCst);
    let epoch = g.try_advance();
    if epoch == before && local.garbage.borrow().len() >= COLLECT_EVERY_DEFERS as usize {
        // The epoch is pinned in place while we sit on a full queue:
        // record the stall so monitoring can tell "quiet" from "stuck".
        STALLED.fetch_add(1, Ordering::Relaxed);
    }
    let ripe = {
        let mut garbage = local.garbage.borrow_mut();
        drain_ripe(&mut garbage, epoch)
    };
    for d in ripe {
        d.call();
    }
    g.collect_orphans(epoch);
}

impl Guard {
    /// Defers `f` until no thread pinned at or before the current epoch
    /// remains pinned (the two-advance grace period).
    ///
    /// # Safety
    ///
    /// The caller must guarantee that running `f` after the grace period
    /// is sound (the classic epoch contract: the protected object is
    /// unreachable to threads that pin afterwards), including if `f`
    /// runs on another thread.
    pub unsafe fn defer_unchecked<F, R>(&self, f: F)
    where
        F: FnOnce() -> R + 'static,
    {
        // SAFETY: a Guard never outlives its thread's LocalHandle (it is
        // !Send, and TLS destruction cannot run while the thread still
        // holds a Guard on its stack).
        let local = unsafe { &*self.local };
        let epoch = global().epoch.load(Ordering::SeqCst);
        local.garbage.borrow_mut().push((
            epoch,
            Deferred::new(move || {
                let _ = f();
            }),
        ));
        let defers = local.defers.get() + 1;
        local.defers.set(defers);
        if defers >= COLLECT_EVERY_DEFERS {
            local.defers.set(0);
            collect(local);
        }
    }

    /// Eagerly attempts an advance-and-collect cycle (upstream calls
    /// this `flush`; handy in tests).
    pub fn flush(&self) {
        // SAFETY: same as in defer_unchecked.
        let local = unsafe { &*self.local };
        collect(local);
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // SAFETY: same as in defer_unchecked.
        let local = unsafe { &*self.local };
        let depth = local.depth.get();
        local.depth.set(depth - 1);
        if depth == 1 {
            local.state.store(0, Ordering::SeqCst);
            // With the queue over threshold, try to collect *now* that
            // our own pin no longer blocks the advance. Without this, a
            // thread that stops calling defer_unchecked (its workload
            // moved on) would strand a full queue until its next
            // `PINS_BETWEEN_COLLECT`-th pin — or forever, if it never
            // pins again on a structure using this collector.
            if local.garbage.borrow().len() >= COLLECT_EVERY_DEFERS as usize {
                collect(local);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    /// Repeatedly flushes until `cond` holds (tests run concurrently in
    /// one process, so a fixed number of advance attempts would race
    /// with other tests' transient pins).
    fn drive_until(cond: impl Fn() -> bool) {
        for _ in 0..100_000 {
            if cond() {
                return;
            }
            pin().flush();
            std::thread::yield_now();
        }
        panic!("collection did not converge");
    }

    #[test]
    fn deferred_runs_eventually_and_not_while_pinned_elsewhere() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let guard = pin();
            let ran2 = ran.clone();
            unsafe {
                guard.defer_unchecked(move || {
                    ran2.fetch_add(1, Ordering::SeqCst);
                })
            };
        }
        let ran2 = ran.clone();
        drive_until(move || ran2.load(Ordering::SeqCst) == 1);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_pins_count_as_one() {
        let a = pin();
        assert!(is_pinned());
        let b = pin();
        drop(a);
        assert!(is_pinned());
        drop(b);
        assert!(!is_pinned());
    }

    #[test]
    fn grace_period_blocks_on_remote_pin() {
        use std::sync::mpsc;
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let (pinned_tx, pinned_rx) = mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            let _g = pin();
            pinned_tx.send(()).unwrap();
            hold_rx.recv().unwrap();
        });
        pinned_rx.recv().unwrap();

        let freed = Arc::new(AtomicUsize::new(0));
        {
            let g = pin();
            let freed2 = freed.clone();
            unsafe {
                g.defer_unchecked(move || {
                    freed2.fetch_add(1, Ordering::SeqCst);
                })
            };
        }
        for _ in 0..64 {
            pin().flush();
        }
        // The remote thread has been pinned since before the defer: no
        // amount of flushing may run the closure.
        assert_eq!(freed.load(Ordering::SeqCst), 0);
        hold_tx.send(()).unwrap();
        holder.join().unwrap();
        let freed2 = freed.clone();
        drive_until(move || freed2.load(Ordering::SeqCst) == 1);
        assert_eq!(freed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn exiting_thread_orphans_garbage() {
        std::thread::spawn(|| {
            let g = pin();
            unsafe {
                g.defer_unchecked(|| {
                    DROPS.fetch_add(1, Ordering::SeqCst);
                })
            };
        })
        .join()
        .unwrap();
        drive_until(|| DROPS.load(Ordering::SeqCst) == 1);
    }

    #[test]
    fn stalled_collections_counts_stuck_epoch_with_full_queue() {
        use std::sync::mpsc;
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let (pinned_tx, pinned_rx) = mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            let _g = pin();
            pinned_tx.send(()).unwrap();
            hold_rx.recv().unwrap();
        });
        pinned_rx.recv().unwrap();

        let before = stalled_collections();
        {
            let g = pin();
            for _ in 0..COLLECT_EVERY_DEFERS as usize + 8 {
                unsafe { g.defer_unchecked(|| {}) };
            }
            // The holder pins an epoch the advance cannot leave behind,
            // so with a full local queue each flush is a stalled
            // collection. (The epoch may advance once past the holder's
            // pin, hence several flushes.)
            for _ in 0..4 {
                g.flush();
            }
        }
        assert!(
            stalled_collections() > before,
            "no stall recorded despite a frozen pin and a full queue"
        );
        hold_tx.send(()).unwrap();
        holder.join().unwrap();
    }

    #[test]
    fn unpin_collects_over_threshold_queue_without_explicit_flush() {
        let freed = Arc::new(AtomicUsize::new(0));
        let freed2 = freed.clone();
        let n = COLLECT_EVERY_DEFERS as usize + 8;
        std::thread::spawn(move || {
            {
                let g = pin();
                for _ in 0..n {
                    let f = freed2.clone();
                    unsafe {
                        g.defer_unchecked(move || {
                            f.fetch_add(1, Ordering::SeqCst);
                        })
                    };
                }
            }
            // Only bare pin/unpin cycles from here: the over-threshold
            // queue must drain via the unpin-time collection (each drop
            // attempts one epoch advance; two suffice absent
            // interference, more under concurrent test pins).
            for _ in 0..100_000 {
                if freed2.load(Ordering::SeqCst) == n {
                    return;
                }
                drop(pin());
                std::thread::yield_now();
            }
            panic!("unpin-time collection never drained the queue");
        })
        .join()
        .unwrap();
        assert_eq!(freed.load(Ordering::SeqCst), n);
    }

    #[test]
    fn large_closures_take_the_boxed_path() {
        // 64 bytes of captured state exceeds the inline words, forcing
        // the boxed Deferred branch.
        let payload = [7u8; 64];
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let g = pin();
            let ran2 = ran.clone();
            unsafe {
                g.defer_unchecked(move || {
                    assert!(payload.iter().all(|&b| b == 7));
                    ran2.fetch_add(1, Ordering::SeqCst);
                })
            };
        }
        let ran2 = ran.clone();
        drive_until(move || ran2.load(Ordering::SeqCst) == 1);
    }

    #[test]
    fn stress_defer_free_boxes() {
        let mut handles = vec![];
        for _ in 0..4 {
            handles.push(std::thread::spawn(|| {
                for i in 0..10_000u64 {
                    let g = pin();
                    let b = Box::into_raw(Box::new(i));
                    unsafe {
                        g.defer_unchecked(move || drop(Box::from_raw(b)));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for _ in 0..16 {
            pin().flush();
        }
    }
}
