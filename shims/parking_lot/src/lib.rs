//! Offline vendored shim for the subset of `parking_lot` used by this
//! workspace: a [`Mutex`] with the `parking_lot` calling convention
//! (`lock()` returning a guard directly, no poison result), backed by
//! `std::sync::Mutex`. The build container has no access to crates.io,
//! so the workspace patches `parking_lot` to this path crate.
//!
//! Poisoning is deliberately swallowed (`parking_lot` has no poisoning):
//! a panic while holding the lock simply leaves the protected data in
//! whatever state the panicking section produced, which matches the
//! upstream semantics the callers were written against.

#![warn(missing_docs)]

use std::fmt;
use std::sync::TryLockError;

/// A mutual-exclusion primitive with the `parking_lot` API shape.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn contended_counter() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 40_000);
    }

    #[test]
    fn survives_panic_while_held() {
        let m = Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poisoning attempt");
        })
        .join();
        // parking_lot semantics: no poison, the lock is still usable.
        assert_eq!(*m.lock(), 5);
    }
}
