//! Offline vendored shim for the subset of `crossbeam-utils` used by this
//! workspace. The build container has no access to crates.io, so the
//! workspace patches `crossbeam-utils` to this path crate (see the root
//! `Cargo.toml`). Only [`CachePadded`] is provided; the API and semantics
//! match the upstream type.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, preventing
/// false sharing between adjacent atomics.
///
/// 128-byte alignment covers the spatial-prefetcher pairing on modern
/// x86-64 parts (the same choice upstream makes there).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pads and aligns `value` to a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded").field("value", &self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_access() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of_val(&p), 128);
        let mut p = p;
        *p += 1;
        assert_eq!(p.into_inner(), 8);
    }
}
