//! Offline vendored shim of `criterion` supporting the API subset this
//! workspace's bench targets use: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`Bencher::iter`] / [`Bencher::iter_custom`],
//! [`BenchmarkId`], and [`black_box`].
//!
//! The build container has no access to crates.io, so the workspace
//! patches `criterion` to this path crate. Statistics are intentionally
//! simple: per benchmark we warm up briefly, pick an iteration count
//! targeting a fixed per-sample budget, collect `sample_size` samples,
//! and report the median ns/iter on stdout in a stable
//! `name/param time: X ns/iter` format. No plots, no saved baselines.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget for one sample (before dividing by iterations).
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10 }
    }
}

/// Identifier `function_name/parameter` for one benchmark in a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Things acceptable as a benchmark id (`BenchmarkId` or a string).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with an input value passed through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_bench(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Per-sample measurement handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the closure time `iters` iterations itself (for phases that
    /// include setup that must not be measured).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

fn run_one(f: &mut dyn FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed
}

fn run_bench(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up and calibration: grow the iteration count until one
    // sample costs at least ~1/4 of the budget, then scale to budget.
    let mut iters: u64 = 1;
    let mut once;
    loop {
        once = run_one(f, iters);
        if once >= SAMPLE_BUDGET / 4 || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4).max(1);
    }
    let per_iter = once.as_nanos().max(1) as u64 / iters.max(1);
    let target = (SAMPLE_BUDGET.as_nanos() as u64 / per_iter.max(1)).clamp(1, 1 << 24);

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| run_one(f, target).as_nanos() as f64 / target as f64)
        .collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter_ns[per_iter_ns.len() / 2];
    println!("{name} time: {median:.1} ns/iter ({samples} samples x {target} iters)");
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // shim has no CLI, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut hits = 0u64;
        g.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| black_box(1 + 1));
            hits += 1;
        });
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(7u64);
                }
                t.elapsed()
            })
        });
        g.finish();
        assert!(hits >= 3);
    }
}
