//! Property test: the batched deque operations agree with a sequential
//! `VecDeque` oracle.
//!
//! Single-threaded random op sequences — singles and batches, both ends,
//! batch sizes past [`MAX_BATCH`] so the chunking loops run — executed
//! against the array, list, and dummy-list deques, comparing every
//! return value (including `Full` tails and short pops) and the final
//! drained contents against the oracle.
//!
//! The oracle mirrors the documented batch contracts:
//!
//! * pops: `pop_*_n(k)` removes `min(k, |S|)` values, end-first — same
//!   as `k` repeated single pops, whatever the chunking;
//! * unbounded pushes: never fail, order as repeated singles;
//! * bounded (array) pushes: committed in all-or-nothing chunks of
//!   `min(MAX_BATCH, capacity)` — when a whole chunk does not fit, the
//!   chunk and the untouched tail come back in `Full`, and the
//!   already-committed chunks stay.

use std::collections::VecDeque;

use dcas_deques::deque::{ArrayDeque, ConcurrentDeque, DummyListDeque, ListDeque, MAX_BATCH};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    PushRight,
    PushLeft,
    PopRight,
    PopLeft,
    /// Batched ops carry the requested size (0..=2×MAX_BATCH, so the
    /// multi-chunk path is exercised).
    PushRightN(usize),
    PushLeftN(usize),
    PopRightN(usize),
    PopLeftN(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let n = 0..2 * MAX_BATCH + 1;
    prop_oneof![
        Just(Op::PushRight),
        Just(Op::PushLeft),
        Just(Op::PopRight),
        Just(Op::PopLeft),
        n.clone().prop_map(Op::PushRightN),
        n.clone().prop_map(Op::PushLeftN),
        n.clone().prop_map(Op::PopRightN),
        n.prop_map(Op::PopLeftN),
    ]
}

/// The sequential oracle: a `VecDeque` plus the capacity/chunking rules.
struct Oracle {
    items: VecDeque<u64>,
    capacity: Option<usize>,
}

impl Oracle {
    fn push_right(&mut self, v: u64) -> Result<(), u64> {
        if self.capacity.is_some_and(|c| self.items.len() >= c) {
            return Err(v);
        }
        self.items.push_back(v);
        Ok(())
    }

    fn push_left(&mut self, v: u64) -> Result<(), u64> {
        if self.capacity.is_some_and(|c| self.items.len() >= c) {
            return Err(v);
        }
        self.items.push_front(v);
        Ok(())
    }

    /// Chunk-committed batch push; `right` selects the end. Returns the
    /// unpushed tail on the first chunk that does not fit whole.
    fn push_n(&mut self, vals: Vec<u64>, right: bool) -> Result<(), Vec<u64>> {
        match self.capacity {
            None => {
                for v in vals {
                    if right {
                        self.items.push_back(v);
                    } else {
                        self.items.push_front(v);
                    }
                }
                Ok(())
            }
            Some(cap) => {
                let chunk_max = MAX_BATCH.min(cap);
                let mut i = 0;
                while i < vals.len() {
                    let end = (i + chunk_max).min(vals.len());
                    if self.items.len() + (end - i) > cap {
                        return Err(vals[i..].to_vec());
                    }
                    for &v in &vals[i..end] {
                        if right {
                            self.items.push_back(v);
                        } else {
                            self.items.push_front(v);
                        }
                    }
                    i = end;
                }
                Ok(())
            }
        }
    }

    fn pop_n(&mut self, k: usize, right: bool) -> Vec<u64> {
        let mut out = Vec::new();
        for _ in 0..k {
            let v = if right { self.items.pop_back() } else { self.items.pop_front() };
            match v {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }
}

/// Runs `ops` against `deque` and the oracle in lockstep, comparing
/// every result, then drains both and compares the leftovers.
fn check_against_oracle<D: ConcurrentDeque<u64>>(deque: &D, capacity: Option<usize>, ops: &[Op]) {
    let mut oracle = Oracle { items: VecDeque::new(), capacity };
    let mut next = 0u64;
    let mut fresh = |n: usize| -> Vec<u64> {
        let vals: Vec<u64> = (next..next + n as u64).collect();
        next += n as u64;
        vals
    };
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::PushRight => {
                let v = fresh(1)[0];
                let got = deque.push_right(v).map_err(|f| f.into_inner());
                prop_assert_eq!(got, oracle.push_right(v), "op {}: pushRight({})", i, v);
            }
            Op::PushLeft => {
                let v = fresh(1)[0];
                let got = deque.push_left(v).map_err(|f| f.into_inner());
                prop_assert_eq!(got, oracle.push_left(v), "op {}: pushLeft({})", i, v);
            }
            Op::PopRight => {
                prop_assert_eq!(deque.pop_right(), oracle.pop_n(1, true).pop(), "op {i}");
            }
            Op::PopLeft => {
                prop_assert_eq!(deque.pop_left(), oracle.pop_n(1, false).pop(), "op {i}");
            }
            Op::PushRightN(n) => {
                let vals = fresh(n);
                let got = deque.push_right_n(vals.clone()).map_err(|f| f.into_inner());
                prop_assert_eq!(got, oracle.push_n(vals, true), "op {}: pushRightN", i);
            }
            Op::PushLeftN(n) => {
                let vals = fresh(n);
                let got = deque.push_left_n(vals.clone()).map_err(|f| f.into_inner());
                prop_assert_eq!(got, oracle.push_n(vals, false), "op {}: pushLeftN", i);
            }
            Op::PopRightN(n) => {
                prop_assert_eq!(deque.pop_right_n(n), oracle.pop_n(n, true), "op {i}");
            }
            Op::PopLeftN(n) => {
                prop_assert_eq!(deque.pop_left_n(n), oracle.pop_n(n, false), "op {i}");
            }
        }
    }
    // Final contents, left to right.
    let mut leftovers = Vec::new();
    while let Some(v) = deque.pop_left() {
        leftovers.push(v);
    }
    let expect: Vec<u64> = oracle.items.into_iter().collect();
    prop_assert_eq!(leftovers, expect, "final contents diverged");
    prop_assert_eq!(deque.pop_right(), None, "deque not empty after drain");
}

proptest! {
    #[test]
    fn array_deque_batches_match_the_oracle(
        capacity in 1usize..13,
        ops in proptest::collection::vec(op_strategy(), 0..80),
    ) {
        let deque = ArrayDeque::<u64>::new(capacity);
        check_against_oracle(&deque, Some(capacity), &ops);
    }

    #[test]
    fn list_deque_batches_match_the_oracle(
        ops in proptest::collection::vec(op_strategy(), 0..80),
    ) {
        let deque = ListDeque::<u64>::new();
        check_against_oracle(&deque, None, &ops);
    }

    #[test]
    fn dummy_list_deque_batches_match_the_oracle(
        ops in proptest::collection::vec(op_strategy(), 0..80),
    ) {
        let deque = DummyListDeque::<u64>::new();
        check_against_oracle(&deque, None, &ops);
    }
}
