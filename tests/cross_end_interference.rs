//! The Section 1.1 critique, measured algorithmically (not by wall
//! clock): with threads working strictly on opposite ends of a half-full
//! deque, the paper's array deque performs (nearly) zero failed DCASes,
//! while the Greenwald-style one-word-indices deque — in which every
//! operation CASes the same index register — suffers cross-end
//! interference and must retry.
//!
//! The `Yielding` wrapper forces a scheduler switch around every DCAS,
//! so the interleavings that expose interference occur deterministically
//! even on a single-CPU host (where timing alone would produce almost no
//! overlap).

use std::sync::Barrier;

use dcas::{Counting, StripedLock, Yielding};
use dcas_deques::baselines::greenwald::RawGreenwaldDeque;
use dcas_deques::deque::array::RawArrayDeque;

const OPS: u64 = 10_000;
const CAP: usize = 1 << 10;

/// Runs one left-end worker and one right-end worker doing push/pop pairs
/// on their own end; returns (dcas_attempts, dcas_successes).
fn run_two_ends<D: Sync>(
    deque: &D,
    push_left: impl Fn(&D, u32) + Sync,
    pop_left: impl Fn(&D) -> Option<u32> + Sync,
    push_right: impl Fn(&D, u32) + Sync,
    pop_right: impl Fn(&D) -> Option<u32> + Sync,
) {
    let barrier = Barrier::new(2);
    std::thread::scope(|s| {
        s.spawn(|| {
            barrier.wait();
            for i in 0..OPS as u32 {
                push_left(deque, i);
                pop_left(deque);
            }
        });
        s.spawn(|| {
            barrier.wait();
            for i in 0..OPS as u32 {
                push_right(deque, i);
                pop_right(deque);
            }
        });
    });
}

#[test]
fn cross_end_interference() {
    // Our array deque, half full so the ends never physically meet.
    let ours = RawArrayDeque::<u32, Counting<Yielding<StripedLock>>>::new(CAP);
    for i in 0..(CAP / 2) as u32 {
        ours.push_right(i).unwrap();
    }
    ours.strategy().reset();
    run_two_ends(
        &ours,
        |d, v| {
            let _ = d.push_left(v);
        },
        |d| d.pop_left(),
        |d, v| {
            let _ = d.push_right(v);
        },
        |d| d.pop_right(),
    );
    let ours_stats = ours.strategy().stats();

    // The Greenwald-style deque under the same workload.
    let gw = RawGreenwaldDeque::<u32, Counting<Yielding<StripedLock>>>::new(CAP);
    for i in 0..(CAP / 2) as u32 {
        gw.push_right(i).unwrap();
    }
    gw.strategy().reset();
    run_two_ends(
        &gw,
        |d, v| {
            let _ = d.push_left(v);
        },
        |d| d.pop_left(),
        |d, v| {
            let _ = d.push_right(v);
        },
        |d| d.pop_right(),
    );
    let gw_stats = gw.strategy().stats();

    let ours_fail_rate = ours_stats.dcas_failures() as f64 / ours_stats.dcas_attempts as f64;
    let gw_fail_rate = gw_stats.dcas_failures() as f64 / gw_stats.dcas_attempts as f64;
    println!(
        "ours: {} attempts, {:.4}% failed; greenwald: {} attempts, {:.4}% failed",
        ours_stats.dcas_attempts,
        ours_fail_rate * 100.0,
        gw_stats.dcas_attempts,
        gw_fail_rate * 100.0
    );

    // Ours: disjoint ends touch disjoint words — essentially no failures.
    assert!(
        ours_fail_rate < 0.001,
        "unexpected cross-end interference in the paper's deque: {ours_fail_rate}"
    );
    // Greenwald: every op contends on the index register; under two-end
    // load a visible fraction of DCASes must retry.
    assert!(
        gw_fail_rate > ours_fail_rate * 10.0,
        "expected the one-word-indices deque to interfere: ours {ours_fail_rate}, \
         greenwald {gw_fail_rate}"
    );
}

#[test]
fn batched_ops_do_not_interfere_across_ends() {
    // PR 2: the chunk CASN of a batched operation touches one hub word
    // plus k cells at *its own* end, so two threads doing opposite-end
    // batched push/pop pairs on a half-full deque should see essentially
    // no failed CASNs — the same disjointness argument as the
    // single-element case, now over wider atomic footprints.
    const K: usize = 4;
    let ours = RawArrayDeque::<u32, Counting<Yielding<StripedLock>>>::new(CAP);
    for i in 0..(CAP / 2) as u32 {
        ours.push_right(i).unwrap();
    }
    ours.strategy().reset();
    run_two_ends(
        &ours,
        |d, v| {
            let _ = d.push_left_n((0..K as u32).map(|j| v + j));
        },
        |d| d.pop_left_n(K).into_iter().next(),
        |d, v| {
            let _ = d.push_right_n((0..K as u32).map(|j| v + j));
        },
        |d| d.pop_right_n(K).into_iter().next(),
    );
    let stats = ours.strategy().stats();
    assert!(stats.casn_attempts > 0, "batched ops should go through the CASN primitive");
    let fail_rate = stats.casn_failures() as f64 / stats.casn_attempts as f64;
    println!("batched: {} CASN attempts, {:.4}% failed", stats.casn_attempts, fail_rate * 100.0);
    assert!(
        fail_rate < 0.001,
        "unexpected cross-end interference between batched ops: {fail_rate}"
    );
}
