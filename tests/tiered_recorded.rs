//! Record-and-verify for the two-level scheduler deque: every transfer
//! between a [`TieredDeque`]'s private ring and its shared level is
//! traced by [`Recorded`] and audited for linearizability.
//!
//! The tiered deque's correctness story is that the owner's private
//! ring is invisible to other threads, so **all** inter-thread traffic
//! — spills, refills, steals — still flows through the paper's
//! linearizable deque in chunk-atomic batches. This suite checks
//! exactly that boundary: the shared level is a
//! `Recorded<ListDeque<u64>>`, so the captured history is precisely the
//! spill (`push_right_n`), refill (`pop_right_n`), and steal
//! (`pop_left_n`) batches, and the windowed checker requires them to
//! linearize from the empty deque while conservation is verified
//! end-to-end at the element level.
//!
//! The workload is pulsed on a barrier (like `recorded_linearizability`)
//! so the audit finds quiescent cuts: one owner thread pushes and pops
//! through the ring while thief threads run `steal_half` against the
//! shared level — the scheduler's exact access pattern.

#![cfg(feature = "obs")]

use std::collections::HashSet;
use std::sync::{Barrier, Mutex};
use std::time::Duration;

use dcas_deques::deque::ListDeque;
use dcas_deques::harness::{trace_seed, Watchdog};
use dcas_deques::linearize::SeqDeque;
use dcas_deques::obs::{audit, Recorded};
use dcas_deques::workstealing::{TieredDeque, RING_CAP};

/// Checker window cap (matches `recorded_linearizability`).
const MAX_WINDOW: usize = 48;
/// Barrier pulses.
const ROUNDS: usize = 40;
/// Trace-ring slots per thread.
const RING_CAPACITY: usize = ROUNDS * MAX_WINDOW;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn run_tiered_recorded<P: dcas_deques::workstealing::PrivateTier<u64>>(test: &str) {
    let seed = trace_seed(test);
    let dog = Watchdog::arm_with_seed_var(test, "TRACE_SEED", seed, Duration::from_secs(120));
    for &thieves in &[1usize, 3] {
        let threads = thieves + 1;
        let shared: Recorded<ListDeque<u64>> =
            Recorded::with_atomic_batches(ListDeque::new(), threads, RING_CAPACITY);
        dog.attach_recorder(shared.recorder(), 6);
        let tiered: TieredDeque<u64, _, P> = TieredDeque::with_tier(shared);
        let barrier = Barrier::new(threads);
        // Every value each thread removed, for end-to-end conservation.
        let taken: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let mut pushed = 0u64;

        std::thread::scope(|s| {
            // Thieves: steal_half pulses against the shared level.
            for t in 0..thieves as u64 {
                let (tiered, barrier, taken) = (&tiered, &barrier, &taken);
                s.spawn(move || {
                    let mut rng = seed ^ (t << 24) ^ 0x7EEF;
                    let mut got = Vec::new();
                    for _ in 0..ROUNDS {
                        barrier.wait();
                        for _ in 0..1 + splitmix64(&mut rng) % 3 {
                            got.extend(tiered.steal_half());
                        }
                        barrier.wait();
                    }
                    taken.lock().unwrap().extend(got);
                });
            }
            // Owner: pushes bursts (forcing spills past RING_CAP) and
            // pops (forcing refills once the ring drains), ring-private
            // by contract. Runs on this scope thread so `pushed` and the
            // final drain need no extra synchronisation.
            let mut rng = seed ^ 0xACE5;
            let mut owner_got = Vec::new();
            for _ in 0..ROUNDS {
                barrier.wait();
                let burst = (RING_CAP / 2) + (splitmix64(&mut rng) as usize % RING_CAP);
                for _ in 0..burst {
                    tiered.push(pushed).expect("unbounded shared level");
                    pushed += 1;
                }
                for _ in 0..splitmix64(&mut rng) as usize % burst {
                    owner_got.extend(tiered.pop());
                }
                barrier.wait();
            }
            // Drain: publish the ring, then steal everything back (the
            // owner acting as its own thief keeps the trace shape to
            // shared-level batches only).
            assert!(tiered.flush_local().is_empty());
            loop {
                let chunk = tiered.steal_half();
                if chunk.is_empty() {
                    break;
                }
                owner_got.extend(chunk);
            }
            taken.lock().unwrap().extend(owner_got);
        });

        // Conservation: every pushed value came out exactly once.
        let taken = taken.into_inner().unwrap();
        assert_eq!(taken.len() as u64, pushed, "x{threads}: lost or duplicated elements");
        let distinct: HashSet<u64> = taken.iter().copied().collect();
        assert_eq!(distinct.len() as u64, pushed, "x{threads}: duplicated elements");
        assert!(distinct.iter().all(|&v| v < pushed));

        // Linearizability of the recorded shared-level traffic.
        let report = audit(tiered.shared().recorder(), SeqDeque::unbounded(), MAX_WINDOW)
            .unwrap_or_else(|e| panic!("{test} x{threads}: audit failed: {e}"));
        assert!(
            report.window.ops_checked > 0,
            "x{threads}: no spill/refill/steal traffic recorded"
        );
        assert_eq!(report.trace.in_flight_excluded, 0, "x{threads}: ops left in flight");
    }
    dog.disarm();
}

#[test]
fn tiered_spill_refill_and_steals_linearize() {
    run_tiered_recorded::<dcas_deques::workstealing::VecRing<u64>>(
        "tiered_spill_refill_and_steals_linearize",
    );
}

/// Same audit over the Chase-Lev private tier. Thieves additionally
/// steal straight from the owner's tier (traffic the recorder does not
/// see, by design — it is not shared-level traffic), so the recorded
/// history is a *subset* of the removals; the audit checks that the
/// spill/refill/steal batches that do cross the shared level still
/// linearize, and conservation is verified over both exits combined.
#[test]
fn tiered_chaselev_spill_refill_and_steals_linearize() {
    run_tiered_recorded::<dcas_deques::workstealing::ChaseLevTier<u64>>(
        "tiered_chaselev_spill_refill_and_steals_linearize",
    );
}
