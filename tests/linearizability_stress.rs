//! End-to-end linearizability checking of every deque implementation
//! under every DCAS strategy (Theorems 3.1 / 4.1, tested on the real
//! implementations rather than the models).
//!
//! Each case runs hundreds of short contended rounds, records complete
//! histories, and feeds them to the Wing & Gong checker against the
//! paper's sequential specification.

use dcas::{
    DcasStrategy, GlobalLock, GlobalSeqLock, HarrisMcas, HarrisMcasBoxed, StripedLock, Yielding,
};
use dcas_deques::baselines::{GreenwaldDeque, MutexDeque, SpinDeque};
use dcas_deques::deque::{ArrayDeque, DummyListDeque, LfrcListDeque, ListDeque, SundellDeque};
use dcas_deques::linearize::{stress_and_check, StressConfig};

fn config(capacity: Option<usize>) -> StressConfig {
    StressConfig {
        threads: 4,
        ops_per_thread: 5,
        rounds: 150,
        capacity,
        push_bias: 55,
        seed: 0xD0C5,
        max_batch: 0,
    }
}

fn check_array<S: DcasStrategy>() {
    let d: ArrayDeque<u64, S> = ArrayDeque::new(4);
    stress_and_check(&d, config(Some(4))).unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
}

fn check_list<S: DcasStrategy>() {
    let d: ListDeque<u64, S> = ListDeque::new();
    stress_and_check(&d, config(None)).unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
}

fn check_dummy_list<S: DcasStrategy>() {
    let d: DummyListDeque<u64, S> = DummyListDeque::new();
    stress_and_check(&d, config(None)).unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
}

fn check_lfrc_list<S: DcasStrategy>() {
    let d: LfrcListDeque<u64, S> = LfrcListDeque::new();
    stress_and_check(&d, config(None)).unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
}

fn check_sundell<S: DcasStrategy>() {
    let d: SundellDeque<u64, S> = SundellDeque::new();
    stress_and_check(&d, config(None)).unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
}

fn check_greenwald<S: DcasStrategy>() {
    let d: GreenwaldDeque<u64, S> = GreenwaldDeque::new(4);
    stress_and_check(&d, config(Some(4))).unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
}

macro_rules! strategy_matrix {
    ($name:ident, $check:ident) => {
        mod $name {
            use super::*;

            #[test]
            fn global_lock() {
                $check::<GlobalLock>();
            }

            #[test]
            fn global_seqlock() {
                $check::<GlobalSeqLock>();
            }

            #[test]
            fn striped_lock() {
                $check::<StripedLock>();
            }

            #[test]
            fn harris_mcas() {
                $check::<HarrisMcas>();
            }

            #[test]
            fn harris_mcas_boxed() {
                // The seed-compat hot path (fresh Box per descriptor, no
                // backoff, all-RDCSS installs) must stay linearizable too:
                // it is the baseline arm of the e10 perf comparison.
                $check::<HarrisMcasBoxed>();
            }

            #[test]
            fn harris_mcas_with_yield_injection() {
                // Yielding around every DCAS widens race windows,
                // exercising helping paths and (for the list deques) the
                // suspended-between-logical-and-physical-delete states.
                $check::<Yielding<HarrisMcas>>();
            }
        }
    };
}

strategy_matrix!(array_deque, check_array);
strategy_matrix!(list_deque, check_list);
strategy_matrix!(dummy_list_deque, check_dummy_list);
strategy_matrix!(lfrc_list_deque, check_lfrc_list);
strategy_matrix!(sundell_deque, check_sundell);
strategy_matrix!(greenwald_deque, check_greenwald);

#[test]
fn sundell_deque_hazard_backend_is_linearizable() {
    // The CAS-only deque under the hazard-pointer reclaimer: every
    // traversal runs the announce-and-validate protocol mid-history.
    let d: SundellDeque<u64, dcas::HarrisMcasHazard> = SundellDeque::new();
    stress_and_check(&d, config(None)).unwrap();
}

#[test]
fn sundell_pop_heavy_workload_hits_empty_paths() {
    // Pop-biased traffic exercises the empty-observation returns and the
    // helping paths that race a half-finished deletion at each end.
    let d: SundellDeque<u64, HarrisMcas> = SundellDeque::new();
    stress_and_check(
        &d,
        StressConfig { push_bias: 25, rounds: 150, ..config(None) },
    )
    .unwrap();
}

#[test]
fn array_deque_minimal_config_is_linearizable() {
    use dcas_deques::deque::array::ArrayConfig;
    let d: ArrayDeque<u64, GlobalSeqLock> = ArrayDeque::with_config(3, ArrayConfig::minimal());
    stress_and_check(&d, config(Some(3))).unwrap();
}

#[test]
fn array_capacity_one_boundary_storm() {
    // Capacity 1: every operation is a boundary case.
    let d: ArrayDeque<u64, GlobalSeqLock> = ArrayDeque::new(1);
    stress_and_check(
        &d,
        StressConfig { capacity: Some(1), push_bias: 50, rounds: 200, ..config(Some(1)) },
    )
    .unwrap();
}

#[test]
fn lock_based_baselines_are_linearizable() {
    let d: MutexDeque<u64> = MutexDeque::bounded(4);
    stress_and_check(&d, config(Some(4))).unwrap();
    let d: SpinDeque<u64> = SpinDeque::new();
    stress_and_check(&d, config(None)).unwrap();
}

#[test]
fn pop_heavy_workload_hits_empty_paths() {
    let d: ListDeque<u64, HarrisMcas> = ListDeque::new();
    stress_and_check(
        &d,
        StressConfig { push_bias: 25, rounds: 150, ..config(None) },
    )
    .unwrap();
}

#[test]
fn push_heavy_workload_hits_full_paths() {
    let d: ArrayDeque<u64, HarrisMcas> = ArrayDeque::new(3);
    stress_and_check(
        &d,
        StressConfig { push_bias: 80, rounds: 150, ..config(Some(3)) },
    )
    .unwrap();
}

// --- Batched operations (PR 2): one recorded `PushRightN`/`PopLeftN` op
// maps onto exactly one chunk CASN, so the checker proves each batch is a
// single atomic multi-element transition of the Section 2.2 machine.
// Array capacity must be >= max_batch for that one-op-one-chunk mapping
// (`push_right_n` splits batches wider than the capacity into chunks).

#[test]
fn array_deque_batched_ops_linearizable() {
    let d: ArrayDeque<u64, HarrisMcas> = ArrayDeque::new(8);
    stress_and_check(&d, StressConfig { max_batch: 8, ..config(Some(8)) }).unwrap();
}

#[test]
fn array_deque_batched_ops_linearizable_with_yield_injection() {
    let d: ArrayDeque<u64, Yielding<HarrisMcas>> = ArrayDeque::new(8);
    stress_and_check(&d, StressConfig { max_batch: 8, ..config(Some(8)) }).unwrap();
}

#[test]
fn array_deque_batched_full_paths_linearizable() {
    // Push-heavy at exactly max_batch capacity: batched pushes routinely
    // hit the all-or-nothing `Full` path mid-history.
    let d: ArrayDeque<u64, HarrisMcas> = ArrayDeque::new(8);
    stress_and_check(
        &d,
        StressConfig { push_bias: 80, max_batch: 8, ..config(Some(8)) },
    )
    .unwrap();
}

#[test]
fn list_deque_batched_ops_linearizable() {
    let d: ListDeque<u64, HarrisMcas> = ListDeque::new();
    stress_and_check(&d, StressConfig { max_batch: 8, ..config(None) }).unwrap();
}

#[test]
fn list_deque_batched_ops_linearizable_with_yield_injection() {
    // Yields inside the multi-word CASN suspend batches between their
    // logical and physical effects; helpers must keep them atomic.
    let d: ListDeque<u64, Yielding<HarrisMcas>> = ListDeque::new();
    stress_and_check(&d, StressConfig { max_batch: 8, ..config(None) }).unwrap();
}

// --- Elimination backoff (PR 2): pairing a colliding same-end push/pop in
// the elimination array must look exactly like the push linearizing
// immediately before the pop. That is legal only where a push can never
// fail, so elimination exists on the unbounded list deque alone (on the
// bounded array deque an eliminated push could complete while the deque
// was full — non-linearizable — and the knob is deliberately absent).
// `Yielding` widens the retry windows where the arrays are consulted;
// tiny arrays force slot reuse (version churn).

fn eliminating() -> dcas_deques::deque::EndConfig {
    dcas_deques::deque::EndConfig {
        elimination: true,
        elim_slots: 2,
        offer_spins: 64,
    }
}

#[test]
fn eliminating_list_deque_is_linearizable() {
    let d: ListDeque<u64, Yielding<HarrisMcas>> = ListDeque::with_end_config(eliminating());
    stress_and_check(&d, config(None)).unwrap();
}

#[test]
fn eliminating_list_deque_with_batched_ops_is_linearizable() {
    // Both PR-2 mechanisms at once: batched chunk CASNs racing eliminated
    // single-element pairs.
    let d: ListDeque<u64, Yielding<HarrisMcas>> = ListDeque::with_end_config(eliminating());
    stress_and_check(&d, StressConfig { max_batch: 8, ..config(None) }).unwrap();
}
