//! Keeps `examples/broker.rs` honest: this test mirrors the broker
//! quickstart through the umbrella prelude — if the public API drifts,
//! this fails before the example (or README) lies.

use dcas_deques::prelude::*;

#[test]
fn broker_quickstart_compiles_and_runs() {
    // Flat broker over unbounded list shards: round-robin + keyed sends,
    // consumer rebalances across shards.
    let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(4);
    let mut p = broker.producer();
    for v in 0..100u64 {
        p.send(v).expect("unbounded shards never backpressure");
    }
    for v in 100..200u64 {
        p.send_keyed(v % 17, v).expect("unbounded");
    }
    p.flush().expect("unbounded");
    drop(p);

    let mut c = broker.consumer();
    let mut got = Vec::new();
    while let Some(v) = c.recv() {
        got.push(v);
    }
    drop(c);
    got.sort_unstable();
    assert_eq!(got, (0..200).collect::<Vec<u64>>());

    // Bounded shards surface backpressure as a typed error carrying the
    // rejected values — conservation is checkable from the outside.
    let bounded: ShardedBroker<u64, _> = ShardedBroker::bounded_array(2, 8);
    let mut p = bounded.producer();
    let mut rejected = 0usize;
    for v in 0..200 {
        if let Err(bp) = p.send(v) {
            assert!(!bp.is_empty());
            rejected += bp.len();
        }
    }
    if let Err(bp) = p.flush() {
        rejected += bp.into_inner().len();
    }
    drop(p);
    let accepted = bounded.drain_remaining().len();
    assert_eq!(accepted + rejected, 200, "backpressure lost values");

    // Shard death: contents of the killed shard are rescued onto
    // survivors; the broker keeps serving.
    let frail: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(4);
    let mut p = frail.producer();
    for v in 0..64u64 {
        p.send(v).unwrap();
    }
    drop(p);
    frail.kill_shard(1);
    assert_eq!(frail.alive_shards(), 3);
    let mut c = frail.consumer();
    let mut served = 0;
    while c.recv().is_some() {
        served += 1;
    }
    drop(c);
    assert_eq!(served, 64, "shard death lost values");

    // Tiered broker: one producer per shard (owner-exclusive push side),
    // any number of stealing consumers.
    let tiered: ShardedBroker<u64, _> = ShardedBroker::tiered_chaselev(2);
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let mut p = tiered.producer();
                for v in 0..50u64 {
                    p.send(v).expect("unbounded tier");
                }
            });
        }
    });
    let mut c = tiered.consumer();
    let mut n = 0;
    while c.recv().is_some() {
        n += 1;
    }
    assert_eq!(n, 100);

    // Broker stats expose the mechanism: batches, rebalances, rescues.
    let stats = frail.stats();
    assert_eq!(stats.shard_deaths, 1);
    assert!(stats.sent >= 64);
}
