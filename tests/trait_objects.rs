//! The `ConcurrentDeque` trait is object-safe: all implementations can be
//! driven uniformly behind `dyn` — the pattern the stress driver, benches
//! and examples rely on.

use dcas::{GlobalSeqLock, HarrisMcas};
use dcas_deques::baselines::{GreenwaldDeque, MutexDeque, SpinDeque};
use dcas_deques::deque::{ArrayDeque, DummyListDeque, LfrcListDeque, ListDeque, SundellDeque};
use dcas_deques::prelude::ConcurrentDeque;

fn all_deques() -> Vec<Box<dyn ConcurrentDeque<u64>>> {
    vec![
        Box::new(ArrayDeque::<u64, HarrisMcas>::new(64)),
        Box::new(ArrayDeque::<u64, GlobalSeqLock>::new(64)),
        Box::new(ListDeque::<u64, HarrisMcas>::new()),
        Box::new(DummyListDeque::<u64, HarrisMcas>::new()),
        Box::new(LfrcListDeque::<u64, HarrisMcas>::new()),
        Box::new(SundellDeque::<u64, HarrisMcas>::new()),
        Box::new(GreenwaldDeque::<u64, HarrisMcas>::new(64)),
        Box::new(MutexDeque::<u64>::new()),
        Box::new(SpinDeque::<u64>::new()),
    ]
}

#[test]
fn names_are_distinct() {
    let deques = all_deques();
    let mut names: Vec<&str> = deques.iter().map(|d| d.impl_name()).collect();
    let before = names.len();
    names.sort();
    names.dedup();
    // Two array-deque strategy instantiations share a name; all algorithm
    // families are distinct.
    assert!(names.len() >= before - 1, "too many duplicate names: {names:?}");
}

#[test]
fn uniform_semantics_through_dyn() {
    for d in all_deques() {
        let name = d.impl_name();
        // The paper's worked example through the trait object.
        d.push_right(1).unwrap();
        d.push_left(2).unwrap();
        d.push_right(3).unwrap();
        assert_eq!(d.pop_left(), Some(2), "{name}");
        assert_eq!(d.pop_left(), Some(1), "{name}");
        assert_eq!(d.pop_right(), Some(3), "{name}");
        assert_eq!(d.pop_right(), None, "{name}");
        assert_eq!(d.pop_left(), None, "{name}");
    }
}

#[test]
fn mixed_fifo_order_through_dyn() {
    for d in all_deques() {
        let name = d.impl_name();
        for i in 0..40 {
            d.push_right(i).unwrap();
        }
        for i in 0..40 {
            assert_eq!(d.pop_left(), Some(i), "{name}");
        }
    }
}

fn roomy_deques() -> Vec<Box<dyn ConcurrentDeque<u64>>> {
    vec![
        Box::new(ArrayDeque::<u64, HarrisMcas>::new(1024)),
        Box::new(ListDeque::<u64, HarrisMcas>::new()),
        Box::new(DummyListDeque::<u64, HarrisMcas>::new()),
        Box::new(LfrcListDeque::<u64, HarrisMcas>::new()),
        Box::new(SundellDeque::<u64, HarrisMcas>::new()),
        Box::new(GreenwaldDeque::<u64, HarrisMcas>::new(1024)),
        Box::new(MutexDeque::<u64>::new()),
        Box::new(SpinDeque::<u64>::new()),
    ]
}

#[test]
fn shared_across_threads_as_dyn() {
    for d in roomy_deques() {
        let d: std::sync::Arc<dyn ConcurrentDeque<u64>> = d.into();
        let name = d.impl_name();
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let d = d.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        d.push_right(t * 1000 + i).unwrap();
                    }
                });
            }
        });
        let mut count = 0;
        while d.pop_left().is_some() {
            count += 1;
        }
        assert_eq!(count, 600, "{name}");
        // Hazard/epoch-free deques tolerate a trailing flush; for the
        // sundell deque this also exercises the link-count death cascade
        // from a fully drained state.
        assert_eq!(d.pop_right(), None, "{name}");
    }
}
