//! Record-and-verify: the real deques, traced by [`Recorded`], audited
//! by the real linearizability checker.
//!
//! The model checker (`crates/modelcheck`) proves the paper's
//! linearization-point arguments over abstract machines; this suite
//! closes the loop on the *implementations*. Every test drives one of
//! the four deques from multiple threads through the [`Recorded`]
//! wrapper, then converts the captured per-thread rings into a
//! `dcas-linearize` history and requires it to linearize from the empty
//! deque — windowed at quiescent cuts, so runs of tens of thousands of
//! operations stay checkable.
//!
//! The workload is *pulsed*: threads synchronize on a barrier every few
//! operations. Windowed auditing can only close a window at a real-time
//! point with no operation in flight; a workload that saturates the
//! deque for its whole lifetime has no such point and would force the
//! checker to buffer the entire trace. The per-round record budget keeps
//! every window within the checker's cap.
//!
//! Seeds: `TRACE_SEED=<n> cargo test --test recorded_linearizability`
//! replays any failure exactly (the seed is printed at the start of
//! every test, torture-style). Runs are guarded by the shared
//! [`Watchdog`], with the recorder tail attached: a wedged run aborts
//! showing the last operations of every thread.

#![cfg(feature = "obs")]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use dcas_deques::deque::{
    ArrayDeque, ConcurrentDeque, DummyListDeque, LfrcListDeque, ListDeque, SundellDeque, MAX_BATCH,
};
use dcas_deques::harness::{trace_seed, Watchdog};
use dcas_deques::linearize::{SeqDeque, WindowedChecker};
use dcas_deques::obs::{audit, completed_history, BatchTracing, OnlineAuditor, Recorded};

/// Checker window cap (the monolithic checker handles ≤ 64 ops; stay
/// under it so every round fits in one window with slack).
const MAX_WINDOW: usize = 48;
/// Barrier pulses per thread count.
const ROUNDS: usize = 60;
/// Trace-ring slots per thread: an upper bound on one thread's records
/// (`MAX_WINDOW` per round is the whole-run budget, split per thread).
const RING_CAPACITY: usize = ROUNDS * MAX_WINDOW;
/// Capacity of the bounded array deque under test (≥ [`MAX_BATCH`], as
/// chunk-atomic recording requires).
const ARRAY_CAPACITY: usize = 16;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One thread's pulsed op loop. `budget` bounds the *records* (not
/// calls) emitted per round: a per-element-traced batch of `n` counts
/// as `n`, so the whole round — across all threads — fits in one
/// checker window even in the worst case.
fn pulsed_worker<D: ConcurrentDeque<u64>>(
    deque: &Recorded<D>,
    barrier: &Barrier,
    seed: u64,
    tid: u64,
    budget: usize,
    batches: bool,
) {
    let mut rng = seed ^ (tid << 16) ^ 0xA5A5;
    let mut next = tid * 1_000_000;
    let fresh = |n: u64, next: &mut u64| -> Vec<u64> {
        let vals: Vec<u64> = (*next..*next + n).collect();
        *next += n;
        vals
    };
    for _ in 0..ROUNDS {
        barrier.wait();
        let mut used = 0usize;
        while used < budget {
            let die = splitmix64(&mut rng) % if batches { 8 } else { 4 };
            match die {
                0 => {
                    let _ = deque.push_right(fresh(1, &mut next)[0]);
                    used += 1;
                }
                1 => {
                    let _ = deque.push_left(fresh(1, &mut next)[0]);
                    used += 1;
                }
                2 => {
                    let _ = deque.pop_right();
                    used += 1;
                }
                3 => {
                    let _ = deque.pop_left();
                    used += 1;
                }
                die => {
                    let room = (budget - used).min(MAX_BATCH);
                    let n = 1 + (splitmix64(&mut rng) as usize) % room;
                    match die {
                        4 => {
                            let _ = deque.push_right_n(fresh(n as u64, &mut next));
                        }
                        5 => {
                            let _ = deque.push_left_n(fresh(n as u64, &mut next));
                        }
                        6 => {
                            let _ = deque.pop_right_n(n);
                        }
                        _ => {
                            let _ = deque.pop_left_n(n);
                        }
                    }
                    used += n;
                }
            }
        }
    }
}

/// Runs the full {2, 4, 8}-thread matrix for one deque: pulsed recorded
/// workload, then the post-hoc windowed audit from the empty deque.
fn matrix<D, F, I>(test: &str, make: F, initial: I, tracing: BatchTracing, batches: bool)
where
    D: ConcurrentDeque<u64> + 'static,
    F: Fn() -> D,
    I: Fn() -> SeqDeque,
{
    let seed = trace_seed(test);
    let dog = Watchdog::arm_with_seed_var(test, "TRACE_SEED", seed, Duration::from_secs(120));
    for &threads in &[2usize, 4, 8] {
        let deque = Recorded::with_batch_tracing(make(), threads, RING_CAPACITY, tracing);
        dog.attach_recorder(deque.recorder(), 6);
        let budget = (MAX_WINDOW / threads).max(1);
        let barrier = Barrier::new(threads);
        std::thread::scope(|s| {
            for t in 0..threads as u64 {
                let deque = &deque;
                let barrier = &barrier;
                s.spawn(move || {
                    pulsed_worker(deque, barrier, seed ^ (threads as u64), t, budget, batches)
                });
            }
        });
        let report = audit(deque.recorder(), initial(), MAX_WINDOW).unwrap_or_else(|e| {
            panic!("{test} x{threads} [{}]: audit failed: {e}", deque.inner().impl_name())
        });
        assert!(
            report.window.ops_checked >= threads * ROUNDS,
            "{test} x{threads}: only {} ops recorded",
            report.window.ops_checked
        );
        assert_eq!(report.trace.in_flight_excluded, 0, "{test} x{threads}: ops left in flight");
    }
    dog.disarm();
}

#[test]
fn array_deque_single_ops_linearize() {
    matrix(
        "array_deque_single_ops_linearize",
        || ArrayDeque::<u64>::new(ARRAY_CAPACITY),
        || SeqDeque::bounded(ARRAY_CAPACITY),
        BatchTracing::Atomic,
        false,
    );
}

#[test]
fn array_deque_batched_ops_linearize() {
    // Chunk-atomic CASN batches: traced as single multi-element ops.
    matrix(
        "array_deque_batched_ops_linearize",
        || ArrayDeque::<u64>::new(ARRAY_CAPACITY),
        || SeqDeque::bounded(ARRAY_CAPACITY),
        BatchTracing::Atomic,
        true,
    );
}

#[test]
fn list_deque_single_ops_linearize() {
    matrix(
        "list_deque_single_ops_linearize",
        ListDeque::<u64>::new,
        SeqDeque::unbounded,
        BatchTracing::Atomic,
        false,
    );
}

#[test]
fn list_deque_batched_ops_linearize() {
    matrix(
        "list_deque_batched_ops_linearize",
        ListDeque::<u64>::new,
        SeqDeque::unbounded,
        BatchTracing::Atomic,
        true,
    );
}

#[test]
fn dummy_list_deque_single_ops_linearize() {
    matrix(
        "dummy_list_deque_single_ops_linearize",
        DummyListDeque::<u64>::new,
        SeqDeque::unbounded,
        BatchTracing::PerElement,
        false,
    );
}

#[test]
fn dummy_list_deque_batched_ops_linearize() {
    // The dummy-node deque inherits the per-element batch loops, so its
    // batches are traced element-by-element — each element a sound
    // single-op record.
    matrix(
        "dummy_list_deque_batched_ops_linearize",
        DummyListDeque::<u64>::new,
        SeqDeque::unbounded,
        BatchTracing::PerElement,
        true,
    );
}

#[test]
fn lfrc_list_deque_single_ops_linearize() {
    matrix(
        "lfrc_list_deque_single_ops_linearize",
        LfrcListDeque::<u64>::new,
        SeqDeque::unbounded,
        BatchTracing::PerElement,
        false,
    );
}

#[test]
fn lfrc_list_deque_batched_ops_linearize() {
    matrix(
        "lfrc_list_deque_batched_ops_linearize",
        LfrcListDeque::<u64>::new,
        SeqDeque::unbounded,
        BatchTracing::PerElement,
        true,
    );
}

#[test]
fn sundell_deque_single_ops_linearize() {
    matrix(
        "sundell_deque_single_ops_linearize",
        SundellDeque::<u64>::new,
        SeqDeque::unbounded,
        BatchTracing::PerElement,
        false,
    );
}

#[test]
fn sundell_deque_batched_ops_linearize() {
    // The CAS-only deque has no multi-word transition, so its batches
    // run the per-element default loops and trace element-by-element.
    matrix(
        "sundell_deque_batched_ops_linearize",
        SundellDeque::<u64>::new,
        SeqDeque::unbounded,
        BatchTracing::PerElement,
        true,
    );
}

#[test]
fn sundell_deque_hazard_single_ops_linearize() {
    // Same audit with the hazard-pointer reclaimer underneath: the
    // announce-and-validate traversals must not perturb linearizability.
    matrix(
        "sundell_deque_hazard_single_ops_linearize",
        SundellDeque::<u64, dcas::HarrisMcasHazard>::new,
        SeqDeque::unbounded,
        BatchTracing::PerElement,
        false,
    );
}

/// The online auditor runs *while* the workload does, closing windows
/// as quiescent cuts appear — a violation would surface mid-run.
#[test]
fn online_auditor_follows_a_live_run() {
    let test = "online_auditor_follows_a_live_run";
    let seed = trace_seed(test);
    let dog = Watchdog::arm_with_seed_var(test, "TRACE_SEED", seed, Duration::from_secs(120));

    let threads = 4usize;
    let deque =
        Recorded::with_atomic_batches(ArrayDeque::<u64>::new(ARRAY_CAPACITY), threads, RING_CAPACITY);
    dog.attach_recorder(deque.recorder(), 6);
    let budget = MAX_WINDOW / threads;
    let barrier = Barrier::new(threads);
    let done = AtomicBool::new(false);

    let (report, live_windows) = std::thread::scope(|s| {
        let mut workers = Vec::new();
        for t in 0..threads as u64 {
            let deque = &deque;
            let barrier = &barrier;
            workers.push(s.spawn(move || pulsed_worker(deque, barrier, seed, t, budget, true)));
        }
        let auditor = {
            let rec = Arc::clone(deque.recorder());
            let done = &done;
            s.spawn(move || {
                let mut auditor =
                    OnlineAuditor::new(rec, SeqDeque::bounded(ARRAY_CAPACITY), MAX_WINDOW);
                let mut live_windows = 0usize;
                while !done.load(Ordering::Acquire) {
                    let poll = auditor.poll().expect("live trace must stay linearizable");
                    live_windows += poll.windows_checked;
                    std::thread::sleep(Duration::from_micros(300));
                }
                (auditor.finish().expect("final audit must pass"), live_windows)
            })
        };
        for w in workers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Release);
        auditor.join().unwrap()
    });

    assert!(
        report.window.ops_checked >= threads * ROUNDS,
        "only {} ops audited",
        report.window.ops_checked
    );
    assert!(report.window.windows > 0, "auditor never closed a window");
    // `live_windows` counts windows closed while workers were still
    // running; on a very fast machine the whole run can land between
    // two polls, so it is reported but not asserted.
    eprintln!("{test}: {live_windows} windows closed live, {} total", report.window.windows);
    dog.disarm();
}

/// The online auditor against the CAS-only deque: windows close live
/// while pushes/pops race the helping protocol.
#[test]
fn online_auditor_follows_a_live_sundell_run() {
    let test = "online_auditor_follows_a_live_sundell_run";
    let seed = trace_seed(test);
    let dog = Watchdog::arm_with_seed_var(test, "TRACE_SEED", seed, Duration::from_secs(120));

    let threads = 4usize;
    let deque = Recorded::with_batch_tracing(
        SundellDeque::<u64>::new(),
        threads,
        RING_CAPACITY,
        BatchTracing::PerElement,
    );
    dog.attach_recorder(deque.recorder(), 6);
    let budget = MAX_WINDOW / threads;
    let barrier = Barrier::new(threads);
    let done = AtomicBool::new(false);

    let report = std::thread::scope(|s| {
        let mut workers = Vec::new();
        for t in 0..threads as u64 {
            let deque = &deque;
            let barrier = &barrier;
            workers.push(s.spawn(move || pulsed_worker(deque, barrier, seed, t, budget, true)));
        }
        let auditor = {
            let rec = Arc::clone(deque.recorder());
            let done = &done;
            s.spawn(move || {
                let mut auditor = OnlineAuditor::new(rec, SeqDeque::unbounded(), MAX_WINDOW);
                while !done.load(Ordering::Acquire) {
                    auditor.poll().expect("live sundell trace must stay linearizable");
                    std::thread::sleep(Duration::from_micros(300));
                }
                auditor.finish().expect("final sundell audit must pass")
            })
        };
        for w in workers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Release);
        auditor.join().unwrap()
    });

    assert!(
        report.window.ops_checked >= threads * ROUNDS,
        "only {} ops audited",
        report.window.ops_checked
    );
    assert!(report.window.windows > 0, "auditor never closed a window");
    dog.disarm();
}

/// The negative control demanded of any checker: record a *real* trace,
/// corrupt it (swap the values two pops returned), and require the
/// auditor to reject it. A checker that passes everything would sail
/// through the whole matrix above — this proves it has teeth.
#[test]
fn corrupted_recorded_trace_is_rejected() {
    use dcas_deques::linearize::DequeRet;

    let test = "corrupted_recorded_trace_is_rejected";
    let seed = trace_seed(test);
    let dog = Watchdog::arm_with_seed_var(test, "TRACE_SEED", seed, Duration::from_secs(120));

    // Two threads, FIFO discipline (pushRight / popLeft) so element
    // order is fully constrained — any value swap is a violation.
    let threads = 2usize;
    let deque = Recorded::with_atomic_batches(ArrayDeque::<u64>::new(64), threads, RING_CAPACITY);
    let barrier = Barrier::new(threads);
    std::thread::scope(|s| {
        // Thread 0 pushes 0..200 rightward; thread 1 pops leftward.
        {
            let deque = &deque;
            let barrier = &barrier;
            s.spawn(move || {
                for v in 0..200u64 {
                    barrier.wait();
                    deque.push_right(v).unwrap();
                }
            });
        }
        {
            let deque = &deque;
            let barrier = &barrier;
            s.spawn(move || {
                for _ in 0..200 {
                    barrier.wait();
                    let _ = deque.pop_left();
                }
            });
        }
    });

    let (ops, _) = completed_history(deque.recorder()).expect("trace must extract");

    // The untampered trace passes.
    let mut clean = WindowedChecker::new(SeqDeque::bounded(64), MAX_WINDOW);
    clean.feed(ops.clone());
    clean.finish().expect("the real trace must linearize");

    // Swap the values of the first two value-returning pops.
    let mut tampered = ops;
    let value_pops: Vec<usize> = tampered
        .iter()
        .enumerate()
        .filter_map(|(i, c)| match c.ret {
            DequeRet::Value(_) => Some(i),
            _ => None,
        })
        .collect();
    assert!(value_pops.len() >= 2, "workload produced too few successful pops");
    let (a, b) = (value_pops[0], value_pops[1]);
    let (ra, rb) = (tampered[a].ret, tampered[b].ret);
    assert_ne!(ra, rb, "swap must change the history");
    tampered[a].ret = rb;
    tampered[b].ret = ra;

    let mut checker = WindowedChecker::new(SeqDeque::bounded(64), MAX_WINDOW);
    checker.feed(tampered);
    checker
        .finish()
        .expect_err("value-swapped trace must be rejected");
    dog.disarm();
}
