//! Linearizability stress for the Chase–Lev deque under its real access
//! discipline: one owner on the bottom end, racing thieves on the top.
//!
//! The [`stress_owner_steal`] driver records the owner's pushes/pops as
//! `PushRight`/`PopRight` and the thieves' steals as `PopLeft`, then
//! checks every round's complete history against the sequential deque
//! spec. This is the whole-structure complement to the modelcheck
//! machine (`machines::chaselev`), which explores the same races
//! exhaustively but only on tiny scripts: here the real implementation
//! — fences, CAS loops, buffer growth and stale-buffer reads included —
//! runs thousands of operations under genuine contention.
//!
//! The deque starts at its minimum capacity floor, so rounds with
//! push-heavy mixes force growth while steals are in flight.

use std::time::Duration;

use dcas_deques::harness::{trace_seed, Watchdog};
use dcas_deques::linearize::{stress_owner_steal, OwnerStealDeque, StressConfig};
use dcas_deques::workstealing::{ChaseLev, ChaseLevSteal};

/// [`OwnerStealDeque`] adapter: retries aborted steals, as a scheduler
/// (and the tiered deque's `steal`) would.
struct Cl(ChaseLev<u64>);

impl OwnerStealDeque for Cl {
    fn push_bottom(&self, v: u64) {
        self.0.push(v);
    }
    fn pop_bottom(&self) -> Option<u64> {
        self.0.pop()
    }
    fn steal_top(&self) -> Option<u64> {
        loop {
            match self.0.steal() {
                ChaseLevSteal::Stolen(v) => return Some(v),
                ChaseLevSteal::Empty => return None,
                ChaseLevSteal::Retry => std::hint::spin_loop(),
            }
        }
    }
    fn impl_name(&self) -> &'static str {
        "chase-lev"
    }
}

fn run(test: &str, threads: usize, push_bias: u32, rounds: usize) {
    let seed = trace_seed(test);
    let dog = Watchdog::arm_with_seed_var(test, "TRACE_SEED", seed, Duration::from_secs(120));
    // Capacity floor 2: growth happens within the first few pushes of
    // every push-heavy round.
    let deque = Cl(ChaseLev::with_min_capacity(2));
    let report = stress_owner_steal(
        &deque,
        StressConfig {
            threads,
            ops_per_thread: 8,
            rounds,
            push_bias,
            seed,
            ..StressConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("{test}: {e}"));
    assert_eq!(report.rounds, rounds);
    dog.disarm();
}

#[test]
fn owner_and_one_thief() {
    run("chaselev_spec::owner_and_one_thief", 2, 60, 150);
}

#[test]
fn owner_and_three_thieves() {
    run("chaselev_spec::owner_and_three_thieves", 4, 60, 150);
}

#[test]
fn steal_heavy_mix() {
    // Pop-biased owner: the deque hovers near empty, maximizing
    // last-element races between `pop` and `steal`.
    run("chaselev_spec::steal_heavy_mix", 4, 40, 150);
}

#[test]
fn push_flood_forces_growth_under_steals() {
    // Push-heavy: each round grows the buffer several times while
    // thieves are mid-steal, exercising stale-buffer reads.
    run("chaselev_spec::push_flood_forces_growth_under_steals", 3, 85, 150);
}
