//! Keeps the README quickstart honest: this test mirrors the snippet in
//! `README.md` — if the public API drifts, this fails before the docs lie.

use dcas_deques::prelude::*;

#[test]
fn readme_quickstart_compiles_and_runs() {
    // Bounded array deque (Section 3), capacity fixed up front.
    let d: ArrayDeque<String> = ArrayDeque::new(8);
    d.push_right("b".into()).unwrap();
    d.push_left("a".into()).unwrap();
    assert_eq!(d.pop_right().as_deref(), Some("b"));

    // Unbounded linked-list deque (Section 4).
    let d: ListDeque<i64> = ListDeque::new();
    d.push_left(1).unwrap();
    assert_eq!(d.pop_right(), Some(1));
    assert_eq!(d.pop_right(), None); // "empty"

    // Pick the DCAS emulation per deque.
    let d: ListDeque<i64, GlobalSeqLock> = ListDeque::new();
    drop(d);

    // Batched operations: up to MAX_BATCH elements per transition, a
    // full deque accepts a prefix and hands back the rejected tail.
    assert_eq!(MAX_BATCH, 8);
    let d: ArrayDeque<u64> = ArrayDeque::new(8);
    d.push_right_n(vec![1, 2, 3, 4]).unwrap();
    assert_eq!(d.pop_left_n(3), vec![1, 2, 3]);

    // Elimination backoff is off by default and enabled per deque.
    let d: ListDeque<u64> = ListDeque::with_end_config(EndConfig::eliminating());
    d.push_right(7).unwrap();
    assert_eq!(d.pop_right(), Some(7));

    // The worked example from the paper's Section 2.2, via the trait.
    let d: DummyListDeque<u32> = DummyListDeque::new();
    ConcurrentDeque::push_right(&d, 1).unwrap();
    ConcurrentDeque::push_left(&d, 2).unwrap();
    ConcurrentDeque::push_right(&d, 3).unwrap();
    assert_eq!(ConcurrentDeque::pop_left(&d), Some(2));
    assert_eq!(ConcurrentDeque::pop_left(&d), Some(1));
    assert_eq!(ConcurrentDeque::pop_left(&d), Some(3));

    // Full reports return the rejected value.
    let d: ArrayDeque<&'static str> = ArrayDeque::new(1);
    d.push_right("kept").unwrap();
    let Full(v) = d.push_left("bounced").unwrap_err();
    assert_eq!(v, "bounced");
}
