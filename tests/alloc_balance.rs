//! Drop-count balance for the page-pool node allocator: every node a
//! pooled deque allocates must come back to the pool by the time the
//! deque is dropped and the reclaimers have flushed.
//!
//! One `#[test]` covers all four linked families because the pool
//! gauges (`nodes_outstanding`, `pages_allocated`) are process-global:
//! interleaved tests would see each other's churn. Each family runs the
//! same scenario **twice** — the first round may grow the pool (pages
//! are immortal), the second must be served entirely from recycled
//! slots, which is the allocation-free steady-state claim of the
//! allocator at test granularity.

use std::time::Duration;

use dcas::{EpochReclaimer, HazardReclaimer, Reclaimer};
use dcas_deques::deque::{
    list, list_dummy, list_lfrc, sundell, ConcurrentDeque, DummyListDeque, LfrcListDeque,
    ListDeque, SundellDeque,
};
use dcas_deques::harness::{torture_seed, Watchdog};

/// Elements pushed per round (half are popped before the drop, so the
/// deque's own Drop impl frees the other half).
const ELEMS: u64 = 4_000;

/// Pushes [`ELEMS`], pops half, and drops the deque with the rest still
/// linked, returning nothing: the caller checks the gauges.
fn churn_and_drop<D: ConcurrentDeque<u64>>(deque: D) {
    for i in 0..ELEMS {
        deque.push_right(i << 3).unwrap();
    }
    for _ in 0..ELEMS / 2 {
        assert!(deque.pop_left().is_some());
    }
    drop(deque);
    for _ in 0..6 {
        EpochReclaimer::flush();
        HazardReclaimer::flush();
    }
}

/// Runs `make`'s deque through [`churn_and_drop`] twice, asserting the
/// alloc/free balance after each round and zero page growth in the
/// second (recycled-slot) round.
fn balance<D: ConcurrentDeque<u64>, F: Fn() -> D>(family: &str, make: F) {
    let outstanding_before = dcas::alloc::nodes_outstanding();
    churn_and_drop(make());
    assert_eq!(
        dcas::alloc::nodes_outstanding(),
        outstanding_before,
        "{family}: nodes outstanding after first churn+drop round"
    );
    let pages_before = dcas::alloc::pages_allocated();
    churn_and_drop(make());
    assert_eq!(
        dcas::alloc::nodes_outstanding(),
        outstanding_before,
        "{family}: nodes outstanding after second churn+drop round"
    );
    assert_eq!(
        dcas::alloc::pages_allocated(),
        pages_before,
        "{family}: second round allocated fresh pages instead of \
         recycling the first round's slots"
    );
}

#[test]
fn pooled_deques_balance_allocs_and_recycle_pages() {
    let test = "pooled_deques_balance_allocs_and_recycle_pages";
    let watchdog = Watchdog::arm(test, torture_seed(test), Duration::from_secs(120));

    balance("list-dcas", || {
        ListDeque::<u64>::with_node_alloc(list::node_alloc(true))
    });
    balance("list-dummy", || {
        DummyListDeque::<u64>::with_node_alloc(list_dummy::node_alloc(true))
    });
    balance("list-lfrc", || {
        LfrcListDeque::<u64>::with_node_alloc(list_lfrc::node_alloc(true))
    });
    balance("sundell-cas", || {
        SundellDeque::<u64>::with_node_alloc(sundell::node_alloc(true))
    });

    watchdog.disarm();
}
