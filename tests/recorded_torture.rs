//! Recording and fault injection compose: a victim thread is panic-killed
//! mid-operation while every operation is being traced, and the
//! surviving trace still linearizes.
//!
//! This is the observability counterpart of `tests/torture.rs`. The
//! victim hammers a recorded array deque under a seeded [`FaultPlan`]
//! until a panic kill unwinds it out of an operation; the kill is
//! effect-free (the unwind guards release any in-flight value before it
//! reaches the deque), so the victim's pending trace record — invoked,
//! never responded — is soundly excluded from the audited history as
//! crashed. The survivors then run a pulsed quota of recorded
//! operations, and the post-hoc audit must pass on what remains.

#![cfg(feature = "obs")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use dcas::{fault, FaultInjecting, FaultPlan, FaultPoint, HarrisMcas, KillKind};
use dcas_deques::deque::{ArrayDeque, ConcurrentDeque};
use dcas_deques::harness::{trace_seed, Watchdog};
use dcas_deques::linearize::SeqDeque;
use dcas_deques::obs::{audit, Recorded};

type Fis = FaultInjecting<HarrisMcas>;

const CAPACITY: usize = 8;
const SURVIVORS: usize = 3;
/// Pulsed post-kill rounds per survivor; each round is a handful of
/// recorded ops, so every audit window stays small.
const ROUNDS: usize = 30;
const OPS_PER_ROUND: usize = 5;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn one_op<D: ConcurrentDeque<u64>>(deque: &D, rng: &mut u64, next: &mut u64) {
    match splitmix64(rng) % 4 {
        0 => {
            let _ = deque.push_right(*next);
            *next += 1;
        }
        1 => {
            let _ = deque.push_left(*next);
            *next += 1;
        }
        2 => {
            let _ = deque.pop_right();
        }
        _ => {
            let _ = deque.pop_left();
        }
    }
}

#[test]
fn recorded_trace_survives_a_panic_kill() {
    let test = "recorded_trace_survives_a_panic_kill";
    let seed = trace_seed(test);
    let dog = Watchdog::arm_with_seed_var(test, "TRACE_SEED", seed, Duration::from_secs(120));

    let deque = Recorded::with_atomic_batches(
        ArrayDeque::<u64, Fis>::new(CAPACITY),
        1 + SURVIVORS,
        4096,
    );
    dog.attach_recorder(deque.recorder(), 6);

    // The victim runs *alone* until its kill lands (every gap between
    // its sequential ops is a quiescent cut); only then do the pulsed
    // survivors start, so the audit windows stay bounded throughout.
    let killed = AtomicBool::new(false);
    let barrier = Barrier::new(SURVIVORS);
    std::thread::scope(|s| {
        // Victim: armed with spurious CASN failures and a panic kill.
        {
            let deque = &deque;
            let killed = &killed;
            s.spawn(move || {
                let plan = FaultPlan::new(seed)
                    .spurious(40)
                    .kill(FaultPoint::PreInstall, 3, KillKind::Panic);
                let guard = fault::arm(&plan, 0);
                let log = guard.log();
                let mut rng = seed ^ 0xD1CE;
                let mut next = 0u64;
                while !log.is_killed() {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        one_op(&*deque, &mut rng, &mut next)
                    }));
                    if r.is_err() {
                        break;
                    }
                }
                assert!(log.is_panicked(), "victim finished without a panic kill");
                killed.store(true, Ordering::Release);
            });
        }

        // Survivors: wait out the kill, then a pulsed recorded quota.
        for tid in 1..=SURVIVORS as u64 {
            let deque = &deque;
            let killed = &killed;
            let barrier = &barrier;
            s.spawn(move || {
                while !killed.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                let mut rng = seed ^ (tid << 8);
                let mut next = tid * 1_000_000;
                for _ in 0..ROUNDS {
                    barrier.wait();
                    for _ in 0..OPS_PER_ROUND {
                        one_op(&*deque, &mut rng, &mut next);
                    }
                }
            });
        }
    });

    let report = audit(deque.recorder(), SeqDeque::bounded(CAPACITY), 48)
        .expect("surviving trace must linearize");
    assert!(
        report.trace.in_flight_excluded <= 1,
        "only the victim's killed op may be pending, got {}",
        report.trace.in_flight_excluded
    );
    assert!(
        report.window.ops_checked >= SURVIVORS * ROUNDS * OPS_PER_ROUND,
        "survivors' ops missing from the audit: {}",
        report.window.ops_checked
    );
    dog.disarm();
}
