//! Sequential cross-implementation agreement: every deque in the
//! workspace, driven through the same randomized operation sequences,
//! must return exactly the same results (with capacity-aware expectations
//! for the bounded ones). This pins all eight implementations to one
//! another and to `VecDeque`, complementing the per-implementation
//! property tests.

use std::collections::VecDeque;

use dcas::{GlobalSeqLock, HarrisMcas};
use dcas_deques::baselines::{GreenwaldDeque, MutexDeque, SpinDeque};
use dcas_deques::deque::{ArrayDeque, DummyListDeque, LfrcListDeque, ListDeque, SundellDeque};
use dcas_deques::prelude::ConcurrentDeque;

const CAP: usize = 8;

fn bounded_impls() -> Vec<Box<dyn ConcurrentDeque<u64>>> {
    vec![
        Box::new(ArrayDeque::<u64, HarrisMcas>::new(CAP)),
        Box::new(ArrayDeque::<u64, GlobalSeqLock>::new(CAP)),
        Box::new(GreenwaldDeque::<u64, HarrisMcas>::new(CAP)),
        Box::new(MutexDeque::<u64>::bounded(CAP)),
    ]
}

fn unbounded_impls() -> Vec<Box<dyn ConcurrentDeque<u64>>> {
    vec![
        Box::new(ListDeque::<u64, HarrisMcas>::new()),
        Box::new(ListDeque::<u64, GlobalSeqLock>::new()),
        Box::new(DummyListDeque::<u64, HarrisMcas>::new()),
        Box::new(LfrcListDeque::<u64, HarrisMcas>::new()),
        Box::new(SundellDeque::<u64, HarrisMcas>::new()),
        Box::new(SundellDeque::<u64, dcas::HarrisMcasHazard>::new()),
        Box::new(MutexDeque::<u64>::new()),
        Box::new(SpinDeque::<u64>::new()),
    ]
}

#[inline]
fn split_mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Drives `deques` and a `VecDeque` model through one random sequence.
fn drive(deques: Vec<Box<dyn ConcurrentDeque<u64>>>, cap: Option<usize>, seed: u64, ops: u32) {
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut rng = seed;
    for i in 0..ops {
        let r = split_mix(&mut rng);
        let v = i as u64;
        match r % 4 {
            0 => {
                let expect_ok = cap.is_none_or(|c| model.len() < c);
                if expect_ok {
                    model.push_back(v);
                }
                for d in &deques {
                    let got = d.push_right(v).is_ok();
                    assert_eq!(got, expect_ok, "{} pushRight({v}) @op{i}", d.impl_name());
                }
            }
            1 => {
                let expect_ok = cap.is_none_or(|c| model.len() < c);
                if expect_ok {
                    model.push_front(v);
                }
                for d in &deques {
                    let got = d.push_left(v).is_ok();
                    assert_eq!(got, expect_ok, "{} pushLeft({v}) @op{i}", d.impl_name());
                }
            }
            2 => {
                let expect = model.pop_back();
                for d in &deques {
                    assert_eq!(d.pop_right(), expect, "{} popRight @op{i}", d.impl_name());
                }
            }
            _ => {
                let expect = model.pop_front();
                for d in &deques {
                    assert_eq!(d.pop_left(), expect, "{} popLeft @op{i}", d.impl_name());
                }
            }
        }
    }
    // Drain everything and compare the final contents.
    loop {
        let expect = model.pop_front();
        for d in &deques {
            assert_eq!(d.pop_left(), expect, "{} final drain", d.impl_name());
        }
        if expect.is_none() {
            break;
        }
    }
}

#[test]
fn bounded_implementations_agree() {
    for seed in [1u64, 42, 0xDEC, 0xFEED, 31_337] {
        drive(bounded_impls(), Some(CAP), seed, 600);
    }
}

#[test]
fn unbounded_implementations_agree() {
    for seed in [2u64, 43, 0xDED, 0xBEEF, 31_338] {
        drive(unbounded_impls(), None, seed, 600);
    }
}

#[test]
fn push_heavy_fills_bounded_to_capacity() {
    // A push-only prefix drives every bounded impl to Full at the same
    // instant.
    let deques = bounded_impls();
    for i in 0..(CAP as u64) {
        for d in &deques {
            d.push_right(i).unwrap();
        }
    }
    for d in &deques {
        assert!(d.push_right(99).is_err(), "{} should be full", d.impl_name());
        assert!(d.push_left(99).is_err(), "{} should be full", d.impl_name());
    }
    for i in 0..(CAP as u64) {
        for d in &deques {
            assert_eq!(d.pop_left(), Some(i), "{}", d.impl_name());
        }
    }
}
