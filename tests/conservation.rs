//! Large-scale conservation stress: every value pushed is popped exactly
//! once, across all deque implementations, strategies, and thread mixes.
//!
//! Complements the linearizability tests (which keep histories short so
//! the checker stays fast) with much longer runs checking a weaker —
//! but still sharp — global property.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dcas::{GlobalSeqLock, HarrisMcas, StripedLock};
use dcas_deques::baselines::GreenwaldDeque;
use dcas_deques::deque::{ArrayDeque, ConcurrentDeque, DummyListDeque, LfrcListDeque, ListDeque};
use dcas_deques::harness::Watchdog;

/// Arms the shared progress watchdog for one conservation run: if the
/// run wedges (livelock, lost wakeup), the watchdog dumps the per-side
/// progress counters and aborts instead of hanging the test runner.
fn arm_watchdog(
    deque_name: &'static str,
    push_count: &Arc<AtomicU64>,
    pop_count: &Arc<AtomicU64>,
) -> Watchdog {
    let dog = Watchdog::arm(deque_name, 0, Duration::from_secs(180));
    let pushes = Arc::clone(push_count);
    let pops = Arc::clone(pop_count);
    dog.diagnostic("pushes completed", move || {
        pushes.load(Ordering::Relaxed).to_string()
    });
    dog.diagnostic("pops completed", move || {
        pops.load(Ordering::Relaxed).to_string()
    });
    dog
}

/// Pushers feed unique values from both ends while poppers drain both
/// ends; afterwards, the union of popped and remaining values must be
/// exactly the set of successfully pushed values.
fn conservation<D: ConcurrentDeque<u64>>(deque: D, pushers: usize, poppers: usize, per: u64) {
    let deque = Arc::new(deque);
    let done = Arc::new(AtomicBool::new(false));
    let popped: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let pushed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let push_count = Arc::new(AtomicU64::new(0));
    let pop_count = Arc::new(AtomicU64::new(0));
    let watchdog = arm_watchdog(deque.impl_name(), &push_count, &pop_count);

    std::thread::scope(|s| {
        let mut push_handles = Vec::new();
        for p in 0..pushers {
            let deque = Arc::clone(&deque);
            let pushed = Arc::clone(&pushed);
            let push_count = Arc::clone(&push_count);
            push_handles.push(s.spawn(move || {
                let mut mine = Vec::new();
                for i in 0..per {
                    let v = p as u64 * per + i;
                    let res = if v.is_multiple_of(2) { deque.push_right(v) } else { deque.push_left(v) };
                    if res.is_ok() {
                        mine.push(v);
                        push_count.fetch_add(1, Ordering::Relaxed);
                    }
                }
                pushed.lock().unwrap().extend(mine);
            }));
        }
        for _ in 0..poppers {
            let deque = Arc::clone(&deque);
            let done = Arc::clone(&done);
            let popped = Arc::clone(&popped);
            let pop_count = Arc::clone(&pop_count);
            s.spawn(move || {
                let mut mine = Vec::new();
                let mut spin = 0u32;
                loop {
                    let v = if spin.is_multiple_of(2) { deque.pop_left() } else { deque.pop_right() };
                    match v {
                        Some(v) => {
                            mine.push(v);
                            pop_count.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if done.load(Ordering::Acquire) {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                    spin = spin.wrapping_add(1);
                }
                popped.lock().unwrap().extend(mine);
            });
        }
        for h in push_handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
    });

    // Drain the residue.
    let mut remaining = Vec::new();
    while let Some(v) = deque.pop_left() {
        remaining.push(v);
    }

    let pushed = pushed.lock().unwrap();
    let popped = popped.lock().unwrap();
    let mut seen: HashSet<u64> = HashSet::with_capacity(pushed.len());
    for &v in popped.iter().chain(remaining.iter()) {
        assert!(seen.insert(v), "{}: value {v} popped twice", deque.impl_name());
    }
    let expect: HashSet<u64> = pushed.iter().copied().collect();
    assert_eq!(
        seen.len(),
        expect.len(),
        "{}: {} values in, {} out",
        deque.impl_name(),
        expect.len(),
        seen.len()
    );
    assert_eq!(seen, expect, "{}: value sets differ", deque.impl_name());
    watchdog.disarm();
}

const PER: u64 = 8_000;

#[test]
fn list_deque_mcas() {
    conservation(ListDeque::<u64, HarrisMcas>::new(), 3, 3, PER);
}

#[test]
fn list_deque_seqlock() {
    conservation(ListDeque::<u64, GlobalSeqLock>::new(), 3, 3, PER);
}

#[test]
fn list_deque_striped() {
    conservation(ListDeque::<u64, StripedLock>::new(), 3, 3, PER);
}

#[test]
fn dummy_list_deque_mcas() {
    conservation(DummyListDeque::<u64, HarrisMcas>::new(), 3, 3, PER);
}

#[test]
fn lfrc_list_deque_mcas() {
    conservation(LfrcListDeque::<u64, HarrisMcas>::new(), 3, 3, PER);
}

#[test]
fn lfrc_list_deque_seqlock() {
    conservation(LfrcListDeque::<u64, GlobalSeqLock>::new(), 3, 3, PER);
}

#[test]
fn array_deque_mcas_large() {
    conservation(ArrayDeque::<u64, HarrisMcas>::new(1 << 16), 3, 3, PER);
}

#[test]
fn array_deque_seqlock_small_capacity() {
    // Tiny capacity: most pushes bounce off "full", so the conservation
    // argument also covers rejected pushes.
    conservation(ArrayDeque::<u64, GlobalSeqLock>::new(8), 3, 3, PER);
}

#[test]
fn greenwald_deque_mcas() {
    conservation(GreenwaldDeque::<u64, HarrisMcas>::new(1 << 12), 2, 2, PER / 2);
}

#[test]
fn single_pusher_single_popper_fifo_like() {
    conservation(ListDeque::<u64, HarrisMcas>::new(), 1, 1, PER * 2);
}

#[test]
fn many_threads_small_array() {
    conservation(ArrayDeque::<u64, HarrisMcas>::new(4), 4, 4, PER / 2);
}

// --- Batched operations (PR 2): same conservation property, but moving
// values through the chunk-CASN batch paths with varying batch widths,
// including partially-accepted pushes on the bounded deque.

/// Like [`conservation`], but pushers submit `push_{left,right}_n`
/// batches of cycling widths and poppers drain with `pop_{left,right}_n`.
/// Rejected tails (bounded deques) are subtracted from the pushed set via
/// the prefix-acceptance contract: `Err(tail)` means exactly
/// `batch.len() - tail.len()` leading values went in.
fn conservation_batched<D: ConcurrentDeque<u64>>(deque: D, pushers: usize, poppers: usize, per: u64) {
    let deque = Arc::new(deque);
    let done = Arc::new(AtomicBool::new(false));
    let popped: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let pushed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let push_count = Arc::new(AtomicU64::new(0));
    let pop_count = Arc::new(AtomicU64::new(0));
    let watchdog = arm_watchdog(deque.impl_name(), &push_count, &pop_count);

    std::thread::scope(|s| {
        let mut push_handles = Vec::new();
        for p in 0..pushers {
            let deque = Arc::clone(&deque);
            let pushed = Arc::clone(&pushed);
            let push_count = Arc::clone(&push_count);
            push_handles.push(s.spawn(move || {
                let mut mine: Vec<u64> = Vec::new();
                let mut i = 0u64;
                let mut width = 1usize;
                while i < per {
                    let k = width.min((per - i) as usize);
                    let batch: Vec<u64> = (0..k as u64).map(|j| p as u64 * per + i + j).collect();
                    let res = if width.is_multiple_of(2) {
                        deque.push_right_n(batch.clone())
                    } else {
                        deque.push_left_n(batch.clone())
                    };
                    let accepted = match res {
                        Ok(()) => k,
                        Err(tail) => k - tail.into_inner().len(),
                    };
                    mine.extend(&batch[..accepted]);
                    push_count.fetch_add(accepted as u64, Ordering::Relaxed);
                    i += k as u64;
                    width = width % 9 + 1; // cycle 1..=9: straddles MAX_BATCH
                }
                pushed.lock().unwrap().extend(mine);
            }));
        }
        for _ in 0..poppers {
            let deque = Arc::clone(&deque);
            let done = Arc::clone(&done);
            let popped = Arc::clone(&popped);
            let pop_count = Arc::clone(&pop_count);
            s.spawn(move || {
                let mut mine: Vec<u64> = Vec::new();
                let mut spin = 0u32;
                loop {
                    let k = (spin % 9 + 1) as usize;
                    let got = if spin.is_multiple_of(2) {
                        deque.pop_left_n(k)
                    } else {
                        deque.pop_right_n(k)
                    };
                    if got.is_empty() {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::hint::spin_loop();
                    } else {
                        pop_count.fetch_add(got.len() as u64, Ordering::Relaxed);
                        mine.extend(got);
                    }
                    spin = spin.wrapping_add(1);
                }
                popped.lock().unwrap().extend(mine);
            });
        }
        for h in push_handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
    });

    let mut remaining = Vec::new();
    loop {
        let l = deque.pop_left_n(3);
        let r = deque.pop_right_n(3);
        if l.is_empty() && r.is_empty() {
            break;
        }
        remaining.extend(l);
        remaining.extend(r);
    }

    let pushed = pushed.lock().unwrap();
    let popped = popped.lock().unwrap();
    let mut seen: HashSet<u64> = HashSet::with_capacity(pushed.len());
    for &v in popped.iter().chain(remaining.iter()) {
        assert!(seen.insert(v), "{}: value {v} popped twice", deque.impl_name());
    }
    let expect: HashSet<u64> = pushed.iter().copied().collect();
    assert_eq!(seen, expect, "{}: value sets differ", deque.impl_name());
    watchdog.disarm();
}

#[test]
fn batched_list_deque_mcas() {
    conservation_batched(ListDeque::<u64, HarrisMcas>::new(), 3, 3, PER);
}

#[test]
fn batched_list_deque_seqlock() {
    conservation_batched(ListDeque::<u64, GlobalSeqLock>::new(), 3, 3, PER);
}

#[test]
fn batched_array_deque_mcas_large() {
    conservation_batched(ArrayDeque::<u64, HarrisMcas>::new(1 << 16), 3, 3, PER);
}

#[test]
fn batched_array_deque_mcas_small_capacity() {
    // Capacity below the widest batch: chunking clamps to the capacity
    // and pushes are routinely part-accepted.
    conservation_batched(ArrayDeque::<u64, HarrisMcas>::new(6), 3, 3, PER / 2);
}

#[test]
fn batched_pushers_only_then_drain() {
    // No concurrent poppers: everything lands in the deque and the final
    // batched two-end drain must recover the exact pushed set.
    conservation_batched(ListDeque::<u64, HarrisMcas>::new(), 3, 0, PER);
}

// --- Elimination backoff (PR 2): with the per-end elimination arrays on,
// values may bypass the deque entirely (handed pusher-to-popper), so
// conservation is exactly the property at risk. List deque only: the
// bounded array deque has no elimination knob (an eliminated push cannot
// prove the deque non-full at the exchange instant).

fn eliminating() -> dcas_deques::deque::EndConfig {
    dcas_deques::deque::EndConfig {
        elimination: true,
        elim_slots: 2,
        offer_spins: 64,
    }
}

#[test]
fn eliminating_list_deque_conserves() {
    conservation(ListDeque::<u64, HarrisMcas>::with_end_config(eliminating()), 3, 3, PER);
}

#[test]
fn eliminating_list_deque_conserves_batched() {
    conservation_batched(ListDeque::<u64, HarrisMcas>::with_end_config(eliminating()), 3, 3, PER);
}
