//! Crash/stall torture: the paper's non-blocking progress claim, tested
//! by actually killing threads mid-operation.
//!
//! Each run hammers one deque (array, list, or dummy-list over
//! [`FaultInjecting<HarrisMcas>`]) from four threads. Thread 0 is the
//! **victim**: armed with a seeded [`FaultPlan`] of spurious CASN
//! failures, bounded stalls, and exactly one *kill* — a permanent freeze
//! (parked on a [`StallGate`], like a descheduled processor) or a panic
//! (an unwinding "killed" thread) — delivered at a chosen injection
//! point inside the Harris MCAS protocol. The three **survivors** then
//! must each complete a full op quota *after* the kill lands: that is
//! lock-freedom, observed rather than assumed.
//!
//! Every run also audits conservation three ways:
//!
//! 1. **Value exactness** — the union of popped and drained values
//!    equals the set of successfully pushed values, no duplicates.
//! 2. **Leak freedom** — values are drop-counted ([`Counted`]); the
//!    live count returns to zero once the deque is dropped, even when
//!    the victim unwound out of a half-built batch (the push-path
//!    unwind guards) or left an orphaned descriptor behind.
//! 3. **Quarantine** — a panic kill at `PreInstall` must move the
//!    victim's in-flight pooled descriptor into the permanent
//!    quarantine ([`dcas::orphan_count`] grows) instead of recycling
//!    memory that helpers may still probe.
//!
//! All randomness flows from one seed printed at the start of every
//! test (override with `TORTURE_SEED=<n> cargo test --test torture`),
//! and every run is guarded by the shared [`Watchdog`]: a wedged run
//! aborts with the victim's fault log, pool counters, and per-thread
//! progress, plus the replay command.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dcas::fault::{self, FaultLog, FAULT_POINTS};
use dcas::{FaultInjecting, FaultPlan, FaultPoint, HarrisMcas, KillKind, StallGate};
use dcas_deques::deque::{
    ArrayDeque, ConcurrentDeque, DummyListDeque, EndConfig, ListDeque, SundellDeque,
};
use dcas_deques::harness::{torture_seed, Watchdog};

type Fis = FaultInjecting<HarrisMcas>;

/// Drop-counted value: `live` tracks every `Counted` in existence, so a
/// leak (or double-free) anywhere — deque internals, elimination slots,
/// unwound batches, quarantined descriptors — shows up as a nonzero
/// count after teardown.
struct Counted {
    v: u64,
    live: Arc<AtomicI64>,
}

impl Counted {
    fn new(v: u64, live: &Arc<AtomicI64>) -> Counted {
        live.fetch_add(1, Ordering::Relaxed);
        Counted { v, live: Arc::clone(live) }
    }
}

impl Drop for Counted {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One worker's op loop: random single and batched pushes/pops, with
/// every accepted value's id recorded in `pushed` and every obtained
/// value's id in `popped`.
///
/// `atomic_batches` gates the batched ops: they are only exact under a
/// mid-operation kill when the deque overrides them with chunk-atomic
/// CASN batches (array and list deques). The dummy-variant inherits the
/// per-element default loops, where an unwinding kill legitimately
/// leaves a committed *prefix* the caller cannot observe — sound (no
/// leak, no corruption; the leak audit still covers it) but not
/// attributable, so the exact-conservation matrix sticks to single ops
/// there.
#[allow(clippy::too_many_arguments)]
fn one_op<D: ConcurrentDeque<Counted>>(
    deque: &D,
    rng: &mut u64,
    tid: u64,
    counter: &mut u64,
    live: &Arc<AtomicI64>,
    pushed: &mut Vec<u64>,
    popped: &mut Vec<u64>,
    atomic_batches: bool,
) {
    let fresh = |counter: &mut u64| {
        let v = (tid << 40) | *counter;
        *counter += 1;
        v
    };
    let die = splitmix64(rng) % if atomic_batches { 8 } else { 6 };
    match die {
        0 | 4 => {
            let v = fresh(counter);
            if deque.push_right(Counted::new(v, live)).is_ok() {
                pushed.push(v);
            }
        }
        1 | 5 => {
            let v = fresh(counter);
            if deque.push_left(Counted::new(v, live)).is_ok() {
                pushed.push(v);
            }
        }
        2 => {
            if let Some(c) = deque.pop_right() {
                popped.push(c.v);
            }
        }
        3 => {
            if let Some(c) = deque.pop_left() {
                popped.push(c.v);
            }
        }
        6 => {
            // Batched push: exercises the chunk-CASN path (and its
            // unwind guards, when the victim dies inside it).
            let ids: Vec<u64> = (0..3).map(|_| fresh(counter)).collect();
            let batch: Vec<Counted> = ids.iter().map(|&v| Counted::new(v, live)).collect();
            let accepted = match deque.push_right_n(batch) {
                Ok(()) => ids.len(),
                Err(tail) => ids.len() - tail.into_inner().len(),
            };
            pushed.extend(&ids[..accepted]);
        }
        _ => {
            for c in deque.pop_left_n(2) {
                popped.push(c.v);
            }
        }
    }
}

enum Kill {
    Freeze,
    Panic,
}

/// Per-deque knobs for [`torture_matrix`].
#[derive(Clone, Copy)]
struct MatrixOpts {
    /// Whether batched ops are chunk-atomic CASN overrides (exact under
    /// a mid-op kill) rather than the per-element default loops.
    atomic_batches: bool,
    /// Whether the deque's ops run the MCAS descriptor protocol, so a
    /// `PreInstall` panic must grow the orphan quarantine. The
    /// CAS-only sundell deque never allocates a descriptor — its
    /// `PreInstall` hook fires in its own push loop — so the assertion
    /// does not apply there.
    descriptor_quarantine: bool,
}

impl MatrixOpts {
    const DCAS: MatrixOpts = MatrixOpts { atomic_batches: true, descriptor_quarantine: true };
    const DCAS_SINGLES: MatrixOpts =
        MatrixOpts { atomic_batches: false, descriptor_quarantine: true };
    const CAS_ONLY: MatrixOpts =
        MatrixOpts { atomic_batches: false, descriptor_quarantine: false };
}

/// Ops each survivor must complete *after* the victim's kill lands.
const QUOTA: u64 = 600;

/// The core torture run: 1 armed victim + 3 survivors on one deque.
/// See the module docs for the properties asserted.
fn torture_run<D, F>(
    label: &str,
    make_deque: F,
    point: FaultPoint,
    kill: Kill,
    seed: u64,
    opts: MatrixOpts,
)
where
    D: ConcurrentDeque<Counted> + 'static,
    F: FnOnce() -> D,
{
    let live = Arc::new(AtomicI64::new(0));
    let deque = Arc::new(make_deque());
    let gate = StallGate::new();
    let kind = match kill {
        Kill::Freeze => KillKind::Freeze(Arc::clone(&gate)),
        Kill::Panic => KillKind::Panic,
    };
    let plan = FaultPlan::new(seed)
        .spurious(40)
        .stalls(40, 300)
        .kill(point, 3, kind);
    let orphans_before = dcas::orphan_count();

    let stop = Arc::new(AtomicBool::new(false));
    let pushed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let popped: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let survivor_ops = Arc::new(AtomicU64::new(0));

    let watchdog = Watchdog::arm(label, seed, Duration::from_secs(120));
    {
        let ops = Arc::clone(&survivor_ops);
        watchdog.diagnostic("survivor post-kill ops", move || {
            format!("{} (quota {} x3)", ops.load(Ordering::Relaxed), QUOTA)
        });
        watchdog.diagnostic("descriptor pool", || {
            format!(
                "orphans={} quarantine={}",
                dcas::orphan_count(),
                dcas::quarantine_len()
            )
        });
    }

    let victim_log: Arc<FaultLog> = std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel::<Arc<FaultLog>>();

        // Victim: thread index 0.
        {
            let deque = Arc::clone(&deque);
            let live = Arc::clone(&live);
            let stop = Arc::clone(&stop);
            let pushed = Arc::clone(&pushed);
            let popped = Arc::clone(&popped);
            let plan = plan.clone();
            s.spawn(move || {
                let guard = fault::arm(&plan, 0);
                let log = guard.log();
                tx.send(Arc::clone(&log)).unwrap();
                let mut rng = seed ^ 0xD1CE;
                let mut counter = 0u64;
                let mut my_pushed = Vec::new();
                let mut my_popped = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    // A panic kill unwinds out of the op; the unwind
                    // guards guarantee the in-flight value was released,
                    // so an unwound push is simply "not pushed".
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        one_op(
                            &*deque,
                            &mut rng,
                            0,
                            &mut counter,
                            &live,
                            &mut my_pushed,
                            &mut my_popped,
                            opts.atomic_batches,
                        )
                    }));
                    if r.is_err() {
                        break;
                    }
                }
                pushed.lock().unwrap().extend(my_pushed);
                popped.lock().unwrap().extend(my_popped);
            });
        }
        let log = rx.recv().unwrap();
        {
            let log = Arc::clone(&log);
            watchdog.diagnostic("victim fault log", move || log.describe());
        }

        // Survivors: thread indices 1..=3, armed with stalls and
        // spurious failures but no kill. Each runs until it has
        // completed QUOTA ops *after* observing the victim's death.
        let mut handles = Vec::new();
        for tid in 1u64..=3 {
            let deque = Arc::clone(&deque);
            let live = Arc::clone(&live);
            let pushed = Arc::clone(&pushed);
            let popped = Arc::clone(&popped);
            let log = Arc::clone(&log);
            let ops = Arc::clone(&survivor_ops);
            let plan = FaultPlan::new(seed).spurious(25).stalls(25, 150);
            handles.push(s.spawn(move || {
                let _guard = fault::arm(&plan, tid);
                let mut rng = seed ^ (tid << 8);
                let mut counter = 0u64;
                let mut my_pushed = Vec::new();
                let mut my_popped = Vec::new();
                let mut post_kill = 0u64;
                while post_kill < QUOTA {
                    one_op(
                        &*deque,
                        &mut rng,
                        tid,
                        &mut counter,
                        &live,
                        &mut my_pushed,
                        &mut my_popped,
                        opts.atomic_batches,
                    );
                    if log.is_killed() {
                        post_kill += 1;
                        ops.fetch_add(1, Ordering::Relaxed);
                    }
                }
                pushed.lock().unwrap().extend(my_pushed);
                popped.lock().unwrap().extend(my_popped);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        // Survivors met their quota with the victim dead or frozen:
        // lock-freedom held. Tear down: stop (and, for a freeze,
        // resume) the victim so it can finish its interrupted op and
        // report its records.
        assert!(log.is_killed(), "{label}: victim was never killed");
        stop.store(true, Ordering::Release);
        gate.release();
        log
    });

    match kill {
        Kill::Freeze => assert!(victim_log.is_frozen(), "{label}: wrong kill kind delivered"),
        Kill::Panic => {
            assert!(victim_log.is_panicked(), "{label}: wrong kill kind delivered");
            // A panic at PreInstall always interrupts a private
            // in-flight descriptor; it must be quarantined, never
            // recycled (helpers may still hold tagged pointers to it).
            if opts.descriptor_quarantine && point == FaultPoint::PreInstall {
                assert!(
                    dcas::orphan_count() > orphans_before,
                    "{label}: killed descriptor was not quarantined"
                );
            }
        }
    }

    // Exact conservation: popped ∪ drained == pushed, duplicate-free.
    let mut drained = Vec::new();
    while let Some(c) = deque.pop_left() {
        drained.push(c.v);
    }
    assert!(deque.pop_right().is_none(), "{label}: drain left residue");
    let pushed = pushed.lock().unwrap();
    let popped = popped.lock().unwrap();
    let mut seen: HashSet<u64> = HashSet::with_capacity(pushed.len());
    for &v in popped.iter().chain(drained.iter()) {
        assert!(seen.insert(v), "{label}: value {v:#x} popped twice");
    }
    let expect: HashSet<u64> = pushed.iter().copied().collect();
    assert_eq!(
        seen, expect,
        "{label}: conservation violated ({} in, {} out)",
        expect.len(),
        seen.len()
    );

    // Leak audit: with the deque gone, every Counted ever created must
    // have been dropped — including values the victim abandoned.
    let deque = Arc::try_unwrap(deque).unwrap_or_else(|_| panic!("{label}: deque still shared"));
    drop(deque);
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "{label}: drop-count leak audit failed"
    );
    watchdog.disarm();
}

/// Runs the full 3-point matrix for one deque and kill kind, with a
/// per-run seed derived from the printed base seed.
fn torture_matrix<D, F>(test: &str, make_deque: F, kill: fn() -> Kill, opts: MatrixOpts)
where
    D: ConcurrentDeque<Counted> + 'static,
    F: Fn() -> D,
{
    let base = torture_seed(test);
    for (i, point) in FAULT_POINTS.iter().enumerate() {
        let label = format!("{test}[{}]", point.name());
        let mut seed = base ^ (i as u64) << 32;
        splitmix64(&mut seed);
        torture_run(&label, &make_deque, *point, kill(), seed, opts);
    }
}

// `Arc::try_unwrap` above needs `D`, not `Arc<D>`; the matrix closures
// build fresh deques so each run's leak audit is isolated.

#[test]
fn array_deque_survives_frozen_thread() {
    torture_matrix(
        "array_deque_survives_frozen_thread",
        || ArrayDeque::<Counted, Fis>::new(8),
        || Kill::Freeze,
        MatrixOpts::DCAS,
    );
}

#[test]
fn array_deque_survives_panicked_thread() {
    torture_matrix(
        "array_deque_survives_panicked_thread",
        || ArrayDeque::<Counted, Fis>::new(8),
        || Kill::Panic,
        MatrixOpts::DCAS,
    );
}

#[test]
fn list_deque_survives_frozen_thread() {
    torture_matrix(
        "list_deque_survives_frozen_thread",
        ListDeque::<Counted, Fis>::new,
        || Kill::Freeze,
        MatrixOpts::DCAS,
    );
}

#[test]
fn list_deque_survives_panicked_thread() {
    torture_matrix(
        "list_deque_survives_panicked_thread",
        ListDeque::<Counted, Fis>::new,
        || Kill::Panic,
        MatrixOpts::DCAS,
    );
}

#[test]
fn dummy_list_deque_survives_frozen_thread() {
    torture_matrix(
        "dummy_list_deque_survives_frozen_thread",
        DummyListDeque::<Counted, Fis>::new,
        || Kill::Freeze,
        // Per-element default batch loops: not kill-attributable.
        MatrixOpts::DCAS_SINGLES,
    );
}

#[test]
fn dummy_list_deque_survives_panicked_thread() {
    torture_matrix(
        "dummy_list_deque_survives_panicked_thread",
        DummyListDeque::<Counted, Fis>::new,
        || Kill::Panic,
        MatrixOpts::DCAS_SINGLES,
    );
}

/// No kill: all four threads armed with heavy spurious failures and
/// bounded stalls. Everything must still terminate and conserve — the
/// bounded-adversity baseline of the matrix, run on the eliminating
/// list deque so the exchange path is also under fire.
#[test]
fn eliminating_list_deque_survives_stall_chaos() {
    let test = "eliminating_list_deque_survives_stall_chaos";
    let seed = torture_seed(test);
    let live = Arc::new(AtomicI64::new(0));
    let deque = Arc::new(ListDeque::<Counted, Fis>::with_end_config(EndConfig {
        elimination: true,
        elim_slots: 2,
        offer_spins: 64,
    }));
    let pushed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let popped: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let watchdog = Watchdog::arm(test, seed, Duration::from_secs(120));
    {
        // Weak: the diagnostic must not keep the deque alive past the
        // leak audit's `Arc::try_unwrap`.
        let d = Arc::downgrade(&deque);
        watchdog.diagnostic("elimination", move || match d.upgrade() {
            Some(d) => format!("{:?}", d.elim_stats()),
            None => "deque already dropped".to_string(),
        });
    }

    std::thread::scope(|s| {
        for tid in 0u64..4 {
            let deque = Arc::clone(&deque);
            let live = Arc::clone(&live);
            let pushed = Arc::clone(&pushed);
            let popped = Arc::clone(&popped);
            let plan = FaultPlan::new(seed).spurious(120).stalls(120, 400);
            s.spawn(move || {
                let _guard = fault::arm(&plan, tid);
                let mut rng = seed ^ (tid << 8);
                let mut counter = 0u64;
                let mut my_pushed = Vec::new();
                let mut my_popped = Vec::new();
                for _ in 0..2_000 {
                    one_op(
                        &*deque,
                        &mut rng,
                        tid,
                        &mut counter,
                        &live,
                        &mut my_pushed,
                        &mut my_popped,
                        true,
                    );
                }
                pushed.lock().unwrap().extend(my_pushed);
                popped.lock().unwrap().extend(my_popped);
            });
        }
    });

    let mut drained = Vec::new();
    while let Some(c) = deque.pop_left() {
        drained.push(c.v);
    }
    let pushed = pushed.lock().unwrap();
    let popped = popped.lock().unwrap();
    let mut seen: HashSet<u64> = HashSet::new();
    for &v in popped.iter().chain(drained.iter()) {
        assert!(seen.insert(v), "value {v:#x} popped twice");
    }
    let expect: HashSet<u64> = pushed.iter().copied().collect();
    assert_eq!(seen, expect, "conservation violated under stall chaos");
    drop(drained);
    let deque = Arc::try_unwrap(deque).unwrap_or_else(|_| panic!("deque still shared"));
    drop(deque);
    assert_eq!(live.load(Ordering::SeqCst), 0, "leak under stall chaos");
    watchdog.disarm();
}

/// The motivating application under fire: a work-stealing run where a
/// randomly chosen subset of tasks panic. Each panic kills its worker,
/// but the dead workers' deques stay stealable, so the survivors finish
/// every non-panicking task.
#[test]
fn workstealing_scheduler_survives_dead_workers() {
    use dcas_deques::workstealing::{ListWorkDeque, Scheduler};

    let test = "workstealing_scheduler_survives_dead_workers";
    let base = torture_seed(test);
    let watchdog = Watchdog::arm(test, base, Duration::from_secs(120));

    for round in 0u64..4 {
        let mut seed = base ^ round;
        splitmix64(&mut seed);
        // 3 panicking tasks among 4 workers: at least one worker
        // survives to drain everything.
        let doomed: Vec<u64> = {
            let mut s = seed;
            let mut d = HashSet::new();
            while d.len() < 3 {
                d.insert(splitmix64(&mut s) % 4_000);
            }
            d.into_iter().collect()
        };
        let completed = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<ListWorkDeque> = Scheduler::new(4);
        let c = Arc::clone(&completed);
        let doomed2 = doomed.clone();
        let report = sched.run_report(move |w| {
            for i in 0..4_000u64 {
                let c = Arc::clone(&c);
                let die = doomed2.contains(&i);
                w.spawn(move |_| {
                    if die {
                        panic!("torture task kill");
                    }
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(report.panics, 3, "round {round}: wrong panic count");
        assert_eq!(report.dropped, 0, "round {round}: survivors dropped work");
        assert_eq!(
            completed.load(Ordering::SeqCst),
            4_000 - 3,
            "round {round}: lost tasks"
        );
    }
    watchdog.disarm();
}

// ---------------------------------------------------------------------
// Mid-spill kills: the tiered deque's staged-chunk window
// ---------------------------------------------------------------------

/// Kills the owner of a [`TieredDeque`] *between* the private-tier drain
/// and the shared-level publish — the `SpillStaged` fault point, where a
/// batch of values lives only in the owner's staging buffer. The
/// death-flush (`flush_local`, what the scheduler's `abandon` runs on a
/// poisoned worker) must publish the partial chunk, and conservation
/// must be exact to the element.
fn tiered_mid_spill_run<P>(label: &str, seed: u64, with_thief: bool, skip_spills: u64)
where
    P: dcas_deques::workstealing::PrivateTier<Counted>,
{
    use dcas_deques::workstealing::{TieredDeque, RING_CAP};

    let live = Arc::new(AtomicI64::new(0));
    let deque: Arc<TieredDeque<Counted, ListDeque<Counted>, P>> =
        Arc::new(TieredDeque::with_tier(ListDeque::new()));
    let watchdog = Watchdog::arm(label, seed, Duration::from_secs(120));

    let stop = Arc::new(AtomicBool::new(false));
    let pushed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let stolen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|s| {
        if with_thief {
            let deque = Arc::clone(&deque);
            let stop = Arc::clone(&stop);
            let stolen = Arc::clone(&stolen);
            s.spawn(move || {
                let mut haul = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    for c in deque.steal_half() {
                        haul.push(c.v);
                    }
                    std::hint::spin_loop();
                }
                stolen.lock().unwrap().extend(haul);
            });
        }

        // Owner: armed to die inside a spill's staging window after
        // surviving `skip_spills` earlier spills.
        let deque2 = Arc::clone(&deque);
        let live2 = Arc::clone(&live);
        let pushed2 = Arc::clone(&pushed);
        let stop2 = Arc::clone(&stop);
        s.spawn(move || {
            let plan =
                FaultPlan::new(seed).kill(FaultPoint::SpillStaged, skip_spills, KillKind::Panic);
            let guard = fault::arm(&plan, 0);
            let log = guard.log();
            let mut my_pushed = Vec::new();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                for v in 0..(6 * RING_CAP as u64) {
                    // Recorded *before* the call: `push` inserts into the
                    // private tier before it spills, so a value entering
                    // `push` is conserved even when the spill kills us.
                    my_pushed.push(v);
                    let _ = deque2.push(Counted::new(v, &live2));
                }
            }));
            assert!(outcome.is_err(), "{}: owner was never killed", "mid-spill");
            assert!(log.is_panicked(), "wrong kill kind delivered");
            // Death-flush, exactly as the scheduler's `abandon` would:
            // publishes the staged chunk and the private tier remnant.
            let rejects = deque2.flush_local();
            assert!(rejects.is_empty(), "unbounded shared level rejected values");
            stop2.store(true, Ordering::Release);
            pushed2.lock().unwrap().extend(my_pushed);
        });
    });

    // Everything the owner accepted must now be visible in the shared
    // level (or already in the thief's haul) — exactly once each.
    let mut drained = Vec::new();
    while let Some(c) = deque.shared().pop_left() {
        drained.push(c.v);
    }
    let pushed = pushed.lock().unwrap();
    let stolen = stolen.lock().unwrap();
    let mut seen: HashSet<u64> = HashSet::with_capacity(pushed.len());
    for &v in stolen.iter().chain(drained.iter()) {
        assert!(seen.insert(v), "{label}: value {v} surfaced twice");
    }
    let expect: HashSet<u64> = pushed.iter().copied().collect();
    assert_eq!(
        seen,
        expect,
        "{label}: mid-spill conservation violated ({} in, {} out)",
        expect.len(),
        seen.len()
    );

    let deque = Arc::try_unwrap(deque).unwrap_or_else(|_| panic!("{label}: deque still shared"));
    drop(deque);
    assert_eq!(live.load(Ordering::SeqCst), 0, "{label}: leak after mid-spill kill");
    watchdog.disarm();
}

#[test]
fn tiered_vecring_mid_spill_kill_conserves_values() {
    use dcas_deques::workstealing::VecRing;
    let test = "tiered_vecring_mid_spill_kill_conserves_values";
    let seed = torture_seed(test);
    // Survive two spills, die inside the third: deterministic for a
    // VecRing tier, which spills on every ring overflow.
    tiered_mid_spill_run::<VecRing<Counted>>(test, seed, false, 2);
}

#[test]
fn tiered_chaselev_mid_spill_kill_conserves_values() {
    use dcas_deques::workstealing::ChaseLevTier;
    let test = "tiered_chaselev_mid_spill_kill_conserves_values";
    let seed = torture_seed(test);
    // A live thief steals from both levels while the owner dies
    // mid-spill: the staged chunk is invisible to the thief (owner
    // private), so the flush must still deliver it. Kill on the *first*
    // spill — the stealable tier only restocks an empty shared level,
    // so later spills depend on thief timing, but the first (shared
    // level starts empty) always fires.
    tiered_mid_spill_run::<ChaseLevTier<Counted>>(test, seed, true, 0);
}

/// The same window under the real scheduler: a worker dies *inside* a
/// spill (tasks parked in the staging buffer), and the poisoned-worker
/// death-flush must hand every already-spawned task to the survivors.
#[test]
fn tiered_scheduler_survives_mid_spill_kill() {
    use dcas_deques::workstealing::{Scheduler, TieredListWorkDeque};

    let test = "tiered_scheduler_survives_mid_spill_kill";
    let base = torture_seed(test);
    let watchdog = Watchdog::arm(test, base, Duration::from_secs(120));

    for round in 0u64..3 {
        let mut seed = base ^ round;
        splitmix64(&mut seed);
        let attempted = Arc::new(AtomicU64::new(0));
        let completed = Arc::new(AtomicU64::new(0));
        let sched: Scheduler<TieredListWorkDeque> = Scheduler::new(4);
        let (a, c) = (Arc::clone(&attempted), Arc::clone(&completed));
        let report = sched.run_report(move |w| {
            // Arm on this worker's thread and leak the guard so the plan
            // outlives the root task. With a VecRing tier the 33rd spawn
            // deterministically overflows the ring (thieves cannot touch
            // the private tier before the first spill), so the kill
            // always lands.
            let plan = FaultPlan::new(seed).kill(FaultPoint::SpillStaged, 1, KillKind::Panic);
            std::mem::forget(fault::arm(&plan, 0));
            for _ in 0..4_000u64 {
                // Counted before the spawn: the task enters the private
                // tier before the spill that kills us, so every counted
                // attempt must eventually execute.
                a.fetch_add(1, Ordering::Relaxed);
                let c = Arc::clone(&c);
                w.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            panic!("root must die inside a spill before spawning everything");
        });
        assert_eq!(report.panics, 1, "round {round}: wrong panic count");
        assert_eq!(report.dropped, 0, "round {round}: tasks dropped");
        let a = attempted.load(Ordering::SeqCst);
        let c = completed.load(Ordering::SeqCst);
        assert!(a >= 33, "round {round}: kill fired before the first spill?");
        assert!(a < 4_000, "round {round}: kill never fired");
        assert_eq!(c, a, "round {round}: spawned tasks lost in the staging window");
    }
    watchdog.disarm();
}

// ---------------------------------------------------------------------
// Reclamation-backend matrix: the same kill torture under hazard
// pointers
// ---------------------------------------------------------------------

/// The fault-injecting strategy over the hazard-pointer-reclaimed MCAS.
/// `McasConfig::default()` keeps `hw_pair: true`, so these runs also
/// exercise the 16-byte hardware-pair fast path under the hazard
/// backend.
type FisH = FaultInjecting<dcas::HarrisMcasHazard>;

#[test]
fn list_deque_survives_panicked_thread_hazard_reclaim() {
    // Same panic-kill matrix as the epoch-backed run: the PreInstall
    // quarantine assertion (`dcas::orphan_count` grows) and the
    // drop-count leak audit must hold regardless of which backend
    // retires descriptors and nodes.
    torture_matrix(
        "list_deque_survives_panicked_thread_hazard_reclaim",
        ListDeque::<Counted, FisH>::new,
        || Kill::Panic,
        MatrixOpts::DCAS,
    );
}

#[test]
fn list_deque_survives_frozen_thread_hazard_reclaim() {
    // A frozen victim parks while holding announced hazard slots; the
    // survivors' scans simply skip whatever it protects, so progress
    // and conservation are unaffected (the bounded-garbage claim for
    // this scenario is measured separately in reclaim_torture.rs).
    torture_matrix(
        "list_deque_survives_frozen_thread_hazard_reclaim",
        ListDeque::<Counted, FisH>::new,
        || Kill::Freeze,
        MatrixOpts::DCAS,
    );
}

#[test]
fn dummy_list_deque_survives_panicked_thread_hazard_reclaim() {
    torture_matrix(
        "dummy_list_deque_survives_panicked_thread_hazard_reclaim",
        DummyListDeque::<Counted, FisH>::new,
        || Kill::Panic,
        // Per-element default batch loops: not kill-attributable.
        MatrixOpts::DCAS_SINGLES,
    );
}

// ---------------------------------------------------------------------
// The CAS-only competitor: the Sundell–Tsigas deque under the same kill
// matrix, on both reclamation backends
// ---------------------------------------------------------------------
//
// The sundell deque never enters the MCAS protocol (single-word CAS
// only), so the kill lands at the deque's *own* fault hooks: `PreInstall`
// at the top of each push's retry loop, `MidHelping` inside the pop and
// helping loops, `PreRelease` at op exit. Panic kills fire only at
// effect-free hits — before the publish CAS, before a mark CAS, or after
// all side effects — so exact value conservation must survive them; the
// drop-count audit additionally proves the unwound `Pending` node and
// value were freed. There is no descriptor to quarantine
// (`MatrixOpts::CAS_ONLY`).

#[test]
fn sundell_deque_survives_frozen_thread() {
    torture_matrix(
        "sundell_deque_survives_frozen_thread",
        SundellDeque::<Counted, Fis>::new,
        || Kill::Freeze,
        MatrixOpts::CAS_ONLY,
    );
}

#[test]
fn sundell_deque_survives_panicked_thread() {
    torture_matrix(
        "sundell_deque_survives_panicked_thread",
        SundellDeque::<Counted, Fis>::new,
        || Kill::Panic,
        MatrixOpts::CAS_ONLY,
    );
}

#[test]
fn sundell_deque_survives_frozen_thread_hazard_reclaim() {
    // Freezing mid-traversal parks the victim with hazard slots
    // announced and possibly a link-count reservation held; survivors'
    // scans skip those nodes and every other node keeps being reclaimed
    // (the garbage bound for this scenario is measured in
    // reclaim_torture.rs).
    torture_matrix(
        "sundell_deque_survives_frozen_thread_hazard_reclaim",
        SundellDeque::<Counted, FisH>::new,
        || Kill::Freeze,
        MatrixOpts::CAS_ONLY,
    );
}

#[test]
fn sundell_deque_survives_panicked_thread_hazard_reclaim() {
    torture_matrix(
        "sundell_deque_survives_panicked_thread_hazard_reclaim",
        SundellDeque::<Counted, FisH>::new,
        || Kill::Panic,
        MatrixOpts::CAS_ONLY,
    );
}
