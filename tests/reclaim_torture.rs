//! Bounded-garbage audit under a frozen thread: the observable
//! difference between the two reclamation backends.
//!
//! Both arms run the same scenario: a victim thread is frozen
//! mid-operation (parked on a [`StallGate`] at the `PreInstall` fault
//! point, like a descheduled processor) while worker threads churn a
//! linked-list deque, retiring one node per pop plus the descriptors
//! behind every CASN.
//!
//! * **Epoch arm** — the victim froze while *pinned*, so the global
//!   epoch can never advance past it. Every retire after the freeze
//!   stays deferred: live garbage grows linearly with the op count
//!   (sampled at two checkpoints), and the shim's
//!   `stalled_collections` diagnostic counter rises as collections
//!   keep failing against a full queue.
//! * **Hazard arm** — the frozen victim holds at most its own
//!   announced hazard slots. Scans by the survivors skip only those
//!   entries, so the high-water mark of live garbage stays under the
//!   **static** bound `registered_records × (SCAN_THRESHOLD + SLOTS ×
//!   (1 + MAX_CASN_WORDS))` no matter how many operations run.
//!
//! The arms share one `#[test]` because both the epoch state and the
//! garbage gauges are process-global: the epoch arm must release its
//! frozen pin and flush before the hazard arm starts measuring.
//! `benches/e15_reclaim.rs` records the same two curves as data
//! (BENCH_e15.json).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dcas::fault::{self};
use dcas::{
    EpochReclaimer, FaultInjecting, FaultPlan, FaultPoint, HarrisMcas, HarrisMcasHazard,
    HazardReclaimer, KillKind, Reclaimer, StallGate,
};
use dcas_deques::deque::{ConcurrentDeque, ListDeque, SundellDeque};
use dcas_deques::harness::{torture_seed, Watchdog};

/// Worker threads churning the deque while the victim is frozen.
const WORKERS: u64 = 3;
/// Push+pop pairs per worker between the two epoch-arm checkpoints.
const CHECKPOINT_OPS: u64 = 2_000;

/// Freezes a victim mid-operation on `deque` (at the `PreInstall` fault
/// point — inside the MCAS protocol for the DCAS deques, at the top of a
/// push retry loop for the CAS-only sundell deque), runs `rounds ×
/// CHECKPOINT_OPS` push/pop pairs per worker, sampling `garbage()` after
/// each round. Returns the samples. The victim is released and joined
/// before the function returns.
fn frozen_victim_churn<D>(
    label: &str,
    deque: &Arc<D>,
    seed: u64,
    rounds: usize,
    garbage: fn() -> u64,
) -> Vec<u64>
where
    D: ConcurrentDeque<u64> + 'static,
{
    let gate = StallGate::new();
    let plan = FaultPlan::new(seed).kill(
        FaultPoint::PreInstall,
        3,
        KillKind::Freeze(Arc::clone(&gate)),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let mut samples = Vec::with_capacity(rounds);

    std::thread::scope(|s| {
        // Victim: churns until the freeze lands mid-operation.
        let (tx, rx) = std::sync::mpsc::channel();
        let victim = {
            let deque = Arc::clone(deque);
            let stop = Arc::clone(&stop);
            let plan = plan.clone();
            s.spawn(move || {
                let guard = fault::arm(&plan, 0);
                let log = guard.log();
                tx.send(Arc::clone(&log)).unwrap();
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    deque.push_right(i << 3).unwrap();
                    deque.pop_left();
                    i += 1;
                }
                log
            })
        };

        // Wait for the kill to land before measuring anything.
        let log = rx.recv().unwrap();
        while !log.is_killed() {
            std::hint::spin_loop();
        }

        // Churn workers: all retirement traffic happens with the
        // victim frozen.
        let mut handles = Vec::new();
        let done_rounds = Arc::new(std::sync::Barrier::new(WORKERS as usize + 1));
        for t in 1..=WORKERS {
            let deque = Arc::clone(deque);
            let barrier = Arc::clone(&done_rounds);
            handles.push(s.spawn(move || {
                let mut i = 0u64;
                for _ in 0..rounds {
                    for _ in 0..CHECKPOINT_OPS {
                        deque.push_right((t << 48) | (i << 3)).unwrap();
                        deque.pop_left();
                        i += 1;
                    }
                    barrier.wait();
                    // Main samples the gauge here.
                    barrier.wait();
                }
            }));
        }
        for _ in 0..rounds {
            done_rounds.wait();
            samples.push(garbage());
            done_rounds.wait();
        }
        for h in handles {
            h.join().unwrap();
        }

        // Tear down: release the frozen victim so it can finish its
        // interrupted operation and exit.
        stop.store(true, Ordering::Release);
        gate.release();
        let log = victim.join().unwrap();
        assert!(log.is_frozen(), "{label}: victim was never frozen");
    });
    samples
}

/// Page allowance on top of a garbage bound: each participating thread
/// (workers, victim, main) can strand a partially-used page in its
/// local cache or carve window, plus fixed slack for batch granularity.
fn pages_bound(garbage_nodes: u64) -> u64 {
    let per_page = dcas_deques::deque::list::node_alloc(true)
        .pool()
        .nodes_per_page();
    garbage_nodes.div_ceil(per_page) + (WORKERS + 2) * 2 + 8
}

#[test]
fn reclaim_frozen_victim_epoch_grows_hazard_bounded() {
    let test = "reclaim_frozen_victim_epoch_grows_hazard_bounded";
    let seed = torture_seed(test);
    let watchdog = Watchdog::arm(test, seed, Duration::from_secs(240));

    // Pool-page gauges for the allocator-facing claims below. Pages are
    // never unmapped, so `pages_allocated` is a live-memory high-water
    // mark; `nodes_outstanding` is the alloc/free balance.
    let pages_start = dcas::alloc::pages_allocated();
    let outstanding_start = dcas::alloc::nodes_outstanding();

    // ---------------- Epoch arm ----------------
    let stalled_before = EpochReclaimer::stalled_collections();
    let epoch_deque: Arc<ListDeque<u64, FaultInjecting<HarrisMcas>>> = Arc::new(ListDeque::new());
    let samples = frozen_victim_churn("epoch arm", &epoch_deque, seed, 4, || {
        EpochReclaimer::live_garbage()
    });
    let (first, last) = (samples[0], *samples.last().unwrap());
    // Linear growth: 4x the ops must hold at least ~3x the garbage of
    // the first checkpoint (exact linearity is blurred by per-thread
    // queues, so leave slack — the point is unbounded growth).
    assert!(
        last >= first.saturating_mul(2),
        "epoch arm: garbage did not grow with op count under a frozen pin \
         (samples: {samples:?})"
    );
    // ... and past the hazard backend's *static* bound, so the two
    // arms are not just different constants.
    assert!(
        last > dcas::reclaim::hazard::static_garbage_bound(),
        "epoch arm: garbage {last} never exceeded the hazard static bound \
         {} — churn too small to discriminate",
        dcas::reclaim::hazard::static_garbage_bound()
    );
    // The shim noticed it was spinning its wheels.
    assert!(
        EpochReclaimer::stalled_collections() > stalled_before,
        "epoch arm: stalled_collections never fired with a stuck epoch"
    );
    // Unbounded epoch garbage is unbounded *pages*: the nodes the stuck
    // pin kept live could not be recycled, so the pool had to grow.
    assert!(
        dcas::alloc::pages_allocated() > pages_start,
        "epoch arm: frozen pin held garbage but pool pages never grew \
         (pages {pages_start} -> {})",
        dcas::alloc::pages_allocated()
    );
    // The victim is unfrozen now: repeated flushes age everything out.
    for _ in 0..6 {
        EpochReclaimer::flush();
    }
    drop(epoch_deque);

    // ---------------- Hazard arm ----------------
    // Bounded hazard garbage must translate into bounded pool-page
    // growth — and the epoch arm's flushed pages must be recycled, not
    // leaked, so the hazard arm's growth stays under the static bound.
    let pages_before_hazard = dcas::alloc::pages_allocated();
    let hazard_deque: Arc<ListDeque<u64, FaultInjecting<HarrisMcasHazard>>> =
        Arc::new(ListDeque::new());
    let samples = frozen_victim_churn("hazard arm", &hazard_deque, seed ^ 0xA5A5, 4, || {
        HazardReclaimer::live_garbage()
    });
    // The bound is computed *after* the run, when every record the run
    // registered is counted.
    let bound = dcas::reclaim::hazard::static_garbage_bound();
    let hwm = HazardReclaimer::garbage_high_water();
    assert!(
        hwm <= bound,
        "hazard arm: high-water {hwm} exceeded the static bound {bound} \
         (samples: {samples:?})"
    );
    // Every per-round sample individually respects the bound too.
    for (i, &g) in samples.iter().enumerate() {
        assert!(
            g <= bound,
            "hazard arm: round {i} garbage {g} over bound {bound}"
        );
    }
    HazardReclaimer::flush();
    assert!(
        HazardReclaimer::live_garbage() <= bound,
        "hazard arm: post-flush garbage over bound"
    );
    let hazard_pages_grown = dcas::alloc::pages_allocated() - pages_before_hazard;
    assert!(
        hazard_pages_grown <= pages_bound(bound),
        "hazard arm: pool grew {hazard_pages_grown} pages under a frozen \
         victim, over the {} page bound — recycled epoch-arm pages were \
         not reused",
        pages_bound(bound)
    );

    // ---------------- Sundell rows ----------------
    // The CAS-only deque retires one node per pop through the same
    // pluggable backends (no descriptors at all), so the two claims must
    // replay on it: a frozen pin makes epoch garbage grow without bound,
    // while the hazard backend stays under its static bound. Runs in
    // this same `#[test]` because the gauges are process-global.
    let epoch_before = EpochReclaimer::live_garbage();
    let sundell_epoch: Arc<SundellDeque<u64, FaultInjecting<HarrisMcas>>> =
        Arc::new(SundellDeque::new());
    let samples = frozen_victim_churn(
        "sundell epoch arm",
        &sundell_epoch,
        seed ^ 0x5D11,
        4,
        || EpochReclaimer::live_garbage(),
    );
    let (first, last) = (samples[0], *samples.last().unwrap());
    assert!(
        last >= first.saturating_mul(2) && last > epoch_before,
        "sundell epoch arm: garbage did not grow with op count under a \
         frozen pin (samples: {samples:?})"
    );
    for _ in 0..6 {
        EpochReclaimer::flush();
    }
    drop(sundell_epoch);

    let pages_before_sundell_hazard = dcas::alloc::pages_allocated();
    let sundell_hazard: Arc<SundellDeque<u64, FaultInjecting<HarrisMcasHazard>>> =
        Arc::new(SundellDeque::new());
    let samples = frozen_victim_churn(
        "sundell hazard arm",
        &sundell_hazard,
        seed ^ 0x7A2A,
        4,
        || HazardReclaimer::live_garbage(),
    );
    let bound = dcas::reclaim::hazard::static_garbage_bound();
    let hwm = HazardReclaimer::garbage_high_water();
    assert!(
        hwm <= bound,
        "sundell hazard arm: high-water {hwm} exceeded the static bound \
         {bound} (samples: {samples:?})"
    );
    for (i, &g) in samples.iter().enumerate() {
        assert!(
            g <= bound,
            "sundell hazard arm: round {i} garbage {g} over bound {bound}"
        );
    }
    HazardReclaimer::flush();
    assert!(
        HazardReclaimer::live_garbage() <= bound,
        "sundell hazard arm: post-flush garbage over bound"
    );
    let sundell_pages_grown = dcas::alloc::pages_allocated() - pages_before_sundell_hazard;
    assert!(
        sundell_pages_grown <= pages_bound(bound),
        "sundell hazard arm: pool grew {sundell_pages_grown} pages under a \
         frozen victim, over the {} page bound",
        pages_bound(bound)
    );

    // ---------------- Alloc/free balance ----------------
    // With every deque dropped and both backends flushed, every node
    // the whole test churned must be back in the pool: outstanding
    // returns to the baseline (small slack for deferred-queue
    // stragglers another thread sealed but nothing ever collected).
    drop(hazard_deque);
    drop(sundell_hazard);
    for _ in 0..6 {
        EpochReclaimer::flush();
        HazardReclaimer::flush();
    }
    let outstanding_end = dcas::alloc::nodes_outstanding();
    assert!(
        outstanding_end <= outstanding_start + 256,
        "alloc balance: {outstanding_end} nodes still outstanding after \
         teardown (started at {outstanding_start}) — pooled frees were lost"
    );
    watchdog.disarm();
}
