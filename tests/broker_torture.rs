//! Broker shard death through the *real* fault machinery: a consumer
//! thread arms a PR 3 `FaultPlan` that panics out of an MCAS operation
//! mid-consume, the broker's panic guard retires the shard it was
//! touching, rescues its contents onto survivors, and the system keeps
//! serving — with exact conservation provable from the outside.
//!
//! This is the organic version of the administrative `kill_shard` used
//! by the E14 kill arm: nothing calls kill explicitly; the shard dies
//! because a strategy operation genuinely unwound through it.
//!
//! The root package's dev-dependencies enable `dcas/fault-inject`, so
//! the `ListDeque<_, HarrisMcas>` shards here carry live fault points.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dcas::fault::{self, FaultLog};
use dcas::{FaultPlan, FaultPoint, KillKind};
use dcas_deques::prelude::*;

const SHARDS: usize = 4;
const TOTAL: u64 = 4_096;
const CONSUMERS: usize = 2;

#[test]
fn faulted_consumer_retires_shard_and_conserves() {
    let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(SHARDS);

    // Fill all shards round-robin before any fault is armed, so the
    // victim shard (whichever one the doomed consumer is touching when
    // the kill fires) is guaranteed to hold rescuable values.
    let mut p = broker.producer();
    for v in 0..TOTAL {
        p.send(v).expect("unbounded shards never backpressure");
    }
    drop(p); // flush the final partial batch

    let consumed = AtomicU64::new(0);
    let (values, kill_log) = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..CONSUMERS as u64 {
            let (broker, consumed) = (&broker, &consumed);
            handles.push(s.spawn(move || {
                // Thread 0 is doomed: after 40 effect-free PreInstall
                // hits (a handful of consume batches), its next MCAS
                // unwinds. The broker's guard catches the panic, marks
                // the shard it was operating on dead, and rescues.
                let plan = if tid == 0 {
                    FaultPlan::new(0xB40C).kill(FaultPoint::PreInstall, 40, KillKind::Panic)
                } else {
                    FaultPlan::new(0xB40C)
                };
                let guard = fault::arm(&plan, tid);
                let mut c = broker.consumer();
                let mut got = Vec::new();
                loop {
                    match c.recv() {
                        Some(v) => {
                            got.push(v);
                            consumed.fetch_add(1, Ordering::AcqRel);
                        }
                        None => {
                            if consumed.load(Ordering::Acquire) == TOTAL {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                (got, guard.log())
            }));
        }
        let mut values: Vec<u64> = Vec::new();
        let mut kill_log: Option<Arc<FaultLog>> = None;
        for (tid, h) in handles.into_iter().enumerate() {
            let (got, log) = h.join().expect("consumer threads never unwind — the guard eats the kill");
            values.extend(got);
            if tid == 0 {
                kill_log = Some(log);
            }
        }
        (values, kill_log.unwrap())
    });

    // The kill actually fired and was delivered as a panic...
    assert!(kill_log.is_panicked(), "fault plan never delivered: {}", kill_log.describe());
    // ...and the broker translated it into exactly one shard death.
    let stats = broker.stats();
    assert_eq!(stats.shard_deaths, 1, "panic did not retire a shard");
    assert_eq!(broker.alive_shards(), SHARDS - 1);

    // Exact conservation across the death: every value exactly once.
    assert_eq!(values.len() as u64, TOTAL, "lost or duplicated values across shard death");
    let distinct: HashSet<u64> = values.iter().copied().collect();
    assert_eq!(distinct.len() as u64, TOTAL, "duplicated values across shard death");
    assert!(values.iter().all(|&v| v < TOTAL));

    // Survivors keep serving: a fresh batch routes around the corpse.
    let mut p = broker.producer();
    for v in 0..64u64 {
        p.send(TOTAL + v).expect("survivors must accept");
    }
    drop(p);
    let mut c = broker.consumer();
    let mut after = 0;
    while c.recv().is_some() {
        after += 1;
    }
    drop(c);
    assert_eq!(after, 64, "survivors failed to serve after the death");
}
